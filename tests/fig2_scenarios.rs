//! The Figure 2 scenarios: asynchronous commit with dependence
//! enforcement.
//!
//! Fig. 2a shows what goes wrong *without* enforcement: a later region's
//! persists complete and a crash hits before an earlier region's LPO —
//! the earlier region's new value is lost while the later one's old value
//! cannot be restored. These tests drive exactly those interleavings
//! through ASAP and assert the recovered state is consistent.

use asap_core::machine::{Machine, MachineConfig, RunOutcome};
use asap_core::scheme::SchemeKind;

fn machine() -> Machine {
    Machine::new(MachineConfig::small(SchemeKind::Asap, 2).with_tracking())
}

/// Fig. 2-i (single thread): the region writing Y is control dependent on
/// the region writing X. After a crash, Y's region may only survive if
/// X's did.
#[test]
fn control_dependence_single_thread() {
    // Crash at every one of the first 8 persistent writes.
    for crash_at in 1..=8 {
        let mut m = machine();
        let x = m.pm_alloc(8).unwrap();
        let y = m.pm_alloc(8).unwrap();
        m.arm_crash_after_additional(crash_at);
        let outcome = m.run_thread(0, |ctx| {
            ctx.begin_region();
            ctx.write_u64(x, 0xAAAA);
            ctx.end_region();
            ctx.begin_region();
            ctx.write_u64(y, 0xBBBB);
            ctx.end_region();
            // Keep writing so later crash points trigger too.
            for i in 0..8 {
                ctx.begin_region();
                ctx.write_u64(x, 0xC000 + i);
                ctx.write_u64(y, 0xD000 + i);
                ctx.end_region();
            }
        });
        if outcome == RunOutcome::Completed {
            continue;
        }
        m.recover(); // panics on any prefix/dependence violation
        let xv = m.debug_read_u64(x);
        let yv = m.debug_read_u64(y);
        // Y may never hold a newer generation than X allows: if Y was
        // written (0xBBBB or later) then X's first region must be durable.
        if yv != 0 {
            assert_ne!(
                xv, 0,
                "crash@{crash_at}: Y persisted but X was lost (Fig. 2a-i)"
            );
        }
    }
}

/// Fig. 2-ii (two threads): the region writing Y reads X — a data
/// dependence. The consumer must never survive a crash that the producer
/// does not.
#[test]
fn data_dependence_across_threads() {
    for crash_at in 1..=6 {
        let mut m = machine();
        let x = m.pm_alloc(8).unwrap();
        let y = m.pm_alloc(8).unwrap();
        m.arm_crash_after_additional(crash_at);
        // Producer on thread 0.
        let o = m.run_thread(0, |ctx| {
            ctx.locked_region(0, |ctx| {
                ctx.write_u64(x, 41);
            });
        });
        // Consumer on thread 1: Y = X + 1.
        let o2 = if o == RunOutcome::Completed {
            m.run_thread(1, |ctx| {
                ctx.locked_region(0, |ctx| {
                    let v = ctx.read_u64(x);
                    ctx.write_u64(y, v + 1);
                });
            })
        } else {
            o
        };
        if o2 == RunOutcome::Completed {
            m.crash_now();
        }
        m.recover();
        let xv = m.debug_read_u64(x);
        let yv = m.debug_read_u64(y);
        if yv != 0 {
            assert_eq!(
                xv, 41,
                "crash@{crash_at}: consumer survived, producer lost (Fig. 2a-ii)"
            );
            assert_eq!(yv, 42);
        }
    }
}

/// Fig. 2b's guarantee, stated directly: a later region's log (and hence
/// its ability to be rolled back) is not lost before an earlier region's
/// data persists. Equivalently, after any crash the committed set is
/// dependence-closed — which `Machine::recover` verifies via the tracker.
/// Here we stress it with a chain of regions across both threads.
#[test]
fn chained_dependences_stay_closed() {
    for crash_at in [2u64, 5, 9, 14, 20] {
        let mut m = machine();
        let cell = m.pm_alloc(8).unwrap();
        let out = m.pm_alloc(8 * 8).unwrap();
        m.arm_crash_after_additional(crash_at);
        let mut crashed = false;
        'outer: for round in 0..4u64 {
            for t in 0..2usize {
                let o = m.run_thread(t, |ctx| {
                    ctx.locked_region(0, |ctx| {
                        let v = ctx.read_u64(cell);
                        ctx.write_u64(cell, v + 1);
                        ctx.write_u64(out.offset((round * 2 + t as u64) * 8), v);
                    });
                });
                if o == RunOutcome::Crashed {
                    crashed = true;
                    break 'outer;
                }
            }
        }
        if !crashed {
            m.crash_now();
        }
        m.recover(); // tracker enforces dependence closure
                     // The counter equals the number of surviving increments: every
                     // surviving region observed the value its predecessor wrote.
        let final_v = m.debug_read_u64(cell);
        assert!(final_v <= 8);
    }
}
