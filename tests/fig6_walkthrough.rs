//! The Figure 6 walkthrough: two concurrent atomic regions on two cores
//! with a data dependence between them, guarded by a lock.
//!
//! R1 (thread 0): A = A', B = B'. R2 (thread 1): A = A''. R2 reads and
//! overwrites R1's line A, so hardware must record R2 → R1 and commit R1
//! first; the §5.1 optimizations (LPO dropping at commit, DPO dropping
//! when R2's LPO for A arrives) fire along the way.

use asap_core::machine::{Machine, MachineConfig};
use asap_core::scheme::SchemeKind;

#[test]
fn two_regions_with_data_dependence_commit_in_order() {
    let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 2).with_tracking());
    let a = m.pm_alloc(64).unwrap();
    let b = m.pm_alloc(64).unwrap();

    // R1: A = A', B = B' under lock x.
    m.run_thread(0, |ctx| {
        ctx.lock(0);
        ctx.begin_region();
        ctx.write_u64(a, 0xA1);
        ctx.write_u64(b, 0xB1);
        ctx.unlock(0);
        ctx.end_region();
    });
    // R2: A = A'' under the same lock (data dependence on R1 via A).
    m.run_thread(1, |ctx| {
        ctx.lock(0);
        ctx.begin_region();
        let cur = ctx.read_u64(a);
        assert_eq!(cur, 0xA1, "R2 observes R1's A'");
        ctx.write_u64(a, 0xA2);
        ctx.unlock(0);
        ctx.end_region();
    });

    m.drain();
    let stats = m.stats();
    assert_eq!(stats.get("region.committed"), 2, "both regions committed");
    assert_eq!(m.debug_read_u64(a), 0xA2);
    assert_eq!(m.debug_read_u64(b), 0xB1);

    // Both regions' log writes were dropped at commit (LPO dropping) —
    // with the lazy WPQ this workload never drains a single log write.
    assert!(stats.get("pm.drop.lpo") > 0, "LPO dropping fired");

    // Fig. 6e: R2's LPO for A found R1's DPO for A still queued and
    // dropped it (DPO dropping).
    assert!(stats.get("pm.drop.dpo") > 0, "DPO dropping fired");

    // Crashing *after* both commits must preserve both regions.
    m.crash_now();
    let report = m.recover();
    assert!(report.uncommitted.is_empty());
    assert_eq!(m.debug_read_u64(a), 0xA2);
    assert_eq!(m.debug_read_u64(b), 0xB1);
}

#[test]
fn consumer_cannot_commit_before_producer() {
    // Like Fig. 6f: R2 finishes its persists while R1 is still draining;
    // R2 must wait for R1's completion broadcast. We make R1 "slow" by
    // giving it many more lines to persist.
    let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 2).with_tracking());
    let a = m.pm_alloc(64).unwrap();
    let spread = m.pm_alloc(64 * 16).unwrap();

    m.run_thread(0, |ctx| {
        ctx.lock(0);
        ctx.begin_region();
        for i in 0..16 {
            ctx.write_u64(spread.offset(i * 64), i);
        }
        ctx.write_u64(a, 1);
        ctx.unlock(0);
        ctx.end_region();
    });
    m.run_thread(1, |ctx| {
        ctx.lock(0);
        ctx.begin_region();
        let v = ctx.read_u64(a);
        ctx.write_u64(a, v + 1);
        ctx.unlock(0);
        ctx.end_region();
        // R2's end returns immediately (asynchronous commit) even though
        // R1 may still be draining.
    });

    // A crash at this instant may catch either both committed or a
    // consistent prefix — the tracker verifies the order.
    m.crash_now();
    let _ = m.recover();
    let av = m.debug_read_u64(a);
    if av == 2 {
        // R2 survived ⇒ R1 survived: all its 16 lines are in place.
        for i in 0..16 {
            assert_eq!(m.debug_read_u64(spread.offset(i * 64)), i);
        }
    }
}

#[test]
fn dependence_via_eviction_is_still_tracked() {
    // Force the shared line out of the small LLC between R1's write and
    // R2's access: the OwnerRID must survive via the bloom filter + DRAM
    // owner buffer (§5.3).
    let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 2).with_tracking());
    let a = m.pm_alloc(64).unwrap();
    let filler = m.pm_alloc(64 * 2048).unwrap();

    m.run_thread(0, |ctx| {
        ctx.lock(0);
        ctx.begin_region();
        ctx.write_u64(a, 7);
        ctx.unlock(0);
        ctx.end_region();
    });
    // Thrash the cache outside any region to evict line A.
    m.run_thread(0, |ctx| {
        for i in 0..2048 {
            let mut buf = [0u8; 8];
            ctx.read_bytes(filler.offset(i * 64), &mut buf);
        }
    });
    m.run_thread(1, |ctx| {
        ctx.lock(0);
        ctx.begin_region();
        let v = ctx.read_u64(a);
        ctx.write_u64(a, v + 1);
        ctx.unlock(0);
        ctx.end_region();
    });
    m.drain();
    let stats = m.stats();
    assert_eq!(m.debug_read_u64(a), 8);
    // The eviction path exercised the owner save machinery. (Whether the
    // owner was still uncommitted at eviction time depends on timing; the
    // save counter proves the path ran at least once if it did.)
    let saved = stats.get("asap.owner_saved");
    let restored = stats.get("asap.owner_restored");
    assert!(restored <= saved, "restores come from saves");
}
