//! Whole-lifecycle tests: run → crash → recover → run more → crash again.
//!
//! Recovery must leave the machine in a state from which normal execution
//! (and further crashes) proceed correctly: region IDs keep advancing,
//! logs restart cleanly, and the verification shadow stays coherent
//! across reboots.

use asap_core::machine::{Machine, MachineConfig, RunOutcome};
use asap_core::scheme::SchemeKind;

#[test]
fn repeated_crash_recover_cycles() {
    for scheme in [
        SchemeKind::Asap,
        SchemeKind::HwUndo,
        SchemeKind::HwRedo,
        SchemeKind::SwUndo,
    ] {
        let mut m = Machine::new(MachineConfig::small(scheme, 2).with_tracking());
        let counter = m.pm_alloc(8).unwrap();
        let mut durable_floor = 0u64;
        for round in 0..5 {
            // A few increments, then an abrupt crash.
            for t in 0..2usize {
                let o = m.run_thread(t, |ctx| {
                    for _ in 0..3 {
                        ctx.locked_region(0, |ctx| {
                            let v = ctx.read_u64(counter);
                            ctx.write_u64(counter, v + 1);
                        });
                    }
                });
                assert_eq!(o, RunOutcome::Completed);
            }
            m.crash_now();
            m.recover(); // verifies consistency
            let v = m.debug_read_u64(counter);
            assert!(
                v >= durable_floor,
                "{scheme} round {round}: counter went backwards {v} < {durable_floor}"
            );
            assert!(v <= (round as u64 + 1) * 6);
            durable_floor = v;
        }
    }
}

#[test]
fn fence_then_crash_each_round_is_lossless() {
    for scheme in [SchemeKind::Asap, SchemeKind::HwUndo, SchemeKind::HwRedo] {
        let mut m = Machine::new(MachineConfig::small(scheme, 1).with_tracking());
        let counter = m.pm_alloc(8).unwrap();
        for round in 1..=4u64 {
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                let v = ctx.read_u64(counter);
                ctx.write_u64(counter, v + 1);
                ctx.end_region();
                ctx.fence();
            });
            m.crash_now();
            m.recover();
            assert_eq!(m.debug_read_u64(counter), round, "{scheme}");
        }
    }
}

#[test]
fn crash_during_post_recovery_run() {
    // Arm a second crash after recovery; consistency must hold again.
    let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 1).with_tracking());
    let a = m.pm_alloc(8 * 8).unwrap();
    m.arm_crash_after_additional(5);
    let o = m.run_thread(0, |ctx| {
        for i in 0..16u64 {
            ctx.begin_region();
            ctx.write_u64(a.offset(i % 8 * 8), i + 1);
            ctx.end_region();
        }
    });
    assert_eq!(o, RunOutcome::Crashed);
    m.recover();
    m.arm_crash_after_additional(4);
    let o = m.run_thread(0, |ctx| {
        for i in 0..16u64 {
            ctx.begin_region();
            ctx.write_u64(a.offset(i % 8 * 8), 100 + i);
            ctx.end_region();
        }
    });
    assert_eq!(o, RunOutcome::Crashed);
    m.recover(); // panics on inconsistency
}

#[test]
fn heap_survives_reboot() {
    // Allocations made before a crash stay allocated; the data in them
    // follows the commit rules.
    let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 1).with_tracking());
    let a = m.pm_alloc(256).unwrap();
    let live_before = m.hw().heap.live_bytes();
    m.run_thread(0, |ctx| {
        ctx.begin_region();
        ctx.write_u64(a, 0x5EED);
        ctx.end_region();
        ctx.fence();
    });
    m.crash_now();
    m.recover();
    assert_eq!(m.hw().heap.live_bytes(), live_before);
    assert_eq!(m.debug_read_u64(a), 0x5EED);
    m.pm_free(a).unwrap();
}
