//! Regression tests for HWRedo's cross-thread roll-forward ordering.
//!
//! A committed region's async DPOs may still be draining at a crash;
//! recovery replays its log. When two threads' committed regions wrote
//! the same line, the replay must apply them in *commit* order — and a
//! newer region's log must never be reclaimed while an older one that
//! shares its lines is still replayable (global FIFO retirement).
//! Found by `tests/prop_crash.rs`.

use asap_core::machine::{Machine, MachineConfig};
use asap_core::scheme::SchemeKind;

fn write_region(m: &mut Machine, thread: usize, addr: asap_pmem::PmAddr, v: u64) {
    m.run_thread(thread, |ctx| {
        ctx.locked_region(0, |ctx| {
            ctx.write_u64(addr, v);
        });
    });
}

#[test]
fn newest_committed_writer_wins_across_threads() {
    // Alternate threads writing the same line; crash before draining.
    for crash_after_regions in 2..=8usize {
        let mut m = Machine::new(MachineConfig::small(SchemeKind::HwRedo, 2).with_tracking());
        let cell = m.pm_alloc(8).unwrap();
        for i in 0..crash_after_regions {
            write_region(&mut m, i % 2, cell, 100 + i as u64);
        }
        m.crash_now();
        m.recover(); // tracker verifies replay produced the newest value
        assert_eq!(
            m.debug_read_u64(cell),
            100 + crash_after_regions as u64 - 1,
            "the last committed write must win"
        );
    }
}

#[test]
fn replay_applies_in_commit_order_not_thread_order() {
    // Thread 1 commits first (older value), thread 0 commits second
    // (newer). A thread-major replay would resurrect the older value.
    let mut m = Machine::new(MachineConfig::small(SchemeKind::HwRedo, 2).with_tracking());
    let cell = m.pm_alloc(8).unwrap();
    write_region(&mut m, 1, cell, 1);
    write_region(&mut m, 0, cell, 2);
    m.crash_now();
    m.recover();
    assert_eq!(m.debug_read_u64(cell), 2);
}

#[test]
fn interleaved_lines_and_threads_survive_repeated_crashes() {
    let mut m = Machine::new(MachineConfig::small(SchemeKind::HwRedo, 2).with_tracking());
    let a = m.pm_alloc(8).unwrap();
    let b = m.pm_alloc(8).unwrap();
    for round in 0..3u64 {
        write_region(&mut m, 0, a, round * 10 + 1);
        write_region(&mut m, 1, b, round * 10 + 2);
        write_region(&mut m, 1, a, round * 10 + 3);
        write_region(&mut m, 0, b, round * 10 + 4);
        m.crash_now();
        m.recover();
        assert_eq!(m.debug_read_u64(a), round * 10 + 3);
        assert_eq!(m.debug_read_u64(b), round * 10 + 4);
    }
}
