//! Property-based crash consistency on raw machines.
//!
//! Random small regions — random threads, random cells packed into a few
//! cache lines (heavy false sharing, the §4.6.3 spurious-dependence path),
//! random fences — with a power failure at a random persistent write.
//! `Machine::recover` verifies the full guarantee set on every case; the
//! test then re-checks value-level sanity of whatever survived.
//!
//! Per the paper's programming contract (§4.2: WAL "does not guarantee
//! isolation ... programmers are required to nest conflicting atomic
//! regions in critical sections guarded by locks"), every region here
//! takes a global lock. Interestingly, ASAP itself passes even *without*
//! the lock — its LockBit serializes same-line first-writes — but the
//! synchronous baselines are only specified for lock-guarded conflicts.

use asap_core::machine::{Machine, MachineConfig, RunOutcome};
use asap_core::scheme::{AsapOpts, SchemeKind};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct RegionOp {
    thread: usize,
    cells: Vec<u64>,
    fence: bool,
}

fn region_strategy(threads: usize, cells: u64) -> impl Strategy<Value = RegionOp> {
    (
        0..threads,
        proptest::collection::vec(0..cells, 1..6),
        proptest::bool::weighted(0.15),
    )
        .prop_map(|(thread, cells, fence)| RegionOp {
            thread,
            cells,
            fence,
        })
}

fn scheme_strategy() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Asap),
        Just(SchemeKind::AsapWith(AsapOpts::none())),
        Just(SchemeKind::HwUndo),
        Just(SchemeKind::HwRedo),
        Just(SchemeKind::SwUndo),
    ]
}

/// Executes the op list (crash may fire mid-way), recovers, and checks
/// that every surviving cell value corresponds to a region that ran.
fn check(scheme: SchemeKind, ops: Vec<RegionOp>, crash_at: u64) {
    const THREADS: u32 = 2;
    const CELLS: u64 = 24; // 24 cells × 8B = 3 cache lines: false sharing
    let mut m = Machine::new(MachineConfig::small(scheme, THREADS).with_tracking());
    let base = m.pm_alloc(CELLS * 8).unwrap();
    m.arm_crash_after_additional(crash_at);
    let mut crashed = false;
    let mut stamp = 1u64;
    // Conflicting regions are serialized by a global lock, per §4.2's
    // isolation contract.
    for op in &ops {
        let cells = op.cells.clone();
        let s = stamp;
        let outcome = m.run_thread(op.thread, |ctx| {
            ctx.locked_region(0, |ctx| {
                for (k, c) in cells.iter().enumerate() {
                    ctx.write_u64(base.offset(c * 8), s + k as u64);
                }
            });
            if ctx.in_region() {
                unreachable!();
            }
        });
        if outcome == RunOutcome::Crashed {
            crashed = true;
            break;
        }
        if op.fence {
            let o = m.run_thread(op.thread, |ctx| ctx.fence());
            if o == RunOutcome::Crashed {
                crashed = true;
                break;
            }
        }
        stamp += 16;
    }
    if !crashed {
        m.crash_now();
    }
    m.recover(); // full verification happens here
                 // Value sanity: every nonzero surviving cell holds a stamp some
                 // region actually wrote to that cell.
    for c in 0..CELLS {
        let v = m.debug_read_u64(base.offset(c * 8));
        if v == 0 {
            continue;
        }
        let plausible = ops.iter().enumerate().any(|(i, op)| {
            let s = 1 + 16 * i as u64;
            op.cells
                .iter()
                .enumerate()
                .any(|(k, cc)| *cc == c && s + k as u64 == v)
        });
        assert!(plausible, "cell {c} holds value {v} no region wrote");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_regions_random_crash(
        scheme in scheme_strategy(),
        ops in proptest::collection::vec(region_strategy(2, 24), 4..28),
        crash_at in 1u64..120,
    ) {
        check(scheme, ops, crash_at);
    }

    #[test]
    fn asap_dense_false_sharing(
        ops in proptest::collection::vec(region_strategy(2, 8), 8..32),
        crash_at in 1u64..100,
    ) {
        // All cells within a single cache line: every cross-thread region
        // pair is dependence-ordered through OwnerRID.
        check(SchemeKind::Asap, ops, crash_at);
    }
}
