//! §5.2: synchronous persistence via `asap_fence`.
//!
//! ASAP guarantees only commit *order*, not commit *time*. A fence blocks
//! until the thread's last region — and transitively everything it depends
//! on — has committed, giving I/O-style synchronous points.

use asap_core::machine::{Machine, MachineConfig};
use asap_core::scheme::SchemeKind;

fn machine(threads: u32) -> Machine {
    Machine::new(MachineConfig::small(SchemeKind::Asap, threads).with_tracking())
}

#[test]
fn fence_forces_durability_of_all_prior_regions() {
    let mut m = machine(1);
    let a = m.pm_alloc(8 * 16).unwrap();
    m.run_thread(0, |ctx| {
        for i in 0..16u64 {
            ctx.begin_region();
            ctx.write_u64(a.offset(i * 8), i + 1);
            ctx.end_region();
        }
        ctx.fence(); // "print the confirmation after the batch" (§5.2)
    });
    m.crash_now();
    let report = m.recover();
    assert!(
        report.uncommitted.is_empty(),
        "fence left nothing uncommitted"
    );
    for i in 0..16u64 {
        assert_eq!(m.debug_read_u64(a.offset(i * 8)), i + 1);
    }
}

#[test]
fn fence_covers_cross_thread_dependencies() {
    let mut m = machine(2);
    let x = m.pm_alloc(8).unwrap();
    let y = m.pm_alloc(8).unwrap();
    // Producer on thread 0 — NOT fenced.
    m.run_thread(0, |ctx| {
        ctx.locked_region(0, |ctx| ctx.write_u64(x, 5));
    });
    // Consumer on thread 1 — fenced. Its region depends on the producer,
    // so the fence must make the producer durable too.
    m.run_thread(1, |ctx| {
        ctx.locked_region(0, |ctx| {
            let v = ctx.read_u64(x);
            ctx.write_u64(y, v * 10);
        });
        ctx.fence();
    });
    m.crash_now();
    m.recover();
    assert_eq!(m.debug_read_u64(y), 50, "fenced consumer durable");
    assert_eq!(
        m.debug_read_u64(x),
        5,
        "its producer dependence durable too"
    );
}

#[test]
fn without_fence_commits_are_asynchronous_but_ordered() {
    // No fence: a crash right after execution may lose a suffix of the
    // regions — but only ever a suffix (never a gap).
    let mut m = machine(1);
    let a = m.pm_alloc(8 * 8).unwrap();
    m.run_thread(0, |ctx| {
        for i in 0..8u64 {
            ctx.begin_region();
            ctx.write_u64(a.offset(i * 8), i + 1);
            ctx.end_region();
        }
    });
    m.crash_now(); // before draining
    m.recover();
    let survived: Vec<bool> = (0..8u64)
        .map(|i| m.debug_read_u64(a.offset(i * 8)) != 0)
        .collect();
    let first_lost = survived.iter().position(|s| !s).unwrap_or(8);
    assert!(
        survived[first_lost..].iter().all(|s| !s),
        "regions survive as a prefix, never with gaps: {survived:?}"
    );
}

#[test]
fn fence_on_thread_without_regions_is_a_noop() {
    let mut m = machine(1);
    m.run_thread(0, |ctx| {
        let before = ctx.now();
        ctx.fence();
        assert_eq!(ctx.now(), before);
    });
}

#[test]
fn fence_degenerates_to_sync_commit_per_region() {
    // §6.4: with a fence after every region ASAP degenerates to HWUndo-
    // like behaviour — every region is durable when the next begins.
    let mut m = machine(1);
    let a = m.pm_alloc(8 * 4).unwrap();
    m.run_thread(0, |ctx| {
        for i in 0..4u64 {
            ctx.begin_region();
            ctx.write_u64(a.offset(i * 8), i + 1);
            ctx.end_region();
            ctx.fence();
        }
    });
    m.crash_now();
    let report = m.recover();
    assert!(report.uncommitted.is_empty());
    for i in 0..4u64 {
        assert_eq!(m.debug_read_u64(a.offset(i * 8)), i + 1);
    }
}
