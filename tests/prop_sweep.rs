//! Property-based equivalence for the parallel crash-sweep engine.
//!
//! Over arbitrary crash-point sets (duplicates, out-of-order, beyond-end
//! points included) and arbitrary snapshot layouts, two claims must hold
//! bit-for-bit:
//!
//! - a parallel sweep (`jobs` ∈ {2, 4}, the `ASAP_SWEEP_JOBS` axis) is
//!   identical to the serial sweep of the same configuration;
//! - tree-restored forks (budgeted spine + refinement leaves) are
//!   identical to flat-cadence forks.
//!
//! "Identical" is [`results_identical`]: every scalar, float bit
//! patterns, the full stats registry, and all exported artifacts.

use asap_core::scheme::SchemeKind;
use asap_workloads::resultjson::results_identical;
use asap_workloads::{run_sweep_with, BenchId, SweepConfig, WorkloadSpec};
use proptest::prelude::*;

fn spec() -> WorkloadSpec {
    WorkloadSpec::small(BenchId::Hm, SchemeKind::Asap)
        .with_threads(2)
        .with_ops(12)
        .with_tracking()
}

fn assert_sweeps_identical(
    points: &[u64],
    a: &SweepConfig,
    b: &SweepConfig,
) -> Result<(), TestCaseError> {
    let x = run_sweep_with(&spec(), points, a);
    let y = run_sweep_with(&spec(), points, b);
    prop_assert_eq!(x.forks.len(), y.forks.len());
    for (i, (f, g)) in x.forks.iter().zip(&y.forks).enumerate() {
        prop_assert!(
            results_identical(f, g),
            "fork {} (point {}) diverged between {:?} and {:?}",
            i,
            points[i],
            a,
            b
        );
    }
    prop_assert!(
        results_identical(&x.baseline, &y.baseline),
        "baselines diverged between {:?} and {:?}",
        a,
        b
    );
    prop_assert_eq!(&x.baseline.crash_points, &y.baseline.crash_points);
    prop_assert_eq!(x.prefix_writes, y.prefix_writes);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial(
        points in proptest::collection::vec(0u64..90, 1..8),
        jobs in prop_oneof![Just(2usize), Just(4usize)],
        snap_every in 1u64..24,
        refine in proptest::bool::weighted(0.5),
    ) {
        let mut serial = SweepConfig::flat(snap_every);
        serial.refine = refine;
        let parallel = serial.with_jobs(jobs);
        assert_sweeps_identical(&points, &serial, &parallel)?;
    }

    #[test]
    fn tree_restored_forks_match_flat_cadence(
        points in proptest::collection::vec(0u64..90, 1..8),
        snap_every in 1u64..24,
        budget in 0usize..5,
    ) {
        let flat = SweepConfig::flat(snap_every);
        let tree = SweepConfig::tree(snap_every).with_budget(budget);
        assert_sweeps_identical(&points, &flat, &tree)?;
    }
}
