//! The parallel figure harness must be a pure wall-clock optimization:
//! running a grid of simulations on N host threads has to produce results
//! indistinguishable from running them one after another. Each simulation
//! is single-threaded and deterministic, so any divergence here means the
//! harness corrupted ordering or shared state.
//!
//! The run cache must be held to the same standard: a result served from
//! the in-process or on-disk memo tier has to be indistinguishable —
//! artifact by artifact — from re-simulating the cell. The pool tests pin
//! the cache *off* so they keep comparing real runs; the cache tests pin a
//! hermetic disk store and compare against a fresh reference.
//!
//! `ci.sh` runs this suite under both `ASAP_JOBS=1` and `ASAP_JOBS=4`.

use asap_bench::runcache::RunCacheConfig;
use asap_bench::{run_grid, run_grid_jobs, run_grid_with};
use asap_core::scheme::SchemeKind;
use asap_sim::TelemetrySettings;
use asap_workloads::{BenchId, RunResult, WorkloadSpec};

/// A small but heterogeneous grid: different benchmarks, schemes, thread
/// counts and payload sizes, so cells finish out of order under parallel
/// execution.
fn grid() -> Vec<WorkloadSpec> {
    let mut specs = Vec::new();
    for bench in [BenchId::Q, BenchId::Hm, BenchId::Bt] {
        for scheme in [
            SchemeKind::NoPersist,
            SchemeKind::SwUndo,
            SchemeKind::HwRedo,
            SchemeKind::Asap,
        ] {
            specs.push(
                WorkloadSpec::new(bench, scheme)
                    .with_threads(2)
                    .with_ops(30),
            );
        }
    }
    specs.push(
        WorkloadSpec::new(BenchId::Ss, SchemeKind::Asap)
            .with_threads(4)
            .with_ops(20)
            .with_value_bytes(2048),
    );
    // One telemetry-enabled cell: the sampler and lifecycle log are driven
    // by virtual time only, so their exports must also be byte-identical
    // between the serial and parallel harness paths.
    specs.push(
        WorkloadSpec::new(BenchId::Hm, SchemeKind::Asap)
            .with_threads(2)
            .with_ops(25)
            .with_telemetry(TelemetrySettings::enabled()),
    );
    // A crash cell: power failure drains the calendar event queue, ADR
    // flushes the WPQ, and the cache slab / forward-index arenas reset —
    // recovery must replay identically on every harness thread.
    specs.push(
        WorkloadSpec::new(BenchId::Hm, SchemeKind::HwUndo)
            .with_threads(2)
            .with_ops(30)
            .with_tracking()
            .with_crash_after(40),
    );
    // A residency-delayed WPQ: `DrainCheck` events land thousands of
    // cycles out, exercising the calendar wheel's far-future revolution
    // handling inside a real workload.
    let mut delayed = asap_sim::SystemConfig::table2();
    delayed.mem.wpq_residency = 4096;
    specs.push(
        WorkloadSpec::new(BenchId::Tpcc, SchemeKind::Asap)
            .with_threads(2)
            .with_ops(15)
            .with_system(delayed),
    );
    specs
}

/// Every observable field must agree exactly — floats bit-for-bit, and the
/// whole stats registry via its canonical JSON dump.
fn assert_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.spec.bench, b.spec.bench);
    assert_eq!(a.spec.scheme, b.spec.scheme);
    assert_eq!(a.tx, b.tx);
    assert_eq!(a.exec_cycles, b.exec_cycles);
    assert_eq!(a.drained_cycles, b.drained_cycles);
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(a.pm_writes, b.pm_writes);
    assert_eq!(
        a.region_cycles_mean.to_bits(),
        b.region_cycles_mean.to_bits()
    );
    assert_eq!(a.stalls.compute.to_bits(), b.stalls.compute.to_bits());
    assert_eq!(a.stalls.log_full.to_bits(), b.stalls.log_full.to_bits());
    assert_eq!(
        a.stalls.wpq_backpressure.to_bits(),
        b.stalls.wpq_backpressure.to_bits()
    );
    assert_eq!(
        a.stalls.dependency_wait.to_bits(),
        b.stalls.dependency_wait.to_bits()
    );
    assert_eq!(
        a.stalls.commit_wait.to_bits(),
        b.stalls.commit_wait.to_bits()
    );
    assert_eq!(a.stats.to_json(), b.stats.to_json());
    assert_eq!(a.chrome_trace, b.chrome_trace);
    assert_eq!(a.trace_dump, b.trace_dump);
    assert_eq!(a.timeseries, b.timeseries);
    assert_eq!(a.lifecycle, b.lifecycle);
    assert_eq!(a.lifecycle_dot, b.lifecycle_dot);
    assert_eq!(a.hot_lines, b.hot_lines);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(format!("{:?}", a.recovery), format!("{:?}", b.recovery));
}

#[test]
fn serial_and_parallel_grids_are_identical() {
    let specs = grid();
    // Cache off: this test is about the worker pool, and a memoized
    // second grid would compare a result with itself.
    let serial = run_grid_with(&specs, 1, &RunCacheConfig::off());
    let parallel = run_grid_with(&specs, 4, &RunCacheConfig::off());
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_identical(a, b);
    }
}

/// A cell served from the run cache must be indistinguishable from a
/// fresh simulation — every scalar, the stats registry, and all exported
/// artifacts (telemetry series, lifecycle log/DOT, traces) byte for
/// byte, whether the hit comes from a cold-started disk store or a warm
/// one, serially or through the worker pool.
#[test]
fn cached_grid_is_identical_to_fresh_runs() {
    let specs = grid();
    let dir = std::env::temp_dir().join(format!("asap-runcache-equiv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fresh = run_grid_with(&specs, 1, &RunCacheConfig::off());
    // Hermetic disk-only store: no process-global tier involved, so the
    // second and third grids below are served by real file round-trips.
    let store = RunCacheConfig::disk_only(&dir, 64);
    let cold = run_grid_with(&specs, 1, &store);
    let warm_serial = run_grid_with(&specs, 1, &store);
    let warm_parallel = run_grid_with(&specs, 4, &store);
    for cached in [&cold, &warm_serial, &warm_parallel] {
        assert_eq!(cached.len(), fresh.len());
        for (a, b) in cached.iter().zip(&fresh) {
            assert_identical(a, b);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `run_grid` (the env-driven entry the benches use) must agree with the
/// serial reference no matter what `ASAP_JOBS` or `ASAP_RUNCACHE` the
/// environment sets — this is the variant ci.sh exercises at
/// `ASAP_JOBS=1` and `ASAP_JOBS=4` (and, under the default `mem` cache
/// mode, it doubles as an in-process-tier equivalence check: the serial
/// reference populates the tier and the env-driven grid is served from
/// it).
#[test]
fn env_driven_grid_matches_serial_reference() {
    let specs = grid();
    let serial = run_grid_jobs(&specs, 1);
    let env = run_grid(&specs);
    for (a, b) in serial.iter().zip(&env) {
        assert_identical(a, b);
    }
}

/// Resets the intra-cell parallelism overrides even if a comparison
/// panics, so a failure here cannot leak window-mode state into other
/// tests in this binary.
struct CellJobsGuard;

impl Drop for CellJobsGuard {
    fn drop(&mut self) {
        asap_mem::set_cell_jobs(None);
        asap_mem::set_parallel_window_min(None);
    }
}

/// Intra-cell parallelism (`ASAP_CELL_JOBS`) must be a pure wall-clock
/// optimization exactly like the harness pool: domain-partitioned
/// windows drained on worker threads and replayed through the serial
/// merge have to leave every observable — counters, float telemetry,
/// hot-line rankings, crash-recovery reports — byte-identical to the
/// single-wheel serial engine. Unlike the pool tests this varies the
/// engine *inside* one simulation, so it runs multi-threaded,
/// multi-channel cells plus a crash cell whose recovery replays from an
/// image flushed right after parallel windows.
#[test]
fn intra_cell_parallel_cells_are_identical_to_serial() {
    let mut specs = vec![
        WorkloadSpec::new(BenchId::Q, SchemeKind::Asap)
            .with_threads(4)
            .with_ops(40),
        WorkloadSpec::new(BenchId::Hm, SchemeKind::SwUndo)
            .with_threads(2)
            .with_ops(30),
        WorkloadSpec::new(BenchId::Bt, SchemeKind::HwRedo)
            .with_threads(2)
            .with_ops(30),
        // Telemetry cell: the sampler runs on virtual time, so its JSON
        // exports must not notice the engine swap either.
        WorkloadSpec::new(BenchId::Hm, SchemeKind::Asap)
            .with_threads(2)
            .with_ops(25)
            .with_telemetry(TelemetrySettings::enabled()),
        // Crash-recovery cell: the power failure lands after parallel
        // windows have run, so the ADR flush and recovery replay start
        // from merged state.
        WorkloadSpec::new(BenchId::Hm, SchemeKind::HwUndo)
            .with_threads(2)
            .with_ops(30)
            .with_tracking()
            .with_crash_after(40),
    ];
    // A long-residency WPQ keeps channels busy across window boundaries.
    let mut delayed = asap_sim::SystemConfig::table2();
    delayed.mem.wpq_residency = 4096;
    specs.push(
        WorkloadSpec::new(BenchId::Tpcc, SchemeKind::Asap)
            .with_threads(2)
            .with_ops(15)
            .with_system(delayed),
    );

    let serial = run_grid_with(&specs, 1, &RunCacheConfig::off());
    let _guard = CellJobsGuard;
    asap_mem::set_cell_jobs(Some(4));
    // Window-size floor of zero forces the parallel path to engage on
    // every eligible advance, not just event bursts.
    asap_mem::set_parallel_window_min(Some(0));
    let parallel = run_grid_with(&specs, 1, &RunCacheConfig::off());
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_identical(a, b);
    }
}

/// Copy-on-write crash-point sweeps must be a pure wall-clock
/// optimization exactly like the pool and the cache: every fork —
/// snapshot-restored mid-run, then crashed and recovered — has to be
/// byte-identical to the legacy one-full-run-per-point path, whether the
/// legacy reference ran serially or through the parallel pool, whether
/// the sweep ran on the serial engine or under intra-cell parallel
/// windows, and whether its cells were simulated or served from a disk
/// store.
#[test]
fn crash_sweeps_are_identical_to_legacy_crash_cells() {
    use asap_bench::run_crash_sweep_with;
    let spec = WorkloadSpec::new(BenchId::Hm, SchemeKind::Asap)
        .with_threads(2)
        .with_ops(30)
        .with_tracking();
    // Early, mid, late, and one point beyond the workload's writes (that
    // fork completes instead of crashing).
    let points = [1u64, 11, 29, 64, 1_000_000];
    let crash_specs: Vec<WorkloadSpec> = points.iter().map(|&n| spec.with_crash_after(n)).collect();

    // Legacy reference: one full re-run per point, via the parallel pool
    // (itself equivalence-tested above).
    let legacy = run_grid_with(&crash_specs, 4, &RunCacheConfig::off());

    // Serial sweep, cache off.
    let sweep = run_crash_sweep_with(&spec, &points, 16, &RunCacheConfig::off());
    assert_eq!(sweep.forks.len(), legacy.len());
    for (a, b) in sweep.forks.iter().zip(&legacy) {
        assert_identical(a, b);
    }

    // The sweep baseline minus its crash-point summary is an ordinary
    // uninterrupted run of the unarmed spec.
    let plain = run_grid_with(&[spec], 1, &RunCacheConfig::off());
    let mut base = sweep.baseline.clone();
    base.crash_points.clear();
    assert_identical(&base, &plain[0]);

    // Sweep under intra-cell parallel windows: snapshot/restore must
    // commute with the domain-partitioned engine.
    {
        let _guard = CellJobsGuard;
        asap_mem::set_cell_jobs(Some(2));
        asap_mem::set_parallel_window_min(Some(0));
        let windowed = run_crash_sweep_with(&spec, &points, 16, &RunCacheConfig::off());
        for (a, b) in windowed.forks.iter().zip(&legacy) {
            assert_identical(a, b);
        }
        assert_eq!(windowed.baseline.crash_points, sweep.baseline.crash_points);
    }

    // Cached sweeps: a cold pass populates a hermetic disk store, a warm
    // pass is served from it — forks and the rebuilt crash-point summary
    // must both be unchanged.
    let dir = std::env::temp_dir().join(format!("asap-sweep-equiv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = RunCacheConfig::disk_only(&dir, 64);
    let cold = run_crash_sweep_with(&spec, &points, 16, &store);
    let warm = run_crash_sweep_with(&spec, &points, 16, &store);
    for cached in [&cold, &warm] {
        for (a, b) in cached.forks.iter().zip(&legacy) {
            assert_identical(a, b);
        }
        assert_eq!(cached.baseline.crash_points, sweep.baseline.crash_points);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The parallel sweep engine stacks three axes of host parallelism —
/// fork-dispatch workers (`ASAP_SWEEP_JOBS`), the grid pool that produces
/// the legacy reference (`ASAP_JOBS`), and intra-cell parallel windows
/// (`ASAP_CELL_JOBS`) — and every combination must still be bit-identical
/// to the serial flat sweep and to the legacy one-run-per-point path.
/// Tree refinement (the fourth axis) rides along: tree-restored forks
/// must match flat-cadence forks under every dispatch mode.
#[test]
fn parallel_tree_sweeps_match_serial_flat_and_legacy() {
    use asap_workloads::{run_sweep_with, SweepConfig};
    let spec = WorkloadSpec::new(BenchId::Hm, SchemeKind::Asap)
        .with_threads(2)
        .with_ops(30)
        .with_tracking();
    let points = [2u64, 17, 17, 41, 1_000_000];
    let crash_specs: Vec<WorkloadSpec> = points.iter().map(|&n| spec.with_crash_after(n)).collect();
    // Legacy reference through the 4-way grid pool (the ASAP_JOBS axis).
    let legacy = run_grid_with(&crash_specs, 4, &RunCacheConfig::off());
    let flat = run_sweep_with(&spec, &points, &SweepConfig::flat(16));
    for (a, b) in flat.forks.iter().zip(&legacy) {
        assert_identical(a, b);
    }
    for cell_jobs in [None, Some(2)] {
        let _guard = CellJobsGuard;
        if let Some(j) = cell_jobs {
            asap_mem::set_cell_jobs(Some(j));
            asap_mem::set_parallel_window_min(Some(0));
        }
        for sweep_jobs in [1usize, 2, 4] {
            for cfg in [
                SweepConfig::flat(16).with_jobs(sweep_jobs),
                SweepConfig::tree(16).with_budget(2).with_jobs(sweep_jobs),
            ] {
                let sw = run_sweep_with(&spec, &points, &cfg);
                for (a, b) in sw.forks.iter().zip(&flat.forks) {
                    assert_identical(a, b);
                }
                assert_eq!(sw.baseline.crash_points, flat.baseline.crash_points);
                assert_eq!(sw.prefix_writes, flat.prefix_writes);
                if cfg.refine {
                    assert!(
                        sw.replayed_writes <= flat.replayed_writes,
                        "tree replay must not exceed flat (cell_jobs {cell_jobs:?}, {cfg:?})"
                    );
                }
            }
        }
    }
}

/// Results come back in spec order, not completion order.
#[test]
fn results_preserve_spec_order() {
    let specs = grid();
    for jobs in [2, 4, 8] {
        let results = run_grid_with(&specs, jobs, &RunCacheConfig::off());
        assert_eq!(results.len(), specs.len());
        for (spec, res) in specs.iter().zip(&results) {
            assert_eq!(res.spec.bench, spec.bench, "order broken at {jobs} jobs");
            assert_eq!(res.spec.scheme, spec.scheme, "order broken at {jobs} jobs");
            assert_eq!(
                res.spec.threads, spec.threads,
                "order broken at {jobs} jobs"
            );
        }
    }
}

/// More workers than specs must not deadlock or drop cells.
#[test]
fn more_jobs_than_specs() {
    let specs = vec![
        WorkloadSpec::new(BenchId::Q, SchemeKind::Asap)
            .with_threads(1)
            .with_ops(10),
        WorkloadSpec::new(BenchId::Q, SchemeKind::NoPersist)
            .with_threads(1)
            .with_ops(10),
    ];
    let results = run_grid_with(&specs, 16, &RunCacheConfig::off());
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|r| r.tx > 0));
}
