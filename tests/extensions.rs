//! Tests for the paper's discussion-section behaviours: the §7.3 NUMA
//! broadcast filter and §5.4's non-persistent-memory dependence policy.

use asap_core::machine::{Machine, MachineConfig};
use asap_core::scheme::SchemeKind;
use asap_sim::SystemConfig;

/// §7.3: "the Dependence List's entries can be extended to include
/// information about whether an RID exists as a dependence in a remote
/// Dependence List, which makes broadcasting the completion of an atomic
/// region more efficient." With the filter on, commit broadcasts message
/// only the channels that actually hold the dependence.
#[test]
fn numa_filter_reduces_broadcast_messages() {
    let run = |filter: bool| -> (u64, u64) {
        let mut sys = SystemConfig::small();
        sys.asap.numa_broadcast_filter = filter;
        let mut m = Machine::new(
            MachineConfig::small(SchemeKind::Asap, 2)
                .with_system(sys)
                .with_tracking(),
        );
        let a = m.pm_alloc(64 * 8).unwrap();
        for i in 0..12u64 {
            let t = (i % 2) as usize;
            m.run_thread(t, |ctx| {
                ctx.locked_region(0, |ctx| {
                    let v = ctx.read_u64(a.offset(i % 8 * 64));
                    ctx.write_u64(a.offset(i % 8 * 64), v + 1);
                });
            });
        }
        m.drain();
        let s = m.stats();
        (s.get("asap.broadcast.messages"), s.get("region.committed"))
    };
    let (unfiltered, commits_a) = run(false);
    let (filtered, commits_b) = run(true);
    assert_eq!(commits_a, commits_b, "same commits either way");
    assert_eq!(
        unfiltered,
        commits_a * 4,
        "unfiltered: one message per channel"
    );
    assert!(
        filtered < unfiltered,
        "filter must reduce messages: {filtered} vs {unfiltered}"
    );
}

/// §5.4: dependences via non-persistent (DRAM) memory are deliberately
/// not tracked — data handed between regions that matters after a crash
/// should live in persistent memory. This test documents both halves:
/// DRAM hand-off creates no hardware dependence, and the paper's
/// suggested workaround (allocate the scratch data in PM) does.
#[test]
fn non_persistent_dependences_are_not_tracked() {
    // DRAM hand-off: no dependence edge; both regions commit freely.
    let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 2));
    let scratch = m.dram_alloc(64).unwrap();
    let out = m.pm_alloc(8).unwrap();
    m.run_thread(0, |ctx| {
        ctx.locked_region(0, |ctx| {
            ctx.write_u64(scratch, 5); // DRAM: no LPO, no owner
        });
    });
    m.run_thread(1, |ctx| {
        ctx.locked_region(0, |ctx| {
            let v = ctx.read_u64(scratch);
            ctx.write_u64(out, v * 2);
        });
    });
    m.drain();
    let s = m.stats();
    assert_eq!(m.debug_read_u64(out), 10);
    assert_eq!(s.get("asap.lpo"), 1, "only the PM write was logged");

    // The workaround: the same hand-off through PM is tracked (and hence
    // crash-ordered).
    let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 2).with_tracking());
    let scratch = m.pm_alloc(64).unwrap();
    let out = m.pm_alloc(8).unwrap();
    m.run_thread(0, |ctx| {
        ctx.locked_region(0, |ctx| ctx.write_u64(scratch, 5));
    });
    m.run_thread(1, |ctx| {
        ctx.locked_region(0, |ctx| {
            let v = ctx.read_u64(scratch);
            ctx.write_u64(out, v * 2);
        });
    });
    m.crash_now();
    m.recover(); // the tracker would flag a consumer-without-producer
    let (s, o) = (m.debug_read_u64(scratch), m.debug_read_u64(out));
    if o != 0 {
        assert_eq!(s, 5, "consumer survived, so the PM producer did too");
    }
}

/// Writes to persistent memory outside any region are legal but carry no
/// atomicity guarantee; the machine counts them for visibility.
#[test]
fn non_region_pm_writes_are_counted_not_logged() {
    let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 1));
    let a = m.pm_alloc(8).unwrap();
    m.run_thread(0, |ctx| {
        ctx.write_u64(a, 3); // outside any region
    });
    m.drain();
    let s = m.stats();
    assert_eq!(s.get("machine.nonregion_pm_write"), 1);
    assert_eq!(s.get("asap.lpo"), 0);
    assert_eq!(m.debug_read_u64(a), 3);
}
