//! Cross-scheme functional equivalence: every persistence scheme must
//! produce the *same final data* for the same deterministic workload —
//! they differ in timing and traffic, never in semantics.

use asap_core::machine::RunOutcome;
use asap_core::scheme::{AsapOpts, SchemeKind};
use asap_workloads::structures::{AnyBench, Benchmark};
use asap_workloads::{run, BenchId, WorkloadSpec};

fn all_schemes() -> Vec<SchemeKind> {
    vec![
        SchemeKind::NoPersist,
        SchemeKind::SwUndo,
        SchemeKind::SwDpoOnly,
        SchemeKind::HwUndo,
        SchemeKind::HwRedo,
        SchemeKind::Asap,
        SchemeKind::AsapWith(AsapOpts::none()),
    ]
}

/// Runs the spec under every scheme and returns a stable fingerprint of
/// the final structure contents per scheme.
fn fingerprints(bench: BenchId) -> Vec<(String, String)> {
    all_schemes()
        .into_iter()
        .map(|scheme| {
            let spec = WorkloadSpec::small(bench, scheme)
                .with_ops(30)
                .with_seed(42);
            // Re-drive the machine manually so we can inspect contents.
            let mut m = asap_core::machine::Machine::new(
                asap_core::machine::MachineConfig::small(scheme, spec.threads)
                    .with_system(spec.system),
            );
            let mut b = AnyBench::create(&mut m, &spec);
            b.setup(&mut m, &spec);
            m.drain();
            m.sync_thread_clocks();
            use rand::SeedableRng;
            for t in 0..spec.threads as usize {
                let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed ^ t as u64);
                for _ in 0..spec.ops_per_thread {
                    m.run_thread(t, |ctx| b.step(ctx, &mut rng, &spec));
                }
            }
            m.drain();
            b.verify(&mut m).unwrap();
            let fp = fingerprint(&mut m, &b);
            (format!("{scheme}{:?}", scheme.commits_asynchronously()), fp)
        })
        .collect()
}

fn fingerprint(m: &mut asap_core::machine::Machine, b: &AnyBench) -> String {
    match b {
        AnyBench::Bn(t) => format!("{:?}", t.debug_keys(m)),
        AnyBench::Bt(t) => format!("{:?}", t.debug_keys(m)),
        AnyBench::Ct(t) => format!("{:?}", t.debug_keys(m)),
        AnyBench::Eo(t) => format!("{:?}", {
            let mut e = t.debug_entries(m);
            e.sort_unstable();
            e
        }),
        AnyBench::Hm(t) => format!("{:?}", {
            let mut k = t.debug_keys(m);
            k.sort_unstable();
            k
        }),
        AnyBench::Q(t) => format!("{:?}", t.debug_keys(m)),
        AnyBench::Rb(t) => format!("{:?}", t.debug_keys(m)),
        AnyBench::Ss(t) => format!("{:?}", t.debug_slot_keys(m)),
        AnyBench::Tpcc(t) => format!(
            "{:?}",
            (0..asap_workloads::structures::tpcc::DISTRICTS)
                .map(|d| t.debug_orders(m, d))
                .collect::<Vec<_>>()
        ),
    }
}

/// Note: this test runs each thread's ops in a fixed thread-major order
/// (not the virtual-time interleaving), so all schemes see the same
/// logical op sequence regardless of their timing.
#[test]
fn all_schemes_agree_on_final_state() {
    for bench in BenchId::all() {
        let fps = fingerprints(bench);
        let (first_name, first) = &fps[0];
        for (name, fp) in &fps[1..] {
            assert_eq!(
                fp, first,
                "{bench}: scheme {name} diverged from {first_name}"
            );
        }
    }
}

#[test]
fn throughput_ordering_holds_on_the_full_system() {
    // NP ≥ ASAP > HWUndo ≥ ... > SW on a dependence-heavy benchmark.
    let spec = |s| {
        WorkloadSpec::new(BenchId::Q, s)
            .with_threads(4)
            .with_ops(120)
    };
    let np = run(&spec(SchemeKind::NoPersist));
    let asap = run(&spec(SchemeKind::Asap));
    let undo = run(&spec(SchemeKind::HwUndo));
    let redo = run(&spec(SchemeKind::HwRedo));
    let sw = run(&spec(SchemeKind::SwUndo));
    for r in [&np, &asap, &undo, &redo, &sw] {
        assert_eq!(r.outcome, RunOutcome::Completed);
    }
    assert!(asap.throughput > undo.throughput, "async beats sync undo");
    assert!(asap.throughput > redo.throughput, "async beats sync redo");
    assert!(undo.throughput > sw.throughput, "hardware beats software");
    assert!(redo.throughput > sw.throughput, "hardware beats software");
    assert!(
        np.throughput >= asap.throughput * 0.95,
        "ASAP within 5% of NP"
    );
}

#[test]
fn asap_traffic_is_lowest_of_the_logging_schemes() {
    let spec = |s| {
        WorkloadSpec::new(BenchId::Q, s)
            .with_threads(4)
            .with_ops(120)
    };
    let asap = run(&spec(SchemeKind::Asap));
    let undo = run(&spec(SchemeKind::HwUndo));
    let redo = run(&spec(SchemeKind::HwRedo));
    let sw = run(&spec(SchemeKind::SwUndo));
    assert!(asap.pm_writes <= undo.pm_writes);
    assert!(asap.pm_writes < redo.pm_writes);
    assert!(asap.pm_writes < sw.pm_writes);
}
