//! Randomized crash-consistency sweep across schemes and benchmarks.
//!
//! Every run executes with the verification shadow enabled; a power
//! failure is injected at a chosen persistent write; recovery runs; and
//! the machine checks the paper's guarantees (per-thread commit order,
//! dependence closure, fence durability, atomic durability) against the
//! recovered image. On top of that, each benchmark's own structural
//! invariants (sorted trees, red-black properties, queue length, stock
//! conservation…) must hold in the recovered state — atomic durability
//! means invariants established at region boundaries survive any crash.

use asap_core::machine::RunOutcome;
use asap_core::scheme::SchemeKind;
use asap_workloads::{run, BenchId, WorkloadSpec};

fn crash_spec(bench: BenchId, scheme: SchemeKind, crash_after: u64, seed: u64) -> WorkloadSpec {
    WorkloadSpec::small(bench, scheme)
        .with_ops(40)
        .with_seed(seed)
        .with_tracking()
        .with_crash_after(crash_after)
}

/// Sweeps crash points for one scheme/bench pair; panics (inside
/// `Machine::recover`) on any consistency violation.
fn sweep(bench: BenchId, scheme: SchemeKind, points: &[u64]) {
    for (i, &p) in points.iter().enumerate() {
        let r = run(&crash_spec(bench, scheme, p, 0xC0FFEE ^ (i as u64) << 8));
        if r.outcome == RunOutcome::Completed {
            continue; // workload finished before the crash point
        }
        let report = r.recovery.expect("recovery ran");
        // Something must have been in flight at most crash points; at the
        // very least the report parses and the machine verified it.
        let _ = report.uncommitted.len();
    }
}

const EARLY: [u64; 4] = [1, 3, 7, 13];
const MID: [u64; 4] = [29, 57, 101, 173];
const LATE: [u64; 3] = [211, 307, 401];

#[test]
fn asap_survives_crashes_on_every_benchmark() {
    for bench in BenchId::all() {
        sweep(bench, SchemeKind::Asap, &EARLY);
        sweep(bench, SchemeKind::Asap, &MID);
    }
}

#[test]
fn asap_survives_late_crashes_on_dependence_heavy_benches() {
    // Q has the highest cross-region dependence rate; HM exercises
    // per-bucket concurrency; SS moves whole payloads.
    for bench in [BenchId::Q, BenchId::Hm, BenchId::Ss] {
        sweep(bench, SchemeKind::Asap, &LATE);
    }
}

#[test]
fn hw_undo_survives_crashes() {
    for bench in [BenchId::Bn, BenchId::Hm, BenchId::Q, BenchId::Tpcc] {
        sweep(bench, SchemeKind::HwUndo, &EARLY);
        sweep(bench, SchemeKind::HwUndo, &MID);
    }
}

#[test]
fn hw_redo_survives_crashes() {
    for bench in [BenchId::Bn, BenchId::Hm, BenchId::Q, BenchId::Tpcc] {
        sweep(bench, SchemeKind::HwRedo, &EARLY);
        sweep(bench, SchemeKind::HwRedo, &MID);
    }
}

#[test]
fn sw_undo_survives_crashes() {
    for bench in [BenchId::Bn, BenchId::Hm, BenchId::Q] {
        sweep(bench, SchemeKind::SwUndo, &EARLY);
        sweep(bench, SchemeKind::SwUndo, &MID);
    }
}

#[test]
fn asap_without_optimizations_is_still_crash_consistent() {
    use asap_core::scheme::AsapOpts;
    for opts in [
        AsapOpts::none(),
        AsapOpts::coalescing_only(),
        AsapOpts::coalescing_and_lpo(),
    ] {
        for bench in [BenchId::Hm, BenchId::Q] {
            sweep(bench, SchemeKind::AsapWith(opts), &MID);
        }
    }
}

#[test]
fn asap_crash_consistent_with_large_regions() {
    for bench in [BenchId::Ss, BenchId::Hm] {
        for &p in &[5, 50, 200] {
            let spec = crash_spec(bench, SchemeKind::Asap, p, 7).with_value_bytes(2048);
            let r = run(&spec);
            assert_eq!(r.outcome, RunOutcome::Crashed, "2KB regions write plenty");
        }
    }
}

#[test]
fn asap_crash_consistent_with_tiny_lh_wpq() {
    // A 2-entry LH-WPQ forces constant slot recycling (§7.4 pressure).
    for &p in &[17, 59, 131] {
        let mut spec = crash_spec(BenchId::Hm, SchemeKind::Asap, p, 3);
        spec.system = spec.system.with_lh_wpq_entries(2);
        let r = run(&spec);
        assert_eq!(r.outcome, RunOutcome::Crashed);
    }
}

#[test]
fn asap_crash_consistent_under_slow_pm() {
    // 16x PM latency keeps many more persists in flight at the crash.
    for &p in &[23, 97, 251] {
        let mut spec = crash_spec(BenchId::Q, SchemeKind::Asap, p, 11);
        spec.system = spec.system.with_pm_latency_mult(16);
        let r = run(&spec);
        assert_eq!(r.outcome, RunOutcome::Crashed);
    }
}
