//! Driving every ASAP hardware structure to its capacity limit.
//!
//! The paper sizes the CL List (4 entries/core × 8 CLPtrs), Dependence
//! List (128 entries × 4 Dep slots) and LH-WPQ (128 entries) so stalls are
//! rare; these tests shrink the structures (and slow the WPQ so regions
//! stay uncommitted) to force each stall path and prove forward progress
//! and crash consistency under pressure.

use asap_core::machine::{Machine, MachineConfig};
use asap_core::scheme::{AsapOpts, SchemeKind};
use asap_sim::SystemConfig;

/// A system whose WPQ accepts slowly: one slot per channel and a huge
/// drain residency keep persist ops pending for a long time, so regions
/// pile up uncommitted.
fn congested_system() -> SystemConfig {
    let mut sys = SystemConfig::small();
    sys.mem.wpq_entries = 1;
    sys.mem.wpq_residency = 50_000;
    sys.mem.wpq_drain_watermark = 1_000;
    sys
}

fn machine_with(sys: SystemConfig, threads: u32) -> Machine {
    machine_with_scheme(sys, threads, SchemeKind::Asap)
}

fn machine_with_scheme(sys: SystemConfig, threads: u32, scheme: SchemeKind) -> Machine {
    Machine::new(
        MachineConfig::small(scheme, threads)
            .with_system(sys)
            .with_tracking(),
    )
}

#[test]
fn cl_entry_pressure_stalls_then_progresses() {
    // >4 back-to-back regions per core while persists crawl: the 5th
    // begin must wait for a CL List entry (Done@L1 of an older region).
    let mut m = machine_with(congested_system(), 1);
    let a = m.pm_alloc(64 * 16).unwrap();
    m.run_thread(0, |ctx| {
        for i in 0..12u64 {
            ctx.begin_region();
            ctx.write_u64(a.offset(i % 16 * 64), i + 1);
            ctx.end_region();
        }
    });
    m.drain();
    let s = m.stats();
    assert!(s.get("asap.stall.cl_entries") > 0, "CL List filled: {s}");
    assert_eq!(s.get("region.committed"), 12, "all regions still committed");
    m.crash_now();
    let r = m.recover();
    assert!(r.uncommitted.is_empty());
}

#[test]
fn clptr_slot_pressure_stalls_then_progresses() {
    // One region writing 16 distinct lines with 8 CLPtr slots and a
    // crawling WPQ: slot allocation must stall and recover.
    let mut m = machine_with(congested_system(), 1);
    let a = m.pm_alloc(64 * 16).unwrap();
    m.run_thread(0, |ctx| {
        ctx.begin_region();
        for i in 0..16u64 {
            ctx.write_u64(a.offset(i * 64), i + 1);
        }
        ctx.end_region();
    });
    m.drain();
    let s = m.stats();
    assert!(
        s.get("asap.stall.clptr_slots") > 0,
        "CLPtr slots filled: {s}"
    );
    for i in 0..16u64 {
        assert_eq!(m.debug_read_u64(a.offset(i * 64)), i + 1);
    }
}

#[test]
fn dep_slot_pressure_stalls_then_progresses() {
    // Thread 1 leaves six uncommitted owner regions behind: their DPOs
    // all target the same memory channel, whose single WPQ slot is held
    // for the whole residency window, so only the first can complete.
    // Thread 0 then touches all six lines in one region — more distinct
    // dependencies than the 4 Dep slots.
    let mut sys = congested_system();
    sys.asap.cl_list_entries = 8; // let thread 1 keep 6 regions in flight
                                  // LPO dropping would recycle the congested WPQ slots at each commit
                                  // and let the pipeline cascade; turn the optimizations off so the
                                  // regions genuinely stay uncommitted.
    let mut m = machine_with_scheme(sys, 2, SchemeKind::AsapWith(AsapOpts::none()));
    let channels = u64::from(sys.mem.num_channels());
    // Same-channel lines: stride of `channels` lines.
    let a = m.pm_alloc(64 * channels * 6).unwrap();
    let line = |i: u64| a.offset(i * channels * 64);
    for i in 0..6u64 {
        m.run_thread(1, |ctx| {
            ctx.locked_region(0, |ctx| {
                ctx.write_u64(line(i), 100 + i);
            });
        });
    }
    // Reads record data dependencies without any LPO-lock wait, so all
    // six owners are still uncommitted when the 5th dependence arrives.
    let sink = m.pm_alloc(8).unwrap();
    m.run_thread(0, |ctx| {
        ctx.locked_region(0, |ctx| {
            let mut sum = 0;
            for i in 0..6u64 {
                sum += ctx.read_u64(line(i));
            }
            ctx.write_u64(sink, sum);
        });
    });
    m.drain();
    let s = m.stats();
    assert!(s.get("asap.stall.dep_slots") > 0, "Dep slots filled: {s}");
    let expect: u64 = (0..6u64).map(|i| 100 + i).sum();
    assert_eq!(m.debug_read_u64(sink), expect);
    m.crash_now();
    let r = m.recover();
    assert!(r.uncommitted.is_empty());
}

#[test]
fn dep_entry_pressure_stalls_then_progresses() {
    // One Dependence List entry per channel: two same-channel uncommitted
    // regions cannot coexist, so begins stall on entry reclamation.
    let mut sys = congested_system();
    sys.asap.dep_list_entries = 1;
    let mut m = machine_with(sys, 1);
    let a = m.pm_alloc(64 * 16).unwrap();
    m.run_thread(0, |ctx| {
        for i in 0..10u64 {
            ctx.begin_region();
            ctx.write_u64(a.offset(i % 16 * 64), i + 1);
            ctx.end_region();
        }
    });
    m.drain();
    let s = m.stats();
    assert!(
        s.get("asap.stall.dep_entries") > 0,
        "Dependence List filled: {s}"
    );
    assert_eq!(s.get("region.committed"), 10);
}

#[test]
fn lh_wpq_pressure_stalls_then_progresses() {
    let mut sys = congested_system();
    sys.asap.lh_wpq_entries = 1;
    let mut m = machine_with(sys, 1);
    let a = m.pm_alloc(64 * 16).unwrap();
    m.run_thread(0, |ctx| {
        for i in 0..10u64 {
            ctx.begin_region();
            ctx.write_u64(a.offset(i % 16 * 64), i + 1);
            ctx.end_region();
        }
    });
    m.drain();
    let s = m.stats();
    assert!(s.get("asap.stall.lh_wpq") > 0, "LH-WPQ filled: {s}");
    assert_eq!(s.get("region.committed"), 10);
}

#[test]
fn crash_under_full_pressure_recovers() {
    // Everything tiny at once, plus a crash mid-flight.
    let mut sys = congested_system();
    sys.asap.dep_list_entries = 2;
    sys.asap.lh_wpq_entries = 2;
    for crash_at in [3u64, 11, 23, 41] {
        let mut m = machine_with(sys, 2);
        let a = m.pm_alloc(64 * 8).unwrap();
        m.arm_crash_after_additional(crash_at);
        let mut crashed = false;
        'outer: for i in 0..10u64 {
            for t in 0..2usize {
                let o = m.run_thread(t, |ctx| {
                    ctx.locked_region(0, |ctx| {
                        let line = (i * 2 + t as u64) % 8;
                        let v = ctx.read_u64(a.offset(line * 64));
                        ctx.write_u64(a.offset(line * 64), v + 1);
                    });
                });
                if o == asap_core::machine::RunOutcome::Crashed {
                    crashed = true;
                    break 'outer;
                }
            }
        }
        if !crashed {
            m.crash_now();
        }
        m.recover(); // panics on any inconsistency
    }
}
