//! Persistence schemes: the paper's contribution and its four baselines.
//!
//! Every scheme implements [`Scheme`], a set of hooks the simulated
//! [`Machine`](crate::machine::Machine) invokes around workload execution:
//! region begin/end, persistent-line reads/writes, LLC evictions, memory
//! events (WPQ acceptances, PM writes), fences, crash and recovery.
//!
//! | Scheme | Commit | LPOs | DPOs | §6.3 baseline |
//! |--------|--------|------|------|---------------|
//! | [`NoPersist`](no_persist::NoPersist) | n/a | none | none | NP (upper bound) |
//! | [`SwUndo`](sw_undo::SwUndo) | sync | critical path | critical path | SW |
//! | [`HwUndo`](hw_undo::HwUndo) | sync | background | sync at end | HWUndo (Proteus-like) |
//! | [`HwRedo`](hw_redo::HwRedo) | sync (LPO only) | background | async after commit | HWRedo |
//! | [`Asap`](asap::Asap) | **async** | async | async | ASAP |

pub mod asap;
pub(crate) mod common;
pub mod hw_redo;
pub mod hw_undo;
pub mod no_persist;
pub mod sw_undo;

use std::fmt;

use asap_mem::{Evicted, MemEvent, Rid};
use asap_pmem::LineAddr;
use asap_sim::Cycle;

use crate::hw::Hw;

/// Which of ASAP's §5.1 traffic optimizations are enabled (Fig. 9a
/// ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsapOpts {
    /// DPO coalescing: delay a dirty line's DPO until `dpo_distance`
    /// updates to other lines, merging consecutive DPOs of the same line.
    pub dpo_coalescing: bool,
    /// LPO dropping: remove a committed region's log writes from the WPQ.
    pub lpo_dropping: bool,
    /// DPO dropping: remove an earlier region's WPQ-resident DPO when a
    /// later region's LPO for the same line arrives.
    pub dpo_dropping: bool,
}

impl AsapOpts {
    /// Everything on (the paper's ASAP configuration).
    pub fn all() -> Self {
        AsapOpts {
            dpo_coalescing: true,
            lpo_dropping: true,
            dpo_dropping: true,
        }
    }

    /// Everything off (`ASAP-No-Opt` in Fig. 9a).
    pub fn none() -> Self {
        AsapOpts {
            dpo_coalescing: false,
            lpo_dropping: false,
            dpo_dropping: false,
        }
    }

    /// Coalescing only (`ASAP+C`).
    pub fn coalescing_only() -> Self {
        AsapOpts {
            dpo_coalescing: true,
            lpo_dropping: false,
            dpo_dropping: false,
        }
    }

    /// Coalescing + LPO dropping (`ASAP+C+LP`).
    pub fn coalescing_and_lpo() -> Self {
        AsapOpts {
            dpo_coalescing: true,
            lpo_dropping: true,
            dpo_dropping: false,
        }
    }
}

impl Default for AsapOpts {
    fn default() -> Self {
        AsapOpts::all()
    }
}

/// Selects a persistence scheme (and its options).
///
/// # Examples
///
/// ```
/// use asap_core::scheme::{AsapOpts, SchemeKind};
///
/// assert!(SchemeKind::Asap.commits_asynchronously());
/// assert!(!SchemeKind::HwUndo.commits_asynchronously());
/// let ablation = SchemeKind::AsapWith(AsapOpts::coalescing_only());
/// assert_eq!(ablation.name(), "asap");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    /// No persistence enforced (NP): the performance upper bound.
    NoPersist,
    /// Software undo logging with flushes and fences on the critical path.
    SwUndo,
    /// Software variant that only flushes data at region end, without
    /// logging ("DPO Only" in Fig. 1).
    SwDpoOnly,
    /// Hardware undo logging with synchronous commit (Proteus-like).
    HwUndo,
    /// Hardware redo logging: synchronous LPOs at region end, async DPOs.
    HwRedo,
    /// ASAP with all optimizations.
    Asap,
    /// ASAP with a specific optimization subset (Fig. 9a ablation).
    AsapWith(AsapOpts),
}

impl SchemeKind {
    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::NoPersist => "np",
            SchemeKind::SwUndo => "sw",
            SchemeKind::SwDpoOnly => "sw-dpo-only",
            SchemeKind::HwUndo => "hw-undo",
            SchemeKind::HwRedo => "hw-redo",
            SchemeKind::Asap | SchemeKind::AsapWith(_) => "asap",
        }
    }

    /// Whether atomic regions commit asynchronously (execution proceeds
    /// past region end before the region is durable).
    pub fn commits_asynchronously(self) -> bool {
        matches!(self, SchemeKind::Asap | SchemeKind::AsapWith(_))
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What recovery did after a crash.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Regions found uncommitted at crash (rolled back, or — for redo —
    /// regions whose effects never reached data and were discarded).
    pub uncommitted: Vec<Rid>,
    /// Regions found committed-but-incomplete and rolled forward (redo).
    pub replayed: Vec<Rid>,
    /// Log data entries written back to data locations during recovery.
    pub restored_lines: u64,
}

/// Instantaneous occupancy readings a scheme reports to the telemetry
/// sampler (all zero for schemes without the corresponding structure).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchemeGauges {
    /// Live lines across all hardware/software log buffers.
    pub log_fill_lines: u64,
    /// Regions begun but not yet durable.
    pub uncommitted_regions: u64,
    /// Outstanding dependency edges regions are waiting on (ASAP's
    /// Dependence List occupancy; zero for synchronous schemes).
    pub dep_queue_depth: u64,
}

/// The hooks a persistence scheme implements.
///
/// Time flows through the hooks explicitly: each receives the thread's
/// current local clock `now` and returns the clock after the operation
/// (including any synchronous waiting the scheme performs).
///
/// `Send` is a supertrait so `Box<dyn Scheme>` — and with it
/// [`MachineSnapshot`](crate::machine::MachineSnapshot) — can move across
/// host threads: the parallel crash-sweep engine dispatches forks to a
/// worker pool. Schemes are plain owned data (no interior `Rc`/raw
/// pointers), so every implementation satisfies the bound structurally.
pub trait Scheme: Send {
    /// The scheme's kind.
    fn kind(&self) -> SchemeKind;

    /// Called once per thread before it runs (allocates log buffers —
    /// `asap_init`).
    fn on_thread_start(&mut self, hw: &mut Hw, thread: usize, now: Cycle) -> Cycle;

    /// Top-level atomic region begin (`asap_begin` reaching depth 1).
    fn on_begin(&mut self, hw: &mut Hw, thread: usize, rid: Rid, now: Cycle) -> Cycle;

    /// Top-level atomic region end (`asap_end` reaching depth 0).
    fn on_end(&mut self, hw: &mut Hw, thread: usize, rid: Rid, now: Cycle) -> Cycle;

    /// `asap_fence`: block until the thread's last region committed (§5.2).
    fn on_fence(&mut self, hw: &mut Hw, thread: usize, now: Cycle) -> Cycle;

    /// Before the bytes of a write to a persistent line are applied (the
    /// line is cached; its data still holds the old value).
    fn pre_write(
        &mut self,
        _hw: &mut Hw,
        _thread: usize,
        _rid: Rid,
        _line: LineAddr,
        now: Cycle,
    ) -> Cycle {
        now
    }

    /// After the bytes of a write to a persistent line were applied.
    fn post_write(
        &mut self,
        _hw: &mut Hw,
        _thread: usize,
        _rid: Rid,
        _line: LineAddr,
        now: Cycle,
    ) -> Cycle {
        now
    }

    /// After a read of a persistent line inside a region.
    fn post_read(
        &mut self,
        _hw: &mut Hw,
        _thread: usize,
        _rid: Rid,
        _line: LineAddr,
        now: Cycle,
    ) -> Cycle {
        now
    }

    /// An LLC eviction happened (the machine already removed the line from
    /// the caches; the scheme decides what, if anything, is written back).
    fn on_evict(&mut self, hw: &mut Hw, evicted: &Evicted, now: Cycle) {
        hw.default_evict(evicted, now);
    }

    /// A memory-system event (WPQ acceptance or PM write) to process.
    fn on_mem_event(&mut self, _hw: &mut Hw, _ev: &MemEvent) {}

    /// Current occupancy readings for the telemetry sampler. Only called
    /// when a sample is due, so an O(threads) walk is acceptable.
    fn gauges(&self) -> SchemeGauges {
        SchemeGauges::default()
    }

    /// The thread is context-switched off its core (§5.7): complete its
    /// in-flight persist bookkeeping tied to core-local structures.
    fn on_context_switch(&mut self, _hw: &mut Hw, _thread: usize, now: Cycle) -> Cycle {
        now
    }

    /// Block until all regions are durable and the memory system is idle.
    fn drain(&mut self, hw: &mut Hw, now: Cycle) -> Cycle;

    /// Power failure: flush the scheme's persistence-domain structures
    /// (Dependence List, LH-WPQ, software anchors) into the image. The
    /// machine flushes the WPQs and invalidates caches separately.
    fn on_crash(&mut self, hw: &mut Hw);

    /// Recover the image to a consistent state after [`on_crash`]
    /// (undo/redo from logs in dependence order).
    ///
    /// [`on_crash`]: Scheme::on_crash
    fn recover(&mut self, hw: &mut Hw) -> RecoveryReport;

    /// An owned deep copy of the scheme's full state, for machine
    /// snapshots (`Clone` cannot be a supertrait of an object-safe
    /// trait, hence the boxed spelling).
    fn clone_box(&self) -> Box<dyn Scheme>;
}

/// Builds the scheme selected by `kind` for a machine with configuration
/// `cfg` (ASAP sizes its hardware structures from it).
pub fn build(kind: SchemeKind, cfg: &asap_sim::SystemConfig) -> Box<dyn Scheme> {
    match kind {
        SchemeKind::NoPersist => Box::new(no_persist::NoPersist::new()),
        SchemeKind::SwUndo => Box::new(sw_undo::SwUndo::new(sw_undo::SwMode::Full)),
        SchemeKind::SwDpoOnly => Box::new(sw_undo::SwUndo::new(sw_undo::SwMode::DpoOnly)),
        SchemeKind::HwUndo => Box::new(hw_undo::HwUndo::new()),
        SchemeKind::HwRedo => Box::new(hw_redo::HwRedo::new()),
        SchemeKind::Asap => Box::new(asap::Asap::new(AsapOpts::all(), cfg)),
        SchemeKind::AsapWith(opts) => Box::new(asap::Asap::new(opts, cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(SchemeKind::NoPersist.name(), "np");
        assert_eq!(SchemeKind::Asap.name(), "asap");
        assert_eq!(SchemeKind::AsapWith(AsapOpts::none()).name(), "asap");
        assert_eq!(SchemeKind::HwUndo.to_string(), "hw-undo");
    }

    #[test]
    fn only_asap_commits_asynchronously() {
        assert!(SchemeKind::Asap.commits_asynchronously());
        assert!(SchemeKind::AsapWith(AsapOpts::none()).commits_asynchronously());
        assert!(!SchemeKind::HwUndo.commits_asynchronously());
        assert!(!SchemeKind::HwRedo.commits_asynchronously());
        assert!(!SchemeKind::SwUndo.commits_asynchronously());
        assert!(!SchemeKind::NoPersist.commits_asynchronously());
    }

    #[test]
    fn opts_presets() {
        assert_eq!(
            AsapOpts::all(),
            AsapOpts {
                dpo_coalescing: true,
                lpo_dropping: true,
                dpo_dropping: true
            }
        );
        assert!(!AsapOpts::none().dpo_coalescing);
        assert!(AsapOpts::coalescing_only().dpo_coalescing);
        assert!(!AsapOpts::coalescing_only().lpo_dropping);
        assert!(AsapOpts::coalescing_and_lpo().lpo_dropping);
        assert!(!AsapOpts::coalescing_and_lpo().dpo_dropping);
        assert_eq!(AsapOpts::default(), AsapOpts::all());
    }

    #[test]
    fn build_produces_each_kind() {
        let cfg = asap_sim::SystemConfig::small();
        for kind in [
            SchemeKind::NoPersist,
            SchemeKind::SwUndo,
            SchemeKind::SwDpoOnly,
            SchemeKind::HwUndo,
            SchemeKind::HwRedo,
            SchemeKind::Asap,
            SchemeKind::AsapWith(AsapOpts::coalescing_only()),
        ] {
            let s = build(kind, &cfg);
            assert_eq!(s.kind().name(), kind.name());
        }
    }
}
