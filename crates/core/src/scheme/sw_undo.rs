//! The SW baseline: software undo logging (§6.3).
//!
//! Software places persist operations on the critical path: every first
//! write to a line inside a region appends a log entry, flushes the entry
//! and its record header (`clwb`) and fences before the data store may
//! proceed; at region end every dirty line is flushed and a final fence
//! plus an anchor update make the region durable. Per the paper's
//! methodology the implementation is hand-optimized: persist operations to
//! the same cache line are coalesced (one flush per line per region) and
//! independent flushes overlap, separated by a single fence.
//!
//! The "DPO Only" variant (Fig. 1) skips logging entirely and only flushes
//! data at region end — it measures the cost of DPOs alone.

use std::collections::{BTreeMap, BTreeSet};

use asap_mem::{MemEvent, OpId, PersistKind, Rid};
use asap_pmem::{LineAddr, PmAddr};
use asap_sim::{Cycle, StallReason};

use crate::hw::Hw;
use crate::logbuf::LogBuffer;
use crate::recovery;
use crate::scheme::common::{wait_mem, ActiveLog};
use crate::scheme::{RecoveryReport, Scheme, SchemeGauges, SchemeKind};

/// Cost of issuing one `clwb` instruction.
const CLWB_COST: u64 = 4;
/// Cost of the `sfence` instruction itself (waiting is extra).
const SFENCE_COST: u64 = 8;

const ANCHOR_MAGIC: u32 = 0x5357_414e; // "SWAN"

/// Which flavour of the software baseline to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwMode {
    /// Full undo logging: LPOs and DPOs on the critical path.
    Full,
    /// Data flushes only, no logging ("DPO Only" in Fig. 1). No recovery
    /// guarantee.
    DpoOnly,
}

/// The per-thread persistent anchor: which region is active and where its
/// first log record lives. Updated with flush+fence, read by recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Anchor {
    active: bool,
    rid: Rid,
    first_header: PmAddr,
}

impl Anchor {
    fn encode(&self) -> [u8; 64] {
        let mut b = [0u8; 64];
        b[0..4].copy_from_slice(&ANCHOR_MAGIC.to_le_bytes());
        b[4] = u8::from(self.active);
        b[6..8].copy_from_slice(&(self.rid.thread() as u16).to_le_bytes());
        b[8..16].copy_from_slice(&self.rid.local().to_le_bytes());
        b[16..24].copy_from_slice(&self.first_header.0.to_le_bytes());
        b
    }

    fn decode(b: &[u8; 64]) -> Option<Self> {
        if u32::from_le_bytes(b[0..4].try_into().unwrap()) != ANCHOR_MAGIC {
            return None;
        }
        let thread = u16::from_le_bytes(b[6..8].try_into().unwrap());
        Some(Anchor {
            active: b[4] != 0,
            rid: Rid::new(
                u32::from(thread),
                u64::from_le_bytes(b[8..16].try_into().unwrap()),
            ),
            first_header: PmAddr(u64::from_le_bytes(b[16..24].try_into().unwrap())),
        })
    }
}

/// One thread's software-logging state.
#[derive(Clone, Debug)]
struct SwThread {
    log: LogBuffer,
    active: Option<SwRegion>,
    /// Persist ops this thread's next fence must wait for.
    outstanding: BTreeSet<OpId>,
}

#[derive(Clone, Debug)]
struct SwRegion {
    alog: Option<ActiveLog>, // None in DpoOnly mode
    logged: BTreeSet<LineAddr>,
    dirty: BTreeSet<LineAddr>,
}

/// The software undo-logging scheme.
#[derive(Clone, Debug)]
pub struct SwUndo {
    mode: SwMode,
    threads: BTreeMap<usize, SwThread>,
}

impl SwUndo {
    /// Creates the scheme in the given mode.
    pub fn new(mode: SwMode) -> Self {
        SwUndo {
            mode,
            threads: BTreeMap::new(),
        }
    }

    /// The anchor line of thread `t` (second page of the dump area).
    fn anchor_addr(hw: &Hw, t: usize) -> PmAddr {
        hw.layout.dump_base().offset(4096 + t as u64 * 64)
    }

    fn handle_event(&mut self, _hw: &mut Hw, ev: &MemEvent) {
        if let MemEvent::Accepted { id, op, .. } = ev {
            if let Some(rid) = op.rid {
                if let Some(th) = self.threads.get_mut(&(rid.thread() as usize)) {
                    th.outstanding.remove(id);
                }
            }
        }
    }

    /// `sfence`: wait until all of this thread's persists are accepted.
    fn sfence(&mut self, hw: &mut Hw, t: usize, now: Cycle) -> Cycle {
        let now = now + SFENCE_COST;
        let end = wait_mem!(self, hw, now, self.threads[&t].outstanding.is_empty());
        hw.note_stall(t, StallReason::CommitWait, now, end);
        end
    }

    /// `clwb` of `line` charged to thread `t`'s fence set.
    fn clwb(&mut self, hw: &mut Hw, t: usize, rid: Rid, line: LineAddr, now: Cycle) -> Cycle {
        if let Some(id) = hw.persist_line(line, PersistKind::SwPersist, Some(rid), None, now) {
            self.threads.get_mut(&t).unwrap().outstanding.insert(id);
        }
        now + CLWB_COST
    }

    /// Store raw bytes to a PM line as software would (through the cache),
    /// routing any evictions through the default policy.
    fn sw_store(
        &mut self,
        hw: &mut Hw,
        t: usize,
        line: LineAddr,
        data: &[u8; 64],
        now: Cycle,
    ) -> Cycle {
        let (lat, evicted) = hw.scheme_store(t, line, 0, data);
        if let Some(e) = evicted {
            self.on_evict(hw, &e, now);
        }
        now + lat
    }

    /// Write + flush + fence the thread's anchor.
    fn persist_anchor(
        &mut self,
        hw: &mut Hw,
        t: usize,
        rid: Rid,
        anchor: Anchor,
        now: Cycle,
    ) -> Cycle {
        let addr = Self::anchor_addr(hw, t);
        let now = self.sw_store(hw, t, addr.line(), &anchor.encode(), now);
        let now = self.clwb(hw, t, rid, addr.line(), now);
        self.sfence(hw, t, now)
    }
}

impl Scheme for SwUndo {
    fn clone_box(&self) -> Box<dyn Scheme> {
        Box::new(self.clone())
    }

    fn kind(&self) -> SchemeKind {
        match self.mode {
            SwMode::Full => SchemeKind::SwUndo,
            SwMode::DpoOnly => SchemeKind::SwDpoOnly,
        }
    }

    fn gauges(&self) -> SchemeGauges {
        SchemeGauges {
            log_fill_lines: self.threads.values().map(|t| t.log.live_lines()).sum(),
            uncommitted_regions: self.threads.values().filter(|t| t.active.is_some()).count()
                as u64,
            dep_queue_depth: 0,
        }
    }

    fn on_thread_start(&mut self, hw: &mut Hw, thread: usize, now: Cycle) -> Cycle {
        let log = LogBuffer::new(hw.layout.log_base(thread), hw.layout.log_bytes);
        self.threads.insert(
            thread,
            SwThread {
                log,
                active: None,
                outstanding: BTreeSet::new(),
            },
        );
        now
    }

    fn on_begin(&mut self, hw: &mut Hw, thread: usize, rid: Rid, now: Cycle) -> Cycle {
        let mode = self.mode;
        let th = self.threads.get_mut(&thread).expect("thread started");
        assert!(th.active.is_none(), "software regions do not overlap");
        let (alog, first_header) = if mode == SwMode::Full {
            let alog = ActiveLog::start(&mut th.log, rid).expect("software log overflow");
            let first = alog.header_addr;
            (Some(alog), first)
        } else {
            (None, PmAddr(0))
        };
        th.active = Some(SwRegion {
            alog,
            logged: BTreeSet::new(),
            dirty: BTreeSet::new(),
        });
        if mode == SwMode::Full {
            // Publish the active region so recovery can find its log.
            self.persist_anchor(
                hw,
                thread,
                rid,
                Anchor {
                    active: true,
                    rid,
                    first_header,
                },
                now,
            )
        } else {
            now
        }
    }

    fn pre_write(
        &mut self,
        hw: &mut Hw,
        thread: usize,
        rid: Rid,
        line: LineAddr,
        now: Cycle,
    ) -> Cycle {
        let th = self.threads.get_mut(&thread).expect("thread started");
        let Some(region) = th.active.as_mut() else {
            return now; // write outside a region: no logging
        };
        region.dirty.insert(line);
        if self.mode == SwMode::DpoOnly || region.logged.contains(&line) {
            return now;
        }
        region.logged.insert(line);
        let alog = region.alog.as_mut().expect("Full mode has a log");
        let (entry_addr, sealed) = alog
            .add_entry(&mut th.log, line)
            .expect("software log overflow");
        let header_snapshot = (alog.header_addr, alog.header.encode());
        let old = hw.line_value(line);
        // Write the log entry (old value), then the header carrying its
        // address; flush both, fence, and only then may the data store go.
        let mut now = self.sw_store(hw, thread, entry_addr.line(), &old, now);
        now = self.clwb(hw, thread, rid, entry_addr.line(), now);
        if let Some((addr, bytes)) = sealed {
            now = self.sw_store(hw, thread, addr.line(), &bytes, now);
            now = self.clwb(hw, thread, rid, addr.line(), now);
        } else {
            let (addr, bytes) = header_snapshot;
            now = self.sw_store(hw, thread, addr.line(), &bytes, now);
            now = self.clwb(hw, thread, rid, addr.line(), now);
        }
        self.sfence(hw, thread, now)
    }

    fn on_end(&mut self, hw: &mut Hw, thread: usize, rid: Rid, now: Cycle) -> Cycle {
        let th = self.threads.get_mut(&thread).expect("thread started");
        let region = th.active.take().expect("region active");
        // DPOs: flush every dirty line (issues overlap), single fence.
        let mut now = now;
        for line in &region.dirty {
            now = self.clwb(hw, thread, rid, *line, now);
        }
        now = self.sfence(hw, thread, now);
        if self.mode == SwMode::Full {
            // Retire the region: clear the anchor, then reclaim the log.
            now = self.persist_anchor(
                hw,
                thread,
                rid,
                Anchor {
                    active: false,
                    rid,
                    first_header: PmAddr(0),
                },
                now,
            );
            let th = self.threads.get_mut(&thread).unwrap();
            let end = region.alog.expect("Full mode has a log").log_end_tail;
            th.log.free_to(end);
        }
        now
    }

    fn on_fence(&mut self, hw: &mut Hw, thread: usize, now: Cycle) -> Cycle {
        self.sfence(hw, thread, now)
    }

    fn on_mem_event(&mut self, hw: &mut Hw, ev: &MemEvent) {
        self.handle_event(hw, ev);
    }

    fn drain(&mut self, hw: &mut Hw, now: Cycle) -> Cycle {
        let end = wait_mem!(self, hw, now, hw.mem.is_idle());
        hw.note_stall(0, StallReason::Drain, now, end);
        end
    }

    fn on_crash(&mut self, _hw: &mut Hw) {
        // Software keeps no extra volatile persistence-domain state: the
        // anchors and logs are ordinary persistent data, already flushed
        // through the cache/WPQ path.
    }

    fn recover(&mut self, hw: &mut Hw) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        if self.mode == SwMode::DpoOnly {
            return report; // no guarantee, nothing to recover
        }
        for t in 0..hw.thread_core.len() {
            let addr = Self::anchor_addr(hw, t);
            let Some(anchor) = Anchor::decode(&hw.image.read_line(addr.line())) else {
                continue;
            };
            if !anchor.active {
                continue;
            }
            // Walk the region's records forward from its first header:
            // a thread's synchronous region occupies consecutive records.
            let mut records = Vec::new();
            let log_base = hw.layout.log_base(t);
            let cap_lines = hw.layout.log_bytes / 64;
            let mut cursor = anchor.first_header;
            #[allow(clippy::while_let_loop)] // interior rid/full checks
            loop {
                let Some(h) =
                    crate::logbuf::RecordHeader::decode(&hw.image.read_line(cursor.line()))
                else {
                    break; // header never became durable: no entries behind it matter
                };
                if h.rid != anchor.rid {
                    break;
                }
                let full = h.is_full();
                records.push((cursor, h));
                if !full {
                    break; // a partial record is the last one
                }
                // Next record follows, with wrap padding like the allocator.
                let line_off = (cursor.0 - log_base.0) / 64 + crate::logbuf::RECORD_LINES;
                let next_off = if line_off + crate::logbuf::RECORD_LINES > cap_lines {
                    0
                } else {
                    line_off
                };
                cursor = log_base.offset(next_off * 64);
            }
            // Undo newest-first.
            records.reverse();
            report.restored_lines += recovery::undo_region(&mut hw.image, &records);
            report.uncommitted.push(anchor.rid);
            // Clear the anchor.
            let cleared = Anchor {
                active: false,
                rid: anchor.rid,
                first_header: PmAddr(0),
            };
            hw.image.write(addr, &cleared.encode());
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_roundtrip() {
        let a = Anchor {
            active: true,
            rid: Rid::new(3, 9),
            first_header: PmAddr(0x8010_0000),
        };
        assert_eq!(Anchor::decode(&a.encode()), Some(a));
        assert_eq!(Anchor::decode(&[0u8; 64]), None);
    }

    #[test]
    fn mode_maps_to_kind() {
        assert_eq!(SwUndo::new(SwMode::Full).kind(), SchemeKind::SwUndo);
        assert_eq!(SwUndo::new(SwMode::DpoOnly).kind(), SchemeKind::SwDpoOnly);
    }
}
