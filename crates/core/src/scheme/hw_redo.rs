//! The HWRedo baseline: hardware redo logging (§2.3, §6.3).
//!
//! LPOs log *new* values in the background as the region executes; at
//! region end the region waits synchronously for all LPOs plus a commit
//! marker, then commits. DPOs — in-place data updates from the log — run
//! asynchronously after commit, and the log is reclaimed only once they
//! complete (a crash in between re-initiates them from the log).
//!
//! Redo specifics modeled here:
//!
//! - a line modified again after its LPO was issued is re-logged at region
//!   end (the log must hold final values);
//! - an *uncommitted* modified line evicted from the LLC must not
//!   overwrite PM in place: its writeback is suppressed and reads are
//!   redirected to the log (modeled with a redirect buffer plus a PM-read
//!   latency penalty);
//! - consecutive regions' DPOs to the same line are filtered (the paper:
//!   "HWRedo takes advantage of using DRAM on commit to filter out any
//!   unnecessary DPOs"), and a region's undrained log writes are dropped
//!   once its DPOs complete;
//! - record-header address fields publish at LPO acceptance, and the
//!   commit marker (the final header, `committed` flag set) is written
//!   only after every log entry of the region is accepted — the region's
//!   commit point is the marker's own acceptance.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use asap_mem::{Evicted, MemEvent, OpId, PersistKind, Rid};
use asap_pmem::{LineAddr, PmAddr};
use asap_sim::{Cycle, StallReason};

use crate::hw::Hw;
use crate::logbuf::{LogBuffer, RecordHeader, MAX_ENTRIES};
use crate::recovery;
use crate::scheme::common::{wait_mem, InflightHeaders, LogAcceptTracker};
use crate::scheme::{RecoveryReport, Scheme, SchemeGauges, SchemeKind};

/// Hardware cost of the begin/end region instructions.
const MARKER_COST: u64 = 3;

#[derive(Clone, Debug)]
struct RedoThread {
    log: LogBuffer,
    active: Option<RedoRegion>,
    /// Committed regions whose async DPOs are still draining (FIFO).
    retiring: VecDeque<Retiring>,
}

#[derive(Clone, Debug)]
struct RedoRegion {
    /// Current (partial) record, if any entries were logged.
    cur_record: Option<PmAddr>,
    /// Log tail after the last allocation (for freeing at retire).
    log_end_tail: u64,
    /// Written lines; true = modified again after its LPO (needs re-log).
    lines: BTreeMap<LineAddr, bool>,
    /// LPO/header/marker ops the commit must wait for.
    pending_log: BTreeSet<OpId>,
}

#[derive(Clone, Debug)]
struct Retiring {
    rid: Rid,
    /// Global commit order (recovery replays in this order, and log
    /// reclamation follows it across threads — an older region's log may
    /// never be outlived by a newer region that shares its lines).
    seq: u64,
    log_end_tail: u64,
    last_header: PmAddr,
    pending_dpo: BTreeSet<OpId>,
}

/// The hardware redo-logging scheme.
#[derive(Clone, Debug)]
pub struct HwRedo {
    threads: BTreeMap<usize, RedoThread>,
    inflight_headers: InflightHeaders,
    log_tracker: LogAcceptTracker,
    /// Uncommitted modified lines evicted from the LLC: their (new) data,
    /// readable only via the log until commit.
    redirect: HashMap<LineAddr, [u8; 64]>,
    /// Regions currently active (uncommitted), for eviction decisions.
    active_rids: BTreeSet<Rid>,
    /// Global commit counter (orders retirement across threads).
    commit_seq: u64,
    /// Commit seqs of regions still retiring, across all threads.
    outstanding: BTreeSet<u64>,
}

impl HwRedo {
    /// Creates the scheme.
    pub fn new() -> Self {
        HwRedo {
            threads: BTreeMap::new(),
            inflight_headers: InflightHeaders::new(),
            log_tracker: LogAcceptTracker::new(),
            redirect: HashMap::new(),
            active_rids: BTreeSet::new(),
            commit_seq: 0,
            outstanding: BTreeSet::new(),
        }
    }

    /// Retires fully-drained regions in *global* commit order: a region's
    /// log is reclaimed only once every earlier-committed region (on any
    /// thread) has fully drained, so recovery can always roll the newest
    /// writer of a line forward last.
    fn retire_in_order(&mut self) {
        loop {
            let Some(&min_seq) = self.outstanding.first() else {
                return;
            };
            let mut retired = false;
            for th in self.threads.values_mut() {
                if th
                    .retiring
                    .front()
                    .is_some_and(|r| r.seq == min_seq && r.pending_dpo.is_empty())
                {
                    let r = th.retiring.pop_front().unwrap();
                    th.log.free_to(r.log_end_tail);
                    self.outstanding.remove(&r.seq);
                    retired = true;
                    break;
                }
            }
            if !retired {
                return;
            }
        }
    }

    /// Logs `data` as the redo entry for `line` in `rid`'s current record
    /// (opening records as needed).
    fn log_entry(
        &mut self,
        hw: &mut Hw,
        thread: usize,
        rid: Rid,
        line: LineAddr,
        data: [u8; 64],
        now: Cycle,
    ) {
        let th = self.threads.get_mut(&thread).expect("thread started");
        let region = th.active.as_mut().expect("region active");
        let cur = match region.cur_record {
            Some(c) => c,
            None => {
                let c = th.log.alloc_record().expect("hardware log overflow");
                let region = th.active.as_mut().unwrap();
                region.cur_record = Some(c);
                region.log_end_tail = th.log.tail();
                self.log_tracker.start_record(rid, c, None);
                c
            }
        };
        let i = self.log_tracker.reserve_slot(cur);
        let entry_addr = RecordHeader::entry_addr(cur, i);
        let lpo = hw.submit_value(
            PersistKind::Lpo,
            entry_addr.line(),
            data,
            Some(rid),
            Some(line),
            now,
        );
        self.log_tracker.register(lpo, cur, i, line);
        self.threads
            .get_mut(&thread)
            .unwrap()
            .active
            .as_mut()
            .unwrap()
            .pending_log
            .insert(lpo);
        if i + 1 == MAX_ENTRIES {
            if let Some((addr, bytes)) = self.log_tracker.request_seal(cur, false) {
                let hid = self.inflight_headers.submit(hw, rid, addr, bytes, now);
                self.threads
                    .get_mut(&thread)
                    .unwrap()
                    .active
                    .as_mut()
                    .unwrap()
                    .pending_log
                    .insert(hid);
            }
            let th = self.threads.get_mut(&thread).unwrap();
            let new_addr = th.log.alloc_record().expect("hardware log overflow");
            let region = th.active.as_mut().unwrap();
            region.log_end_tail = th.log.tail();
            self.log_tracker.start_record(rid, new_addr, Some(cur));
            th.active.as_mut().unwrap().cur_record = Some(new_addr);
        }
    }

    fn handle_event(&mut self, hw: &mut Hw, ev: &MemEvent) {
        let MemEvent::Accepted { id, op, at, .. } = ev else {
            return;
        };
        let Some(rid) = op.rid else { return };
        let t = rid.thread() as usize;
        match op.kind {
            PersistKind::Lpo | PersistKind::LogHeader => {
                self.inflight_headers.accepted(*id);
                if let Some((addr, bytes)) = self.log_tracker.accepted(*id) {
                    let hid = self.inflight_headers.submit(hw, rid, addr, bytes, *at);
                    if let Some(region) = self.threads.get_mut(&t).and_then(|th| th.active.as_mut())
                    {
                        region.pending_log.insert(hid);
                    }
                }
                if let Some(region) = self.threads.get_mut(&t).and_then(|th| th.active.as_mut()) {
                    region.pending_log.remove(id);
                }
            }
            PersistKind::Dpo => {
                let Some(th) = self.threads.get_mut(&t) else {
                    return;
                };
                for r in &mut th.retiring {
                    r.pending_dpo.remove(id);
                }
                // Reclaim logs in global commit order. Unlike ASAP, the
                // redo baseline [33] has no LPO dropping: its log writes
                // all reach the media.
                self.retire_in_order();
            }
            _ => {}
        }
    }

    /// If `line` was evicted uncommitted, its current value lives in the
    /// log: restore it into the cache and charge the log-read penalty.
    fn restore_redirected(&mut self, hw: &mut Hw, line: LineAddr, now: Cycle) -> Cycle {
        let Some(data) = self.redirect.remove(&line) else {
            return now;
        };
        let st = hw.caches.line_mut(line).expect("line was just filled");
        st.data = data;
        st.dirty = true;
        hw.stats.bump("redo.redirected_read");
        now + hw.mem.read_latency(line) // extra log lookup in PM
    }
}

impl Default for HwRedo {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheme for HwRedo {
    fn clone_box(&self) -> Box<dyn Scheme> {
        Box::new(self.clone())
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::HwRedo
    }

    fn gauges(&self) -> SchemeGauges {
        SchemeGauges {
            log_fill_lines: self.threads.values().map(|t| t.log.live_lines()).sum(),
            // Active regions are pre-commit; `retiring` regions are durable
            // and only draining DPOs, so they don't count as uncommitted.
            uncommitted_regions: self.threads.values().filter(|t| t.active.is_some()).count()
                as u64,
            dep_queue_depth: 0,
        }
    }

    fn on_thread_start(&mut self, hw: &mut Hw, thread: usize, now: Cycle) -> Cycle {
        let log = LogBuffer::new(hw.layout.log_base(thread), hw.layout.log_bytes);
        self.threads.insert(
            thread,
            RedoThread {
                log,
                active: None,
                retiring: VecDeque::new(),
            },
        );
        now
    }

    fn on_begin(&mut self, _hw: &mut Hw, thread: usize, rid: Rid, now: Cycle) -> Cycle {
        let th = self.threads.get_mut(&thread).expect("thread started");
        assert!(th.active.is_none(), "synchronous regions do not overlap");
        th.active = Some(RedoRegion {
            cur_record: None,
            log_end_tail: th.log.tail(),
            lines: BTreeMap::new(),
            pending_log: BTreeSet::new(),
        });
        self.active_rids.insert(rid);
        now + MARKER_COST
    }

    fn pre_write(
        &mut self,
        hw: &mut Hw,
        _thread: usize,
        _rid: Rid,
        line: LineAddr,
        now: Cycle,
    ) -> Cycle {
        self.restore_redirected(hw, line, now)
    }

    fn post_write(
        &mut self,
        hw: &mut Hw,
        thread: usize,
        rid: Rid,
        line: LineAddr,
        now: Cycle,
    ) -> Cycle {
        let th = self.threads.get_mut(&thread).expect("thread started");
        let Some(region) = th.active.as_mut() else {
            return now;
        };
        if let Some(stale) = region.lines.get_mut(&line) {
            *stale = true; // value changed after its LPO: re-log at end
            return now;
        }
        region.lines.insert(line, false);
        let new = hw.line_value(line); // post-write: the NEW value
        if let Some(st) = hw.caches.line_mut(line) {
            st.owner = Some(rid);
        }
        self.log_entry(hw, thread, rid, line, new, now);
        now // LPO runs in the background
    }

    fn post_read(
        &mut self,
        hw: &mut Hw,
        _thread: usize,
        _rid: Rid,
        line: LineAddr,
        now: Cycle,
    ) -> Cycle {
        self.restore_redirected(hw, line, now)
    }

    fn on_end(&mut self, hw: &mut Hw, thread: usize, rid: Rid, now: Cycle) -> Cycle {
        let mut now = now + MARKER_COST;
        // Re-log lines modified after their LPO, so the log holds finals.
        let stale: Vec<LineAddr> = {
            let region = self.threads[&thread].active.as_ref().unwrap();
            region
                .lines
                .iter()
                .filter(|(_, s)| **s)
                .map(|(l, _)| *l)
                .collect()
        };
        for line in stale {
            let data = match self.redirect.get(&line) {
                Some(d) => *d,
                None => hw.line_value(line),
            };
            self.log_entry(hw, thread, rid, line, data, now);
            let region = self
                .threads
                .get_mut(&thread)
                .unwrap()
                .active
                .as_mut()
                .unwrap();
            *region.lines.get_mut(&line).unwrap() = false;
        }
        // Commit marker: the final record seals with the committed flag
        // once all its entries are accepted; ensure a record exists even
        // for regions whose writes all landed in sealed records.
        {
            let region = self
                .threads
                .get_mut(&thread)
                .unwrap()
                .active
                .as_mut()
                .unwrap();
            let cur = match region.cur_record {
                Some(c) => c,
                None => {
                    let th = self.threads.get_mut(&thread).unwrap();
                    let c = th.log.alloc_record().expect("hardware log overflow");
                    let region = th.active.as_mut().unwrap();
                    region.cur_record = Some(c);
                    region.log_end_tail = th.log.tail();
                    self.log_tracker.start_record(rid, c, None);
                    c
                }
            };
            if let Some((addr, bytes)) = self.log_tracker.request_seal(cur, true) {
                let hid = self.inflight_headers.submit(hw, rid, addr, bytes, now);
                self.threads
                    .get_mut(&thread)
                    .unwrap()
                    .active
                    .as_mut()
                    .unwrap()
                    .pending_log
                    .insert(hid);
            }
        }
        // Synchronous LPO wait: the region commits when the log, incl. the
        // marker header, is fully in the persistence domain.
        let t0 = now;
        now = wait_mem!(self, hw, now, {
            self.threads[&thread]
                .active
                .as_ref()
                .unwrap()
                .pending_log
                .is_empty()
        });
        hw.note_stall(thread, StallReason::CommitWait, t0, now);
        // Committed: kick off asynchronous DPOs and move to retiring.
        let region = self
            .threads
            .get_mut(&thread)
            .unwrap()
            .active
            .take()
            .unwrap();
        self.active_rids.remove(&rid);
        let mut pending_dpo = BTreeSet::new();
        for &line in region.lines.keys() {
            hw.mem.drop_pending_dpo(line, rid); // supersede earlier DPOs
            let id = match self.redirect.remove(&line) {
                Some(data) => {
                    Some(hw.submit_value(PersistKind::Dpo, line, data, Some(rid), None, now))
                }
                None => hw.persist_line(line, PersistKind::Dpo, Some(rid), None, now),
            };
            if let Some(id) = id {
                pending_dpo.insert(id);
            }
        }
        hw.stats.bump("region.committed");
        let seq = self.commit_seq;
        self.commit_seq += 1;
        self.outstanding.insert(seq);
        let th = self.threads.get_mut(&thread).unwrap();
        let last_header = region.cur_record.expect("marker record exists");
        th.retiring.push_back(Retiring {
            rid,
            seq,
            log_end_tail: region.log_end_tail,
            last_header,
            pending_dpo,
        });
        self.retire_in_order();
        now
    }

    fn on_fence(&mut self, _hw: &mut Hw, _thread: usize, now: Cycle) -> Cycle {
        now // regions are durable (committed) at end; DPOs are recoverable
    }

    fn on_evict(&mut self, hw: &mut Hw, evicted: &Evicted, now: Cycle) {
        if evicted.state.dirty
            && evicted.line.is_pm_region()
            && evicted
                .state
                .owner
                .is_some_and(|o| self.active_rids.contains(&o))
        {
            // Uncommitted new value must not reach PM in place: keep it
            // aside; reads are redirected to the log (§2.3).
            self.redirect.insert(evicted.line, evicted.state.data);
            hw.stats.bump("redo.suppressed_writeback");
            return;
        }
        hw.default_evict(evicted, now);
    }

    fn on_mem_event(&mut self, hw: &mut Hw, ev: &MemEvent) {
        self.handle_event(hw, ev);
    }

    fn drain(&mut self, hw: &mut Hw, now: Cycle) -> Cycle {
        let end = wait_mem!(self, hw, now, {
            hw.mem.is_idle() && self.threads.values().all(|t| t.retiring.is_empty())
        });
        hw.note_stall(0, StallReason::Drain, now, end);
        end
    }

    fn on_crash(&mut self, hw: &mut Hw) {
        // Retiring regions are committed but possibly not yet in place:
        // dump them for roll-forward. Active regions are simply discarded.
        let mut blob = Vec::new();
        blob.extend_from_slice(b"HWRE");
        // Oldest commit first: recovery replays in this order so the
        // newest writer of any line wins.
        let mut retiring: Vec<(u64, u16, u64, u64)> = self
            .threads
            .values()
            .flat_map(|th| th.retiring.iter())
            .map(|r| (r.seq, r.rid.thread() as u16, r.rid.local(), r.last_header.0))
            .collect();
        retiring.sort_unstable();
        blob.extend_from_slice(&(retiring.len() as u32).to_le_bytes());
        for (_, t, l, a) in retiring {
            blob.extend_from_slice(&t.to_le_bytes());
            blob.extend_from_slice(&l.to_le_bytes());
            blob.extend_from_slice(&a.to_le_bytes());
        }
        // Uncommitted regions are reported so verification knows them.
        let active: Vec<(u16, u64)> = self
            .active_rids
            .iter()
            .map(|r| (r.thread() as u16, r.local()))
            .collect();
        blob.extend_from_slice(&(active.len() as u32).to_le_bytes());
        for (t, l) in active {
            blob.extend_from_slice(&t.to_le_bytes());
            blob.extend_from_slice(&l.to_le_bytes());
        }
        self.inflight_headers.flush(&mut hw.image);
        self.log_tracker.flush(&mut hw.image);
        let base = hw.layout.dump_base();
        recovery::write_dump(&mut hw.image, base, &[&blob]);
    }

    fn recover(&mut self, hw: &mut Hw) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let base = hw.layout.dump_base();
        let Some(sections) = recovery::read_dump(&hw.image, base) else {
            return report;
        };
        let blob = &sections[0];
        assert_eq!(&blob[0..4], b"HWRE", "wrong dump for HwRedo recovery");
        let n = u32::from_le_bytes(blob[4..8].try_into().unwrap()) as usize;
        let mut p = 8;
        for _ in 0..n {
            let t = u16::from_le_bytes(blob[p..p + 2].try_into().unwrap());
            let l = u64::from_le_bytes(blob[p + 2..p + 10].try_into().unwrap());
            let a = u64::from_le_bytes(blob[p + 10..p + 18].try_into().unwrap());
            p += 18;
            let rid = Rid::new(u32::from(t), l);
            let records = recovery::collect_records(&hw.image, PmAddr(a), rid);
            assert!(
                records.first().is_some_and(|(_, h)| h.committed),
                "retiring region {rid} lacks a durable commit marker"
            );
            report.restored_lines += recovery::redo_region(&mut hw.image, &records);
            report.replayed.push(rid);
        }
        let na = u32::from_le_bytes(blob[p..p + 4].try_into().unwrap()) as usize;
        p += 4;
        for _ in 0..na {
            let t = u16::from_le_bytes(blob[p..p + 2].try_into().unwrap());
            let l = u64::from_le_bytes(blob[p + 2..p + 10].try_into().unwrap());
            p += 10;
            report.uncommitted.push(Rid::new(u32::from(t), l));
        }
        recovery::clear_dump(&mut hw.image, base);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_is_hw_redo() {
        assert_eq!(HwRedo::new().kind(), SchemeKind::HwRedo);
    }

    #[test]
    fn fence_is_free() {
        let mut hw = Hw::new(asap_sim::SystemConfig::small(), 1, 1 << 20, 1 << 20);
        let mut s = HwRedo::new();
        assert_eq!(s.on_fence(&mut hw, 0, Cycle(3)), Cycle(3));
    }
}
