//! ASAP's hardware structures: CL List, Dependence List, LH-WPQ (§4.3).

use std::collections::HashMap;

use asap_mem::Rid;
use asap_pmem::{LineAddr, PmAddr};

use crate::logbuf::RecordHeader;

// ---------------------------------------------------------------------------
// Modified Cache Line List (❸, per core)
// ---------------------------------------------------------------------------

/// State of one CLPtr slot's DPO.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DpoState {
    /// Waiting for the coalescing distance or region end (and the LPO).
    Pending {
        /// Updates to *other* cache lines since this line's last write.
        other_writes: u32,
    },
    /// DPO submitted, waiting for WPQ acceptance.
    Initiated,
}

/// One CLPtr slot: a modified line whose DPO has not yet completed.
#[derive(Clone, Copy, Debug)]
pub struct ClSlot {
    /// The modified cache line.
    pub line: LineAddr,
    /// DPO progress.
    pub dpo: DpoState,
}

/// One CL List entry: an atomic region's modified-line tracking.
#[derive(Clone, Debug)]
pub struct ClEntry {
    /// The region.
    pub rid: Rid,
    /// `asap_end` was reached — no more writes will arrive (state Done,
    /// Fig. 4 ②).
    pub done: bool,
    /// Occupied CLPtr slots.
    pub slots: Vec<ClSlot>,
}

impl ClEntry {
    /// Index of the slot tracking `line`, if present.
    pub fn slot_of(&self, line: LineAddr) -> Option<usize> {
        self.slots.iter().position(|s| s.line == line)
    }
}

/// The per-core Modified Cache Line Lists.
///
/// Each core has `entry_cap` entries (paper: 4) of `slot_cap` CLPtr slots
/// (paper: 8). A region's entry lives from `asap_begin` until all its DPOs
/// complete after `asap_end` (Done@L1, Fig. 4 ③).
#[derive(Clone, Debug)]
pub struct ClLists {
    per_core: Vec<Vec<ClEntry>>,
    entry_cap: usize,
    slot_cap: usize,
}

impl ClLists {
    /// Creates lists for `cores` cores.
    pub fn new(cores: usize, entry_cap: usize, slot_cap: usize) -> Self {
        ClLists {
            per_core: vec![Vec::new(); cores],
            entry_cap,
            slot_cap,
        }
    }

    /// Whether core `c` has a free entry.
    pub fn has_free_entry(&self, c: usize) -> bool {
        self.per_core[c].len() < self.entry_cap
    }

    /// Creates an entry for `rid` on core `c`.
    ///
    /// # Panics
    ///
    /// Panics if the core's list is full — callers must stall first.
    pub fn insert(&mut self, c: usize, rid: Rid) {
        assert!(self.has_free_entry(c), "CL List full on core {c}");
        self.per_core[c].push(ClEntry {
            rid,
            done: false,
            slots: Vec::new(),
        });
    }

    /// The entry for `rid` on core `c`, if present.
    pub fn entry_mut(&mut self, c: usize, rid: Rid) -> Option<&mut ClEntry> {
        self.per_core[c].iter_mut().find(|e| e.rid == rid)
    }

    /// Immutable entry lookup.
    pub fn entry(&self, c: usize, rid: Rid) -> Option<&ClEntry> {
        self.per_core[c].iter().find(|e| e.rid == rid)
    }

    /// Removes `rid`'s entry from core `c` (Done@L1).
    pub fn remove(&mut self, c: usize, rid: Rid) {
        self.per_core[c].retain(|e| e.rid != rid);
    }

    /// Whether `rid`'s entry on core `c` can take one more CLPtr.
    pub fn has_free_slot(&self, c: usize, rid: Rid) -> bool {
        self.entry(c, rid)
            .is_some_and(|e| e.slots.len() < self.slot_cap)
    }

    /// CLPtr slot capacity per entry.
    pub fn slot_cap(&self) -> usize {
        self.slot_cap
    }

    /// All entries on core `c`.
    pub fn entries(&self, c: usize) -> &[ClEntry] {
        &self.per_core[c]
    }

    /// Clears core `c`'s list (context switch, §5.7 — after the persist
    /// operations for each slot have completed).
    pub fn clear_core(&mut self, c: usize) {
        self.per_core[c].clear();
    }
}

// ---------------------------------------------------------------------------
// Dependence List (❹, per memory channel; persistence domain)
// ---------------------------------------------------------------------------

/// One Dependence List entry: an uncommitted region and what it awaits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepEntry {
    /// The region.
    pub rid: Rid,
    /// All the region's modified lines persisted (Done@MC, Fig. 4 ③).
    pub done: bool,
    /// Regions this one depends on (Dep slots; paper: 4).
    pub deps: Vec<Rid>,
}

impl DepEntry {
    /// Ready to commit: all lines persisted and all dependencies met.
    pub fn committable(&self) -> bool {
        self.done && self.deps.is_empty()
    }
}

/// Outcome of trying to record a dependence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddDep {
    /// Recorded (or already present).
    Added,
    /// The dependence target already committed — nothing to record.
    TargetGone,
    /// All Dep slots occupied; the caller must stall (§4.6.3).
    SlotsFull,
}

/// The per-channel Dependence Lists.
#[derive(Clone, Debug)]
pub struct DepLists {
    per_channel: Vec<Vec<DepEntry>>,
    entry_cap: usize,
    slot_cap: usize,
}

impl DepLists {
    /// Creates lists for `channels` channels (paper: 128 entries × 4 Dep
    /// slots each).
    pub fn new(channels: usize, entry_cap: usize, slot_cap: usize) -> Self {
        DepLists {
            per_channel: vec![Vec::new(); channels],
            entry_cap,
            slot_cap,
        }
    }

    fn channel(&self, rid: Rid) -> usize {
        rid.channel(self.per_channel.len() as u32) as usize
    }

    /// Whether `rid`'s home channel has a free entry.
    pub fn has_free_entry(&self, rid: Rid) -> bool {
        self.per_channel[self.channel(rid)].len() < self.entry_cap
    }

    /// Inserts an InProgress entry for `rid`.
    ///
    /// # Panics
    ///
    /// Panics if the channel is full — callers must stall first.
    pub fn insert(&mut self, rid: Rid) {
        let ch = self.channel(rid);
        assert!(
            self.per_channel[ch].len() < self.entry_cap,
            "Dependence List full on channel {ch}"
        );
        self.per_channel[ch].push(DepEntry {
            rid,
            done: false,
            deps: Vec::new(),
        });
    }

    /// Looks up `rid`'s entry.
    pub fn get(&self, rid: Rid) -> Option<&DepEntry> {
        self.per_channel[self.channel(rid)]
            .iter()
            .find(|e| e.rid == rid)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, rid: Rid) -> Option<&mut DepEntry> {
        let ch = self.channel(rid);
        self.per_channel[ch].iter_mut().find(|e| e.rid == rid)
    }

    /// Whether `rid` is still uncommitted (present in any list).
    pub fn contains(&self, rid: Rid) -> bool {
        self.get(rid).is_some()
    }

    /// Records that `rid` depends on `dep`.
    pub fn add_dep(&mut self, rid: Rid, dep: Rid) -> AddDep {
        if !self.contains(dep) {
            return AddDep::TargetGone;
        }
        let slot_cap = self.slot_cap;
        let e = self
            .get_mut(rid)
            .expect("region must have a Dependence List entry");
        if e.deps.contains(&dep) {
            return AddDep::Added;
        }
        if e.deps.len() >= slot_cap {
            return AddDep::SlotsFull;
        }
        e.deps.push(dep);
        AddDep::Added
    }

    /// Removes `rid`'s entry (commit, Fig. 4 ④).
    pub fn remove(&mut self, rid: Rid) {
        let ch = self.channel(rid);
        self.per_channel[ch].retain(|e| e.rid != rid);
    }

    /// Broadcast: clears `dep` from every entry's Dep slots; returns the
    /// regions whose last dependence was just cleared (commit candidates).
    pub fn clear_dep_everywhere(&mut self, dep: Rid) -> Vec<Rid> {
        self.clear_dep_counting(dep).0
    }

    /// Like [`clear_dep_everywhere`](Self::clear_dep_everywhere) but also
    /// reports how many channels actually held `dep` in a Dep slot — the
    /// §7.3 NUMA extension uses this to send completion messages only to
    /// the (remote) Dependence Lists that need them.
    pub fn clear_dep_counting(&mut self, dep: Rid) -> (Vec<Rid>, u32) {
        let mut unblocked = Vec::new();
        let mut channels_holding = 0;
        for ch in &mut self.per_channel {
            let mut held = false;
            for e in ch.iter_mut() {
                if let Some(i) = e.deps.iter().position(|d| *d == dep) {
                    e.deps.remove(i);
                    held = true;
                    if e.committable() {
                        unblocked.push(e.rid);
                    }
                }
            }
            channels_holding += u32::from(held);
        }
        (unblocked, channels_holding)
    }

    /// Dep slots per entry.
    pub fn slot_cap(&self) -> usize {
        self.slot_cap
    }

    /// Whether every channel's list is empty (bloom filters may clear).
    pub fn all_empty(&self) -> bool {
        self.per_channel.iter().all(|c| c.is_empty())
    }

    /// Iterates over all entries across channels.
    pub fn iter(&self) -> impl Iterator<Item = &DepEntry> {
        self.per_channel.iter().flatten()
    }

    /// Total entries across channels.
    pub fn len(&self) -> usize {
        self.per_channel.iter().map(Vec::len).sum()
    }

    /// Whether there are no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes all entries (crash dump).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"DEPS");
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for e in self.iter() {
            out.extend_from_slice(&(e.rid.thread() as u16).to_le_bytes());
            out.extend_from_slice(&e.rid.local().to_le_bytes());
            out.push(u8::from(e.done));
            out.push(e.deps.len() as u8);
            for d in &e.deps {
                out.extend_from_slice(&(d.thread() as u16).to_le_bytes());
                out.extend_from_slice(&d.local().to_le_bytes());
            }
        }
        out
    }

    /// Parses a crash dump produced by [`encode`](Self::encode).
    pub fn decode(bytes: &[u8]) -> Option<Vec<DepEntry>> {
        let mut p = 0usize;
        if bytes.get(p..p + 4)? != b"DEPS" {
            return None;
        }
        p += 4;
        let n = u32::from_le_bytes(bytes.get(p..p + 4)?.try_into().ok()?) as usize;
        p += 4;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let thread = u16::from_le_bytes(bytes.get(p..p + 2)?.try_into().ok()?);
            p += 2;
            let local = u64::from_le_bytes(bytes.get(p..p + 8)?.try_into().ok()?);
            p += 8;
            let done = *bytes.get(p)? != 0;
            p += 1;
            let nd = *bytes.get(p)? as usize;
            p += 1;
            let mut deps = Vec::with_capacity(nd);
            for _ in 0..nd {
                let dt = u16::from_le_bytes(bytes.get(p..p + 2)?.try_into().ok()?);
                p += 2;
                let dl = u64::from_le_bytes(bytes.get(p..p + 8)?.try_into().ok()?);
                p += 8;
                deps.push(Rid::new(u32::from(dt), dl));
            }
            out.push(DepEntry {
                rid: Rid::new(u32::from(thread), local),
                done,
                deps,
            });
        }
        Some(out)
    }
}

// ---------------------------------------------------------------------------
// LH-WPQ (per channel; persistence domain)
// ---------------------------------------------------------------------------

/// One LH-WPQ entry: the latest (possibly partial) log record header of an
/// uncommitted region, with its destination address (Fig. 5b).
#[derive(Clone, Debug)]
pub struct LhEntry {
    /// The region owning this record.
    pub rid: Rid,
    /// Where the header will be written in PM (`LogHeaderAddr`).
    pub header_addr: PmAddr,
    /// The in-flight header contents.
    pub header: RecordHeader,
}

/// The per-channel Log Header WPQs.
///
/// Each uncommitted region that has logged at least one entry holds exactly
/// one slot: its latest record's header. When a record fills, the header
/// moves to the WPQ and the slot is reused for the region's next record;
/// the slot is released at commit (the partial header is never written).
/// A full LH-WPQ stalls new LPOs until some region commits (§7.4).
#[derive(Clone, Debug)]
pub struct LhWpq {
    per_channel: Vec<Vec<LhEntry>>,
    cap: usize,
}

impl LhWpq {
    /// Creates `channels` queues of `cap` entries each (paper: 128).
    pub fn new(channels: usize, cap: usize) -> Self {
        LhWpq {
            per_channel: vec![Vec::new(); channels],
            cap,
        }
    }

    fn channel(&self, rid: Rid) -> usize {
        rid.channel(self.per_channel.len() as u32) as usize
    }

    /// Whether `rid`'s home channel can take another entry.
    pub fn has_room(&self, rid: Rid) -> bool {
        self.per_channel[self.channel(rid)].len() < self.cap
    }

    /// Inserts a fresh header entry for `rid`.
    ///
    /// # Panics
    ///
    /// Panics if the channel is full — callers must stall first.
    pub fn insert(&mut self, rid: Rid, header_addr: PmAddr, header: RecordHeader) {
        let ch = self.channel(rid);
        assert!(
            self.per_channel[ch].len() < self.cap,
            "LH-WPQ full on channel {ch}"
        );
        self.per_channel[ch].push(LhEntry {
            rid,
            header_addr,
            header,
        });
    }

    /// The entry for `rid`, if it holds one.
    pub fn get(&self, rid: Rid) -> Option<&LhEntry> {
        self.per_channel[self.channel(rid)]
            .iter()
            .find(|e| e.rid == rid)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, rid: Rid) -> Option<&mut LhEntry> {
        let ch = self.channel(rid);
        self.per_channel[ch].iter_mut().find(|e| e.rid == rid)
    }

    /// Releases `rid`'s slot (commit), returning the entry if present.
    pub fn remove(&mut self, rid: Rid) -> Option<LhEntry> {
        let ch = self.channel(rid);
        let i = self.per_channel[ch].iter().position(|e| e.rid == rid)?;
        Some(self.per_channel[ch].remove(i))
    }

    /// Iterates over all held entries.
    pub fn iter(&self) -> impl Iterator<Item = &LhEntry> {
        self.per_channel.iter().flatten()
    }

    /// Total entries held.
    pub fn len(&self) -> usize {
        self.per_channel.iter().map(Vec::len).sum()
    }

    /// Whether no entries are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the region → final-header-address table (crash dump).
    pub fn encode_table(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"LHWQ");
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for e in self.iter() {
            out.extend_from_slice(&(e.rid.thread() as u16).to_le_bytes());
            out.extend_from_slice(&e.rid.local().to_le_bytes());
            out.extend_from_slice(&e.header_addr.0.to_le_bytes());
        }
        out
    }

    /// Parses the table from a crash dump.
    pub fn decode_table(bytes: &[u8]) -> Option<HashMap<Rid, PmAddr>> {
        let mut p = 0usize;
        if bytes.get(p..p + 4)? != b"LHWQ" {
            return None;
        }
        p += 4;
        let n = u32::from_le_bytes(bytes.get(p..p + 4)?.try_into().ok()?) as usize;
        p += 4;
        let mut out = HashMap::with_capacity(n);
        for _ in 0..n {
            let t = u16::from_le_bytes(bytes.get(p..p + 2)?.try_into().ok()?);
            p += 2;
            let l = u64::from_le_bytes(bytes.get(p..p + 8)?.try_into().ok()?);
            p += 8;
            let a = u64::from_le_bytes(bytes.get(p..p + 8)?.try_into().ok()?);
            p += 8;
            out.insert(Rid::new(u32::from(t), l), PmAddr(a));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(t: u32, l: u64) -> Rid {
        Rid::new(t, l)
    }

    // -------------------- CL List --------------------

    #[test]
    fn cl_list_capacity_per_core() {
        let mut cl = ClLists::new(2, 4, 8);
        for i in 0..4 {
            assert!(cl.has_free_entry(0));
            cl.insert(0, rid(0, i));
        }
        assert!(!cl.has_free_entry(0));
        assert!(cl.has_free_entry(1), "other core unaffected");
        cl.remove(0, rid(0, 2));
        assert!(cl.has_free_entry(0));
    }

    #[test]
    #[should_panic(expected = "CL List full")]
    fn cl_list_overflow_panics() {
        let mut cl = ClLists::new(1, 1, 8);
        cl.insert(0, rid(0, 1));
        cl.insert(0, rid(0, 2));
    }

    #[test]
    fn cl_slots_track_lines() {
        let mut cl = ClLists::new(1, 4, 2);
        cl.insert(0, rid(0, 1));
        let e = cl.entry_mut(0, rid(0, 1)).unwrap();
        e.slots.push(ClSlot {
            line: LineAddr(5),
            dpo: DpoState::Pending { other_writes: 0 },
        });
        assert_eq!(e.slot_of(LineAddr(5)), Some(0));
        assert_eq!(e.slot_of(LineAddr(6)), None);
        assert!(cl.has_free_slot(0, rid(0, 1)));
        cl.entry_mut(0, rid(0, 1)).unwrap().slots.push(ClSlot {
            line: LineAddr(6),
            dpo: DpoState::Initiated,
        });
        assert!(!cl.has_free_slot(0, rid(0, 1)));
    }

    #[test]
    fn cl_clear_core_removes_everything() {
        let mut cl = ClLists::new(1, 4, 8);
        cl.insert(0, rid(0, 1));
        cl.insert(0, rid(0, 2));
        cl.clear_core(0);
        assert!(cl.entries(0).is_empty());
    }

    // -------------------- Dependence List --------------------

    #[test]
    fn dep_entries_live_on_rid_channel() {
        let mut d = DepLists::new(4, 128, 4);
        d.insert(rid(0, 1));
        d.insert(rid(0, 2));
        assert!(d.contains(rid(0, 1)));
        assert!(d.contains(rid(0, 2)));
        assert!(!d.contains(rid(0, 3)));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn add_dep_outcomes() {
        let mut d = DepLists::new(2, 8, 2);
        d.insert(rid(0, 1));
        d.insert(rid(0, 2));
        d.insert(rid(1, 1));
        d.insert(rid(1, 2));
        assert_eq!(d.add_dep(rid(0, 2), rid(0, 1)), AddDep::Added);
        assert_eq!(d.add_dep(rid(0, 2), rid(0, 1)), AddDep::Added, "idempotent");
        assert_eq!(d.get(rid(0, 2)).unwrap().deps.len(), 1);
        assert_eq!(d.add_dep(rid(0, 2), rid(9, 9)), AddDep::TargetGone);
        assert_eq!(d.add_dep(rid(0, 2), rid(1, 1)), AddDep::Added);
        assert_eq!(d.add_dep(rid(0, 2), rid(1, 2)), AddDep::SlotsFull);
    }

    #[test]
    fn broadcast_clears_and_reports_unblocked() {
        let mut d = DepLists::new(2, 8, 4);
        d.insert(rid(0, 1));
        d.insert(rid(0, 2));
        d.insert(rid(1, 5));
        d.add_dep(rid(0, 2), rid(0, 1));
        d.add_dep(rid(1, 5), rid(0, 1));
        d.get_mut(rid(0, 2)).unwrap().done = true;
        // r0.2 is done and its only dep is r0.1: broadcast unblocks it.
        let unblocked = d.clear_dep_everywhere(rid(0, 1));
        assert_eq!(unblocked, vec![rid(0, 2)]);
        assert!(d.get(rid(1, 5)).unwrap().deps.is_empty());
        assert!(!d.get(rid(1, 5)).unwrap().committable(), "not done yet");
    }

    #[test]
    fn counting_broadcast_reports_holding_channels() {
        let mut d = DepLists::new(4, 8, 4);
        // Dependents on channels 1 and 2 (locals 1, 2); target on ch 3.
        d.insert(rid(0, 3));
        d.insert(rid(0, 1));
        d.insert(rid(0, 2));
        d.add_dep(rid(0, 1), rid(0, 3));
        d.add_dep(rid(0, 2), rid(0, 3));
        let (unblocked, channels) = d.clear_dep_counting(rid(0, 3));
        assert_eq!(channels, 2, "only two channels held the dependence");
        assert!(unblocked.is_empty(), "entries not done yet");
        let (_, channels) = d.clear_dep_counting(rid(0, 3));
        assert_eq!(channels, 0, "already cleared");
    }

    #[test]
    fn committable_requires_done_and_no_deps() {
        let e = DepEntry {
            rid: rid(0, 1),
            done: false,
            deps: vec![],
        };
        assert!(!e.committable());
        let e = DepEntry {
            rid: rid(0, 1),
            done: true,
            deps: vec![rid(0, 0)],
        };
        assert!(!e.committable());
        let e = DepEntry {
            rid: rid(0, 1),
            done: true,
            deps: vec![],
        };
        assert!(e.committable());
    }

    #[test]
    fn dep_capacity_is_per_channel() {
        let mut d = DepLists::new(2, 1, 4);
        d.insert(rid(0, 2)); // channel 0
        assert!(!d.has_free_entry(rid(0, 4)), "channel 0 full");
        assert!(d.has_free_entry(rid(0, 3)), "channel 1 free");
    }

    #[test]
    fn dep_encode_decode_roundtrip() {
        let mut d = DepLists::new(4, 128, 4);
        d.insert(rid(0, 1));
        d.insert(rid(1, 7));
        d.add_dep(rid(1, 7), rid(0, 1));
        d.get_mut(rid(0, 1)).unwrap().done = true;
        let entries = DepLists::decode(&d.encode()).unwrap();
        assert_eq!(entries.len(), 2);
        let e17 = entries.iter().find(|e| e.rid == rid(1, 7)).unwrap();
        assert_eq!(e17.deps, vec![rid(0, 1)]);
        let e01 = entries.iter().find(|e| e.rid == rid(0, 1)).unwrap();
        assert!(e01.done);
    }

    #[test]
    fn dep_decode_rejects_garbage() {
        assert!(DepLists::decode(b"NOPE").is_none());
        assert!(DepLists::decode(&[]).is_none());
    }

    #[test]
    fn all_empty_after_removals() {
        let mut d = DepLists::new(2, 8, 4);
        assert!(d.all_empty());
        d.insert(rid(0, 1));
        assert!(!d.all_empty());
        d.remove(rid(0, 1));
        assert!(d.all_empty());
        assert!(d.is_empty());
    }

    // -------------------- LH-WPQ --------------------

    #[test]
    fn lh_wpq_one_slot_per_region() {
        let mut lh = LhWpq::new(2, 2);
        let h = RecordHeader::new(rid(0, 1), None);
        lh.insert(rid(0, 1), PmAddr(0x1000), h);
        assert!(lh.get(rid(0, 1)).is_some());
        assert_eq!(lh.len(), 1);
        let e = lh.remove(rid(0, 1)).unwrap();
        assert_eq!(e.header_addr, PmAddr(0x1000));
        assert!(lh.is_empty());
    }

    #[test]
    fn lh_wpq_capacity_per_channel() {
        let mut lh = LhWpq::new(2, 1);
        lh.insert(rid(0, 2), PmAddr(64), RecordHeader::new(rid(0, 2), None)); // ch 0
        assert!(!lh.has_room(rid(0, 4)), "channel 0 full");
        assert!(lh.has_room(rid(0, 3)), "channel 1 has room");
    }

    #[test]
    #[should_panic(expected = "LH-WPQ full")]
    fn lh_wpq_overflow_panics() {
        let mut lh = LhWpq::new(1, 1);
        lh.insert(rid(0, 1), PmAddr(0), RecordHeader::new(rid(0, 1), None));
        lh.insert(rid(0, 2), PmAddr(64), RecordHeader::new(rid(0, 2), None));
    }

    #[test]
    fn lh_table_roundtrip() {
        let mut lh = LhWpq::new(4, 128);
        lh.insert(rid(0, 1), PmAddr(0x100), RecordHeader::new(rid(0, 1), None));
        lh.insert(rid(2, 9), PmAddr(0x940), RecordHeader::new(rid(2, 9), None));
        let table = LhWpq::decode_table(&lh.encode_table()).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table[&rid(0, 1)], PmAddr(0x100));
        assert_eq!(table[&rid(2, 9)], PmAddr(0x940));
        assert!(LhWpq::decode_table(b"XXXX").is_none());
    }

    #[test]
    fn header_mutation_through_get_mut() {
        let mut lh = LhWpq::new(1, 4);
        lh.insert(rid(0, 1), PmAddr(0), RecordHeader::new(rid(0, 1), None));
        lh.get_mut(rid(0, 1))
            .unwrap()
            .header
            .push_entry(LineAddr(42));
        assert_eq!(lh.get(rid(0, 1)).unwrap().header.count, 1);
    }
}
