//! ASAP: asynchronous-commit hardware undo logging (§4, §5).
//!
//! The scheme ties together the hardware structures of Fig. 3:
//!
//! - **Thread State Registers** (❶): per-thread log buffer registers and
//!   the current region id;
//! - **Cache line tag extensions** (❷): `PBit`, `LockBit`, `OwnerRID`
//!   (held in [`asap_mem::LineState`]);
//! - **Modified Cache Line List** (❸): per-core [`structs::ClLists`] —
//!   which lines still need DPOs before a region is Done@L1;
//! - **Dependence List** (❹): per-channel [`structs::DepLists`] — which
//!   regions are uncommitted and what they depend on (persistence domain);
//! - **LH-WPQ**: per-channel [`structs::LhWpq`] — the latest log record
//!   header of every uncommitted region (persistence domain).
//!
//! Regions move through the Fig. 4 state machine: `asap_begin` ①,
//! `asap_end` ② (execution proceeds immediately — *asynchronous commit*),
//! all CLPtr slots cleared ③ (Done@L1 → Done@MC), all Dep slots cleared ④
//! (log freed, entry cleared, completion broadcast).
//!
//! The §5.1 traffic optimizations (LPO dropping, DPO coalescing, DPO
//! dropping) are individually switchable via
//! [`AsapOpts`] — see the Fig. 9a ablation.
//!
//! [`AsapOpts`]: crate::scheme::AsapOpts

pub mod structs;

use std::collections::{BTreeMap, HashMap};

use asap_mem::{BloomFilter, Evicted, MemEvent, OpId, PersistKind, Rid};
use asap_pmem::LineAddr;
use asap_sim::{Cycle, StallReason, SystemConfig, TraceEvent};

use crate::hw::Hw;
use crate::logbuf::{LogBuffer, RecordHeader};
use crate::recovery;
use crate::scheme::common::{wait_mem, InflightHeaders, LogAcceptTracker};
use crate::scheme::{AsapOpts, RecoveryReport, Scheme, SchemeGauges, SchemeKind};

use structs::{AddDep, ClLists, ClSlot, DepLists, DpoState, LhWpq};

/// Hardware cost of the begin/end region instructions.
const MARKER_COST: u64 = 3;

/// A region id as carried by trace events.
fn trid(rid: Rid) -> (u32, u64) {
    (rid.thread(), rid.local())
}

/// Per-thread state (Thread State Registers + log buffer).
#[derive(Clone, Debug)]
struct AsapThread {
    log: LogBuffer,
    latest_rid: Option<Rid>,
}

/// Volatile per-region metadata (log extent) used when freeing the log.
#[derive(Clone, Copy, Debug, Default)]
struct RegionMeta {
    has_log: bool,
    log_end_tail: u64,
}

/// The ASAP persistence scheme.
#[derive(Clone)]
pub struct Asap {
    opts: AsapOpts,
    dpo_distance: u32,
    num_channels: u32,
    /// §7.3 NUMA extension: broadcast only to channels holding the dep.
    numa_broadcast_filter: bool,
    cl: ClLists,
    deps: DepLists,
    lh: LhWpq,
    blooms: Vec<BloomFilter>,
    /// The DRAM buffer of §5.3: owner RIDs of evicted uncommitted lines.
    evicted_owners: HashMap<LineAddr, Rid>,
    threads: BTreeMap<usize, AsapThread>,
    meta: HashMap<Rid, RegionMeta>,
    /// LPO op → the data line whose old value it logs.
    lpo_of: HashMap<OpId, LineAddr>,
    inflight_headers: InflightHeaders,
    /// Header fields publish at LPO acceptance (see `LogAcceptTracker`).
    log_tracker: LogAcceptTracker,
}

impl Asap {
    /// Builds the scheme for the given configuration.
    pub fn new(opts: AsapOpts, cfg: &SystemConfig) -> Self {
        let channels = cfg.mem.num_channels() as usize;
        Asap {
            opts,
            dpo_distance: if opts.dpo_coalescing {
                cfg.asap.dpo_distance
            } else {
                0
            },
            num_channels: cfg.mem.num_channels(),
            numa_broadcast_filter: cfg.asap.numa_broadcast_filter,
            cl: ClLists::new(
                cfg.cores as usize,
                cfg.asap.cl_list_entries as usize,
                cfg.asap.clptr_slots as usize,
            ),
            deps: DepLists::new(
                channels,
                cfg.asap.dep_list_entries as usize,
                cfg.asap.dep_slots as usize,
            ),
            lh: LhWpq::new(channels, cfg.asap.lh_wpq_entries as usize),
            blooms: (0..channels)
                .map(|_| BloomFilter::new(cfg.asap.bloom_bits))
                .collect(),
            evicted_owners: HashMap::new(),
            threads: BTreeMap::new(),
            meta: HashMap::new(),
            lpo_of: HashMap::new(),
            inflight_headers: InflightHeaders::new(),
            log_tracker: LogAcceptTracker::new(),
        }
    }

    fn line_channel(&self, line: LineAddr) -> usize {
        (line.0 % u64::from(self.num_channels)) as usize
    }

    /// §5.3: on (re)access to an ownerless persistent line, consult the
    /// bloom filter and DRAM buffer and restore the saved OwnerRID if its
    /// region is still uncommitted. The DRAM lookup runs concurrently with
    /// the access, so it adds traffic but no latency.
    fn restore_owner(&mut self, hw: &mut Hw, line: LineAddr) {
        let Some(st) = hw.caches.line(line) else {
            return;
        };
        if st.owner.is_some() {
            return;
        }
        if !self.blooms[self.line_channel(line)].may_contain(line) {
            return;
        }
        hw.stats.bump("asap.owner_buffer_lookup");
        match self.evicted_owners.get(&line) {
            Some(&o) if self.deps.contains(o) => {
                hw.caches.line_mut(line).expect("present").owner = Some(o);
                hw.stats.bump("asap.owner_restored");
            }
            Some(_) => {
                self.evicted_owners.remove(&line);
            }
            None => {
                hw.stats.bump("asap.bloom_false_positive");
            }
        }
    }

    /// Initiates the DPO for slot `i` of `rid`'s CL entry if it is pending
    /// and its line's LPO has completed (LockBit clear).
    fn try_initiate_dpo(&mut self, hw: &mut Hw, core: usize, rid: Rid, line: LineAddr, now: Cycle) {
        let Some(entry) = self.cl.entry_mut(core, rid) else {
            return;
        };
        let Some(i) = entry.slot_of(line) else { return };
        if entry.slots[i].dpo != DpoState::Initiated {
            match hw.caches.line(line) {
                Some(st) if st.lock_bit => {} // LPO outstanding: wait
                Some(_) => {
                    if hw
                        .persist_line(line, PersistKind::Dpo, Some(rid), None, now)
                        .is_some()
                    {
                        entry.slots[i].dpo = DpoState::Initiated;
                        hw.trace.emit(
                            now,
                            rid.thread(),
                            TraceEvent::DpoIssued {
                                rid: Some(trid(rid)),
                                line: line.0,
                            },
                        );
                    } else {
                        // Nothing dirty to persist (already written back).
                        entry.slots[i].dpo = DpoState::Initiated;
                    }
                }
                None => {
                    // Line left the hierarchy: its eviction writeback acts
                    // as the DPO (see on_evict).
                    entry.slots[i].dpo = DpoState::Initiated;
                }
            }
        }
    }

    /// Initiates every eligible pending DPO of `rid` (region end, stalls,
    /// context switches).
    fn kick_all_dpos(&mut self, hw: &mut Hw, core: usize, rid: Rid, now: Cycle) {
        let lines: Vec<LineAddr> = match self.cl.entry(core, rid) {
            Some(e) => e
                .slots
                .iter()
                .filter(|s| s.dpo != DpoState::Initiated)
                .map(|s| s.line)
                .collect(),
            None => return,
        };
        for line in lines {
            self.try_initiate_dpo(hw, core, rid, line, now);
        }
    }

    /// A DPO (or eviction writeback standing in for one) for `line` of
    /// `rid` was accepted: clear the CLPtr slot, or re-arm it if the line
    /// was modified again after the snapshot (coalescing continues).
    fn dpo_accepted(&mut self, hw: &mut Hw, rid: Rid, line: LineAddr, at: Cycle) {
        let core = hw.thread_core[rid.thread() as usize];
        let Some(entry) = self.cl.entry_mut(core, rid) else {
            return;
        };
        let Some(i) = entry.slot_of(line) else { return };
        let redirty = hw
            .caches
            .line(line)
            .is_some_and(|st| st.dirty && st.owner == Some(rid));
        if redirty {
            entry.slots[i].dpo = DpoState::Pending { other_writes: 0 };
            if entry.done {
                self.try_initiate_dpo(hw, core, rid, line, at);
            }
            return;
        }
        entry.slots.remove(i);
        let finished = entry.done && entry.slots.is_empty();
        if finished {
            // Done@L1 (Fig. 4 ③): all the region's lines have persisted.
            self.cl.remove(core, rid);
            if let Some(d) = self.deps.get_mut(rid) {
                d.done = true;
            }
            hw.lifecycle.ordered(rid, at);
            self.try_commit(hw, rid, at);
        }
    }

    /// Fig. 4 ④: commit `rid` if it is Done@MC with no outstanding
    /// dependencies, cascading to regions its broadcast unblocks.
    fn try_commit(&mut self, hw: &mut Hw, rid: Rid, at: Cycle) {
        let mut stack = vec![rid];
        while let Some(r) = stack.pop() {
            if !self.deps.get(r).is_some_and(|e| e.committable()) {
                continue;
            }
            // Free the log.
            self.lh.remove(r);
            self.log_tracker.forget_region(r);
            if let Some(meta) = self.meta.remove(&r) {
                if meta.has_log {
                    let th = self
                        .threads
                        .get_mut(&(r.thread() as usize))
                        .expect("thread started");
                    th.log.free_to(meta.log_end_tail);
                }
            }
            if self.opts.lpo_dropping {
                hw.mem.drop_log_writes_of(r);
            }
            // Clear the entry and broadcast completion. With the §7.3
            // NUMA filter, only channels actually holding the dependence
            // receive a message; otherwise every channel does.
            self.deps.remove(r);
            hw.stats.bump("region.committed");
            hw.trace
                .emit(at, r.thread(), TraceEvent::RegionPersisted { rid: trid(r) });
            hw.lifecycle.commit(r, at);
            let (unblocked, channels_holding) = self.deps.clear_dep_counting(r);
            let messages = if self.numa_broadcast_filter {
                u64::from(channels_holding)
            } else {
                u64::from(self.num_channels)
            };
            hw.stats.add("asap.broadcast.messages", messages);
            for u in unblocked {
                stack.push(u);
            }
            if self.deps.all_empty() {
                for b in &mut self.blooms {
                    b.clear();
                }
                self.evicted_owners.clear();
            }
        }
    }

    fn handle_event(&mut self, hw: &mut Hw, ev: &MemEvent) {
        let MemEvent::Accepted { id, op, at, .. } = ev else {
            return;
        };
        match op.kind {
            PersistKind::Lpo => {
                let Some(rid) = op.rid else { return };
                let Some(line) = self.lpo_of.remove(id) else {
                    return;
                };
                // The old value is in the persistence domain: publish its
                // header field; a completed sealed record's header heads
                // to the WPQ now.
                if let Some((addr, bytes)) = self.log_tracker.accepted(*id) {
                    self.inflight_headers.submit(hw, rid, addr, bytes, *at);
                }
                // Unlock the data line.
                if let Some(st) = hw.caches.line_mut(line) {
                    st.lock_bit = false;
                }
                // §5.1 DPO dropping: an earlier region's DPO for this line
                // still in the WPQ carries the same bytes as this LPO.
                if self.opts.dpo_dropping {
                    hw.mem.drop_pending_dpo(line, rid);
                }
                // The unlocked line's DPO may now be due.
                let core = hw.thread_core[rid.thread() as usize];
                let due = self.cl.entry(core, rid).is_some_and(|e| {
                    e.slot_of(line).is_some_and(|i| match e.slots[i].dpo {
                        DpoState::Pending { other_writes } => {
                            e.done || other_writes >= self.dpo_distance
                        }
                        DpoState::Initiated => false,
                    })
                });
                if due {
                    self.try_initiate_dpo(hw, core, rid, line, *at);
                }
            }
            PersistKind::LogHeader => {
                self.inflight_headers.accepted(*id);
            }
            PersistKind::Dpo | PersistKind::WriteBack => {
                if let Some(rid) = op.rid {
                    self.dpo_accepted(hw, rid, op.target, *at);
                }
            }
            _ => {}
        }
    }

    /// Allocates a log record, stalling while the circular buffer is full
    /// until older regions commit and free space (the paper handles
    /// overflow with an exception that allocates more space, §4.4; the
    /// model waits for reclamation instead).
    ///
    /// # Panics
    ///
    /// Panics if the log can never be freed (a single region larger than
    /// the whole buffer).
    fn alloc_record_blocking(
        &mut self,
        hw: &mut Hw,
        thread: usize,
        now: Cycle,
    ) -> (asap_pmem::PmAddr, Cycle) {
        let mut now = now;
        if !self.threads[&thread].log.can_alloc() {
            hw.stats.bump("asap.stall.log_full");
            let t0 = now;
            now = wait_mem!(self, hw, now, self.threads[&thread].log.can_alloc());
            hw.note_stall(thread, StallReason::LogFull, t0, now);
        }
        let th = self.threads.get_mut(&thread).expect("thread started");
        (th.log.alloc_record().expect("space just verified"), now)
    }

    /// Appends a log entry for the first write to `line` by `rid`,
    /// managing the region's LH-WPQ slot and record chain. Returns the
    /// possibly-updated clock (it may stall on a full LH-WPQ, §7.4).
    fn append_log_entry(
        &mut self,
        hw: &mut Hw,
        thread: usize,
        rid: Rid,
        line: LineAddr,
        now: Cycle,
    ) -> Cycle {
        let mut now = now;
        if self.lh.get(rid).is_none() {
            // The region's first LPO needs an LH-WPQ slot.
            if !self.lh.has_room(rid) {
                hw.stats.bump("asap.stall.lh_wpq");
                let t0 = now;
                now = wait_mem!(self, hw, now, self.lh.has_room(rid));
                hw.note_stall(thread, StallReason::LhWpq, t0, now);
            }
            let (header_addr, t2) = self.alloc_record_blocking(hw, thread, now);
            now = t2;
            let tail = self.threads[&thread].log.tail();
            self.lh
                .insert(rid, header_addr, RecordHeader::new(rid, None));
            self.log_tracker.start_record(rid, header_addr, None);
            let meta = self.meta.entry(rid).or_default();
            meta.has_log = true;
            meta.log_end_tail = tail;
        }
        let old = hw.line_value(line);
        let cur_addr = self.lh.get(rid).expect("slot just ensured").header_addr;
        let i = self.log_tracker.reserve_slot(cur_addr);
        let entry_addr = RecordHeader::entry_addr(cur_addr, i);
        let lpo = hw.submit_value(
            PersistKind::Lpo,
            entry_addr.line(),
            old,
            Some(rid),
            Some(line),
            now,
        );
        self.log_tracker.register(lpo, cur_addr, i, line);
        self.lpo_of.insert(lpo, line);
        hw.stats.bump("asap.lpo");
        hw.trace.emit(
            now,
            thread as u32,
            TraceEvent::LpoIssued {
                rid: trid(rid),
                line: line.0,
            },
        );
        if i + 1 == crate::logbuf::MAX_ENTRIES {
            // Record full: it seals and moves to the WPQ once all its
            // LPOs are accepted; the LH-WPQ slot is reused for the
            // region's next record (Fig. 5b).
            if let Some((addr, bytes)) = self.log_tracker.request_seal(cur_addr, false) {
                self.inflight_headers.submit(hw, rid, addr, bytes, now);
            }
            let (new_addr, t2) = self.alloc_record_blocking(hw, thread, now);
            now = t2;
            self.meta.get_mut(&rid).expect("meta exists").log_end_tail =
                self.threads[&thread].log.tail();
            self.log_tracker.start_record(rid, new_addr, Some(cur_addr));
            self.lh.get_mut(rid).expect("present").header_addr = new_addr;
        }
        now
    }

    /// Records `rid depends on owner`, stalling while Dep slots are full.
    fn track_dependence(&mut self, hw: &mut Hw, rid: Rid, owner: Rid, now: Cycle) -> Cycle {
        let mut now = now;
        let thread = rid.thread() as usize;
        loop {
            match self.deps.add_dep(rid, owner) {
                AddDep::Added => {
                    hw.trace.emit(
                        now,
                        rid.thread(),
                        TraceEvent::DepEdge {
                            from: trid(owner),
                            to: trid(rid),
                        },
                    );
                    hw.lifecycle.dep_edge(owner, rid);
                    return now;
                }
                AddDep::TargetGone => return now,
                AddDep::SlotsFull => {
                    hw.stats.bump("asap.stall.dep_slots");
                    let cap = self.deps.slot_cap();
                    let t0 = now;
                    now = wait_mem!(self, hw, now, {
                        self.deps.get(rid).is_some_and(|e| e.deps.len() < cap)
                            || !self.deps.contains(owner)
                    });
                    hw.note_stall(thread, StallReason::DepSlots, t0, now);
                }
            }
        }
    }
}

impl std::fmt::Debug for Asap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Asap")
            .field("opts", &self.opts)
            .field("uncommitted", &self.deps.len())
            .field("lh_entries", &self.lh.len())
            .finish()
    }
}

impl Scheme for Asap {
    fn clone_box(&self) -> Box<dyn Scheme> {
        Box::new(self.clone())
    }

    fn kind(&self) -> SchemeKind {
        if self.opts == AsapOpts::all() {
            SchemeKind::Asap
        } else {
            SchemeKind::AsapWith(self.opts)
        }
    }

    fn gauges(&self) -> SchemeGauges {
        SchemeGauges {
            log_fill_lines: self.threads.values().map(|t| t.log.live_lines()).sum(),
            uncommitted_regions: self.deps.len() as u64,
            dep_queue_depth: self.deps.iter().map(|e| e.deps.len() as u64).sum(),
        }
    }

    fn on_thread_start(&mut self, hw: &mut Hw, thread: usize, now: Cycle) -> Cycle {
        let log = LogBuffer::new(hw.layout.log_base(thread), hw.layout.log_bytes);
        self.threads.insert(
            thread,
            AsapThread {
                log,
                latest_rid: None,
            },
        );
        now
    }

    fn on_begin(&mut self, hw: &mut Hw, thread: usize, rid: Rid, now: Cycle) -> Cycle {
        let core = hw.thread_core[thread];
        let mut now = now + MARKER_COST;
        // Stall while hardware structures are full (earlier regions must
        // drain; their persist completions arrive as memory events).
        if !self.cl.has_free_entry(core) {
            hw.stats.bump("asap.stall.cl_entries");
            let t0 = now;
            now = wait_mem!(self, hw, now, self.cl.has_free_entry(core));
            hw.note_stall(thread, StallReason::ClEntries, t0, now);
        }
        if !self.deps.has_free_entry(rid) {
            hw.stats.bump("asap.stall.dep_entries");
            let t0 = now;
            now = wait_mem!(self, hw, now, self.deps.has_free_entry(rid));
            hw.note_stall(thread, StallReason::DepEntries, t0, now);
        }
        self.cl.insert(core, rid);
        self.deps.insert(rid);
        self.meta.insert(rid, RegionMeta::default());
        self.threads
            .get_mut(&thread)
            .expect("thread started")
            .latest_rid = Some(rid);
        // Control dependence on the thread's previous region (§4.5).
        if let Some(prev) = rid.prev() {
            if self.deps.contains(prev) {
                now = self.track_dependence(hw, rid, prev, now);
            }
        }
        now
    }

    fn pre_write(
        &mut self,
        hw: &mut Hw,
        thread: usize,
        rid: Rid,
        line: LineAddr,
        now: Cycle,
    ) -> Cycle {
        let mut now = now;
        self.restore_owner(hw, line);
        let owner = hw.caches.line(line).expect("line filled").owner;
        if owner == Some(rid) {
            return now; // not a first write; counters handled post-write
        }
        // A pending LPO by the previous owner: its old value must reach
        // the persistence domain before this region's LPO may be
        // initiated, so log durability follows dependence order
        // (otherwise recovery could restore the previous owner's
        // uncommitted value with no way to roll it back — Fig. 2a).
        let locked_by_other = hw
            .caches
            .line(line)
            .is_some_and(|st| st.lock_bit && st.owner != Some(rid));
        if locked_by_other {
            hw.stats.bump("asap.stall.lpo_lock");
            let t0 = now;
            now = wait_mem!(self, hw, now, {
                hw.caches.line(line).is_none_or(|st| !st.lock_bit)
            });
            hw.note_stall(thread, StallReason::LpoLock, t0, now);
        }
        // §4.6.3: accessing another region's line is a data dependence.
        if let Some(o) = owner {
            if self.deps.contains(o) {
                now = self.track_dependence(hw, rid, o, now);
            }
        }
        // §4.6.1 first write: lock, take ownership, log the old value.
        {
            let st = hw.caches.line_mut(line).expect("line filled");
            st.lock_bit = true;
            st.owner = Some(rid);
        }
        now = self.append_log_entry(hw, thread, rid, line, now);
        now
    }

    fn post_write(
        &mut self,
        hw: &mut Hw,
        thread: usize,
        rid: Rid,
        line: LineAddr,
        now: Cycle,
    ) -> Cycle {
        let core = hw.thread_core[thread];
        let mut now = now;
        // §5.7: after a context switch the in-progress region's CL entry
        // was cleared on the old core; recreate it here on the new one.
        if self.cl.entry(core, rid).is_none() {
            if !self.cl.has_free_entry(core) {
                hw.stats.bump("asap.stall.cl_entries");
                let t0 = now;
                now = wait_mem!(self, hw, now, self.cl.has_free_entry(core));
                hw.note_stall(thread, StallReason::ClEntries, t0, now);
            }
            self.cl.insert(core, rid);
        }
        // §4.6.2: on *every* write, a CLPtr slot is added if one does not
        // already exist (a line may be re-dirtied after its DPO completed
        // and its slot cleared). Stall if all slots are occupied.
        let has_slot = self
            .cl
            .entry(core, rid)
            .is_some_and(|e| e.slot_of(line).is_some());
        if !has_slot {
            if !self.cl.has_free_slot(core, rid) {
                hw.stats.bump("asap.stall.clptr_slots");
                let t0 = now;
                // Re-kick on every event: a slot whose LPO ack arrives
                // mid-stall must fire its DPO even if it never reached
                // the coalescing distance.
                now = wait_mem!(self, hw, now, {
                    self.kick_all_dpos(hw, core, rid, now);
                    self.cl.has_free_slot(core, rid)
                });
                hw.note_stall(thread, StallReason::ClptrSlots, t0, now);
            }
            let entry = self.cl.entry_mut(core, rid).expect("entry exists");
            entry.slots.push(ClSlot {
                line,
                dpo: DpoState::Pending { other_writes: 0 },
            });
        }
        let distance = self.dpo_distance;
        // Bump the other slots' distance counters; collect those now due.
        let mut due = Vec::new();
        if let Some(entry) = self.cl.entry_mut(core, rid) {
            for s in &mut entry.slots {
                if let DpoState::Pending { other_writes } = &mut s.dpo {
                    if s.line == line {
                        *other_writes = 0;
                    } else {
                        *other_writes += 1;
                        if *other_writes >= distance {
                            due.push(s.line);
                        }
                    }
                }
            }
            // Without coalescing, the written line's DPO fires right away.
            if distance == 0 {
                due.push(line);
            }
        }
        for l in due {
            self.try_initiate_dpo(hw, core, rid, l, now);
        }
        now
    }

    fn post_read(
        &mut self,
        hw: &mut Hw,
        _thread: usize,
        rid: Rid,
        line: LineAddr,
        now: Cycle,
    ) -> Cycle {
        let mut now = now;
        self.restore_owner(hw, line);
        let owner = hw.caches.line(line).and_then(|st| st.owner);
        if let Some(o) = owner {
            if o != rid && self.deps.contains(o) {
                now = self.track_dependence(hw, rid, o, now);
            }
        }
        now
    }

    fn on_end(&mut self, hw: &mut Hw, thread: usize, rid: Rid, now: Cycle) -> Cycle {
        let now = now + MARKER_COST;
        let core = hw.thread_core[thread];
        if let Some(entry) = self.cl.entry_mut(core, rid) {
            entry.done = true;
        }
        // Drain the region's remaining DPOs in the background.
        self.kick_all_dpos(hw, core, rid, now);
        // If nothing is outstanding the region is Done@L1 immediately. A
        // missing entry means a §5.7 context switch already drained and
        // cleared it (and no writes followed on the new core).
        let empty = self.cl.entry(core, rid).is_none_or(|e| e.slots.is_empty());
        if empty {
            self.cl.remove(core, rid);
            if let Some(d) = self.deps.get_mut(rid) {
                d.done = true;
            }
            hw.lifecycle.ordered(rid, now);
            self.try_commit(hw, rid, now);
        }
        now // asynchronous commit: execution proceeds immediately
    }

    fn on_fence(&mut self, hw: &mut Hw, thread: usize, now: Cycle) -> Cycle {
        // §5.2: block until the thread's last region committed (and hence
        // every region it transitively depends on).
        let Some(rid) = self.threads.get(&thread).and_then(|t| t.latest_rid) else {
            return now;
        };
        hw.stats.bump("asap.fence");
        let end = wait_mem!(self, hw, now, !self.deps.contains(rid));
        hw.note_stall(thread, StallReason::FenceWait, now, end);
        end
    }

    fn on_evict(&mut self, hw: &mut Hw, evicted: &Evicted, now: Cycle) {
        if evicted.line.is_pm_region() {
            if let Some(o) = evicted.state.owner {
                if self.deps.contains(o) {
                    // §5.3: save the OwnerRID across the eviction.
                    self.evicted_owners.insert(evicted.line, o);
                    let ch = self.line_channel(evicted.line);
                    self.blooms[ch].insert(evicted.line);
                    hw.stats.bump("asap.owner_saved");
                    if evicted.state.lock_bit {
                        // Should be prevented by lock-aware victim choice.
                        hw.stats.bump("asap.forced_locked_eviction");
                    }
                    // The writeback doubles as the line's DPO: mark the
                    // slot initiated so acceptance clears it.
                    let core = hw.thread_core[o.thread() as usize];
                    if let Some(entry) = self.cl.entry_mut(core, o) {
                        if let Some(i) = entry.slot_of(evicted.line) {
                            entry.slots[i].dpo = DpoState::Initiated;
                            if !evicted.state.dirty {
                                // Clean line: no writeback will come; the
                                // DPO already completed earlier.
                                entry.slots.remove(i);
                            }
                        }
                    }
                }
            }
        }
        hw.default_evict(evicted, now);
    }

    fn on_mem_event(&mut self, hw: &mut Hw, ev: &MemEvent) {
        self.handle_event(hw, ev);
    }

    fn on_context_switch(&mut self, hw: &mut Hw, thread: usize, now: Cycle) -> Cycle {
        // §5.7: complete the persist operations behind every CLPtr of this
        // thread's regions, then clear the core's entries. The active (or
        // latest) region keeps its Dependence List entry and continues on
        // the new core when the machine remaps thread_core.
        let core = hw.thread_core[thread];
        let rids: Vec<Rid> = self
            .cl
            .entries(core)
            .iter()
            .map(|e| e.rid)
            .filter(|r| r.thread() as usize == thread)
            .collect();
        let mut now = now;
        for rid in rids {
            // Re-kick on every event so slots unlock → initiate → clear
            // regardless of the coalescing distance.
            let t0 = now;
            now = wait_mem!(self, hw, now, {
                self.kick_all_dpos(hw, core, rid, now);
                self.cl.entry(core, rid).is_none_or(|e| e.slots.is_empty())
            });
            hw.note_stall(thread, StallReason::Drain, t0, now);
            // A not-yet-done region's entry is cleared and recreated on
            // the next core; done regions proceed through Done@L1.
            if let Some(e) = self.cl.entry(core, rid) {
                let done = e.done;
                self.cl.remove(core, rid);
                if done {
                    if let Some(d) = self.deps.get_mut(rid) {
                        d.done = true;
                    }
                    hw.lifecycle.ordered(rid, now);
                    self.try_commit(hw, rid, now);
                }
            }
        }
        now
    }

    fn drain(&mut self, hw: &mut Hw, now: Cycle) -> Cycle {
        let end = wait_mem!(self, hw, now, self.deps.is_empty() && hw.mem.is_idle());
        hw.note_stall(0, StallReason::Drain, now, end);
        end
    }

    fn on_crash(&mut self, hw: &mut Hw) {
        // Flush the persistence domain: in-flight sealed headers, every
        // live record header (with only *accepted* entry fields
        // published), and the Dependence List.
        self.inflight_headers.flush(&mut hw.image);
        self.log_tracker.flush(&mut hw.image);
        let deps_blob = self.deps.encode();
        let lh_blob = self.lh.encode_table();
        let base = hw.layout.dump_base();
        recovery::write_dump(&mut hw.image, base, &[&deps_blob, &lh_blob]);
    }

    fn recover(&mut self, hw: &mut Hw) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let base = hw.layout.dump_base();
        let Some(sections) = recovery::read_dump(&hw.image, base) else {
            return report;
        };
        let entries = DepLists::decode(&sections[0]).expect("ASAP dump: dependence list");
        let lh_table = LhWpq::decode_table(&sections[1]).expect("ASAP dump: LH table");
        // Diagnostic trace of what recovery is about to do; set the
        // ASAP_DEBUG_RECOVERY environment variable to enable.
        if std::env::var_os("ASAP_DEBUG_RECOVERY").is_some() {
            eprintln!("=== recovery: {} uncommitted", entries.len());
            for e in &entries {
                eprintln!("  {} done={} deps={:?}", e.rid, e.done, e.deps);
            }
            eprintln!("  undo order: {:?}", recovery::undo_order(&entries));
        }
        // §5.5: derive the happens-before order from the dependence DAG
        // and undo dependents before the regions they depend on.
        for rid in recovery::undo_order(&entries) {
            if let Some(&last_header) = lh_table.get(&rid) {
                let records = recovery::collect_records(&hw.image, last_header, rid);
                report.restored_lines += recovery::undo_region(&mut hw.image, &records);
            }
            report.uncommitted.push(rid);
        }
        recovery::clear_dump(&mut hw.image, base);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::small()
    }

    #[test]
    fn kind_reflects_opts() {
        assert_eq!(Asap::new(AsapOpts::all(), &cfg()).kind(), SchemeKind::Asap);
        assert_eq!(
            Asap::new(AsapOpts::none(), &cfg()).kind(),
            SchemeKind::AsapWith(AsapOpts::none())
        );
    }

    #[test]
    fn coalescing_off_means_distance_zero() {
        assert_eq!(Asap::new(AsapOpts::none(), &cfg()).dpo_distance, 0);
        assert_eq!(
            Asap::new(AsapOpts::all(), &cfg()).dpo_distance,
            cfg().asap.dpo_distance
        );
    }

    #[test]
    fn debug_shows_counts() {
        let a = Asap::new(AsapOpts::all(), &cfg());
        assert!(format!("{a:?}").contains("uncommitted"));
    }

    /// Drives one region through the whole Fig. 4 state machine by
    /// calling the scheme hooks directly and inspecting internal state.
    #[test]
    fn fig4_region_state_machine() {
        use asap_mem::cache::AccessKind;

        let cfgv = cfg();
        let mut hw = Hw::new(cfgv, 1, 1 << 20, 1 << 20);
        let mut s = Asap::new(AsapOpts::all(), &cfgv);
        let mut now = s.on_thread_start(&mut hw, 0, Cycle(0));

        // ① asap_begin: CL List and Dependence List entries InProgress.
        let rid = Rid::new(0, 1);
        now = s.on_begin(&mut hw, 0, rid, now);
        assert!(s.deps.contains(rid), "Dependence List entry created");
        let e = s.cl.entry(0, rid).expect("CL List entry created");
        assert!(!e.done && e.slots.is_empty());

        // First write to a persistent line: LockBit, OwnerRID, LPO, CLPtr.
        let line = LineAddr(hw.layout.heap_base().0 / 64);
        hw.image.mark_persistent(line.base(), 64);
        hw.cache_access(0, line, AccessKind::Store);
        now = s.pre_write(&mut hw, 0, rid, line, now);
        {
            let st = hw.caches.line_mut(line).unwrap();
            st.data[0] = 0xEE;
            st.dirty = true;
            assert!(st.lock_bit, "LockBit set until the LPO completes");
            assert_eq!(st.owner, Some(rid), "OwnerRID taken");
        }
        now = s.post_write(&mut hw, 0, rid, line, now);
        assert_eq!(s.cl.entry(0, rid).unwrap().slots.len(), 1, "CLPtr slot");
        assert!(s.lh.get(rid).is_some(), "LH-WPQ slot held");

        // ② asap_end: state Done, execution would continue immediately.
        now = s.on_end(&mut hw, 0, rid, now);
        assert!(s.deps.contains(rid), "not yet committed at end");

        // Drain background events: LPO accepted → LockBit clears → DPO →
        // ③ Done@L1/Done@MC → ④ commit (entry cleared, log freed).
        while let Some(t) = hw.mem.next_event_time() {
            hw.advance_mem(t);
            while let Some(ev) = hw.mem.pop_event() {
                s.on_mem_event(&mut hw, &ev);
            }
        }
        assert!(s.cl.entry(0, rid).is_none(), "Done@L1: CL entry cleared");
        assert!(
            !s.deps.contains(rid),
            "④ committed: Dependence List cleared"
        );
        assert!(s.lh.get(rid).is_none(), "LH-WPQ slot released");
        assert!(s.deps.all_empty());
        assert!(
            !hw.caches.line(line).unwrap().lock_bit,
            "LockBit cleared at LPO acceptance"
        );
        let _ = now;
    }

    /// The control dependence of §4.5: a region records its predecessor
    /// while that predecessor is still uncommitted.
    #[test]
    fn control_dependence_recorded_when_predecessor_active() {
        let cfgv = cfg();
        let mut hw = Hw::new(cfgv, 1, 1 << 20, 1 << 20);
        let mut s = Asap::new(AsapOpts::all(), &cfgv);
        let mut now = s.on_thread_start(&mut hw, 0, Cycle(0));
        let r1 = Rid::new(0, 1);
        let r2 = Rid::new(0, 2);
        now = s.on_begin(&mut hw, 0, r1, now);
        // r1 has pending work (a logged write) so it stays uncommitted.
        let line = LineAddr(hw.layout.heap_base().0 / 64);
        hw.image.mark_persistent(line.base(), 64);
        hw.cache_access(0, line, asap_mem::cache::AccessKind::Store);
        now = s.pre_write(&mut hw, 0, r1, line, now);
        now = s.post_write(&mut hw, 0, r1, line, now);
        now = s.on_end(&mut hw, 0, r1, now);
        // Begin r2 while r1 is still in the Dependence List.
        assert!(s.deps.contains(r1));
        let _ = s.on_begin(&mut hw, 0, r2, now);
        assert_eq!(
            s.deps.get(r2).unwrap().deps,
            vec![r1],
            "control dependence on the previous region"
        );
    }
}
