//! The HWUndo baseline: hardware undo logging with synchronous commit
//! (§2.3, §6.3 — modeled on Proteus).
//!
//! LPOs are initiated automatically on the first write to each line and
//! overlap with execution inside the region. DPOs are initiated at region
//! end, each only after its line's LPO completed (the old value must be in
//! the persistence domain before the new value overwrites it). The region
//! *commits synchronously*: execution waits at `end` until every LPO,
//! header and DPO has been accepted by the WPQ. LPO dropping is applied at
//! commit (the paper notes this optimization is also applied in \[61\]).
//!
//! Like ASAP, record-header address fields are published at LPO
//! *acceptance* (the on-chip logging metadata lives in persistence-domain
//! resources of LH-WPQ-comparable size, §6.3), so a crash mid-region never
//! leaves a header pointing at a log entry that never became durable.

use std::collections::{BTreeMap, BTreeSet};

use asap_mem::{MemEvent, OpId, PersistKind, Rid};
use asap_pmem::{LineAddr, PmAddr};
use asap_sim::{Cycle, StallReason};

use crate::hw::Hw;
use crate::logbuf::{LogBuffer, RecordHeader, MAX_ENTRIES};
use crate::recovery;
use crate::scheme::common::{wait_mem, InflightHeaders, LogAcceptTracker};
use crate::scheme::{RecoveryReport, Scheme, SchemeGauges, SchemeKind};

/// Hardware cost of the begin/end region instructions.
const MARKER_COST: u64 = 3;

#[derive(Clone, Debug)]
struct HwUndoThread {
    log: LogBuffer,
    active: Option<HwUndoRegion>,
}

#[derive(Clone, Debug)]
struct HwUndoRegion {
    rid: Rid,
    /// Current (partial) record, if any entries were logged.
    cur_record: Option<PmAddr>,
    /// Log tail after the last allocation (for freeing at commit).
    log_end_tail: u64,
    /// Lines written; true once the line's LPO was accepted.
    lines: BTreeMap<LineAddr, bool>,
    /// LPO + header ops not yet accepted.
    pending_log: BTreeSet<OpId>,
    /// DPO ops not yet accepted (populated during the end-of-region wait).
    pending_dpo: BTreeSet<OpId>,
    /// Region has reached `end` and is draining.
    ending: bool,
}

/// The synchronous-commit hardware undo-logging scheme.
#[derive(Clone, Debug)]
pub struct HwUndo {
    threads: BTreeMap<usize, HwUndoThread>,
    inflight_headers: InflightHeaders,
    log_tracker: LogAcceptTracker,
    /// op → (thread, line) for LPO completion bookkeeping.
    lpo_of: BTreeMap<OpId, (usize, LineAddr)>,
}

impl HwUndo {
    /// Creates the scheme.
    pub fn new() -> Self {
        HwUndo {
            threads: BTreeMap::new(),
            inflight_headers: InflightHeaders::new(),
            log_tracker: LogAcceptTracker::new(),
            lpo_of: BTreeMap::new(),
        }
    }

    fn handle_event(&mut self, hw: &mut Hw, ev: &MemEvent) {
        let MemEvent::Accepted { id, op, at, .. } = ev else {
            return;
        };
        match op.kind {
            PersistKind::Lpo | PersistKind::LogHeader => {
                self.inflight_headers.accepted(*id);
                let Some(rid) = op.rid else { return };
                let t = rid.thread() as usize;
                // A completed sealed record's header heads to the WPQ.
                if let Some((addr, bytes)) = self.log_tracker.accepted(*id) {
                    let hid = self.inflight_headers.submit(hw, rid, addr, bytes, *at);
                    if let Some(region) = self.threads.get_mut(&t).and_then(|th| th.active.as_mut())
                    {
                        region.pending_log.insert(hid);
                    }
                }
                if let Some(region) = self.threads.get_mut(&t).and_then(|th| th.active.as_mut()) {
                    region.pending_log.remove(id);
                }
                if let Some((t, line)) = self.lpo_of.remove(id) {
                    // The line's old value is in the persistence domain:
                    // clear its lock bit and, if the region is draining,
                    // fire its DPO.
                    if let Some(st) = hw.caches.line_mut(line) {
                        st.lock_bit = false;
                    }
                    if let Some(region) = self.threads.get_mut(&t).and_then(|th| th.active.as_mut())
                    {
                        region.lines.insert(line, true);
                        if region.ending {
                            let rid = region.rid;
                            if let Some(dpo) =
                                hw.persist_line(line, PersistKind::Dpo, Some(rid), None, *at)
                            {
                                self.threads
                                    .get_mut(&t)
                                    .unwrap()
                                    .active
                                    .as_mut()
                                    .unwrap()
                                    .pending_dpo
                                    .insert(dpo);
                            }
                        }
                    }
                }
            }
            PersistKind::Dpo => {
                if let Some(rid) = op.rid {
                    let t = rid.thread() as usize;
                    if let Some(region) = self.threads.get_mut(&t).and_then(|th| th.active.as_mut())
                    {
                        region.pending_dpo.remove(id);
                    }
                }
            }
            _ => {}
        }
    }
}

impl Default for HwUndo {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheme for HwUndo {
    fn clone_box(&self) -> Box<dyn Scheme> {
        Box::new(self.clone())
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::HwUndo
    }

    fn gauges(&self) -> SchemeGauges {
        SchemeGauges {
            log_fill_lines: self.threads.values().map(|t| t.log.live_lines()).sum(),
            uncommitted_regions: self.threads.values().filter(|t| t.active.is_some()).count()
                as u64,
            dep_queue_depth: 0,
        }
    }

    fn on_thread_start(&mut self, hw: &mut Hw, thread: usize, now: Cycle) -> Cycle {
        let log = LogBuffer::new(hw.layout.log_base(thread), hw.layout.log_bytes);
        self.threads
            .insert(thread, HwUndoThread { log, active: None });
        now
    }

    fn on_begin(&mut self, _hw: &mut Hw, thread: usize, rid: Rid, now: Cycle) -> Cycle {
        let th = self.threads.get_mut(&thread).expect("thread started");
        assert!(th.active.is_none(), "synchronous regions do not overlap");
        th.active = Some(HwUndoRegion {
            rid,
            cur_record: None,
            log_end_tail: th.log.tail(),
            lines: BTreeMap::new(),
            pending_log: BTreeSet::new(),
            pending_dpo: BTreeSet::new(),
            ending: false,
        });
        now + MARKER_COST
    }

    fn pre_write(
        &mut self,
        hw: &mut Hw,
        thread: usize,
        rid: Rid,
        line: LineAddr,
        now: Cycle,
    ) -> Cycle {
        let th = self.threads.get_mut(&thread).expect("thread started");
        let Some(region) = th.active.as_mut() else {
            return now;
        };
        if region.lines.contains_key(&line) {
            return now; // already logged: nothing on the critical path
        }
        region.lines.insert(line, false);
        // Lazily open the region's current record.
        let cur = match region.cur_record {
            Some(c) => c,
            None => {
                let c = th.log.alloc_record().expect("hardware log overflow");
                let region = th.active.as_mut().unwrap();
                region.cur_record = Some(c);
                region.log_end_tail = th.log.tail();
                self.log_tracker.start_record(rid, c, None);
                c
            }
        };
        let i = self.log_tracker.reserve_slot(cur);
        let entry_addr = RecordHeader::entry_addr(cur, i);
        let old = hw.line_value(line);
        // Lock the line until its old value is safely in the WPQ.
        if let Some(st) = hw.caches.line_mut(line) {
            st.lock_bit = true;
            st.owner = Some(rid);
        }
        let lpo = hw.submit_value(
            PersistKind::Lpo,
            entry_addr.line(),
            old,
            Some(rid),
            Some(line),
            now,
        );
        self.log_tracker.register(lpo, cur, i, line);
        self.lpo_of.insert(lpo, (thread, line));
        let th = self.threads.get_mut(&thread).unwrap();
        let region = th.active.as_mut().unwrap();
        region.pending_log.insert(lpo);
        if i + 1 == MAX_ENTRIES {
            // Record full: seal (header written once all LPOs accepted)
            // and open the next record.
            if let Some((addr, bytes)) = self.log_tracker.request_seal(cur, false) {
                let hid = self.inflight_headers.submit(hw, rid, addr, bytes, now);
                self.threads
                    .get_mut(&thread)
                    .unwrap()
                    .active
                    .as_mut()
                    .unwrap()
                    .pending_log
                    .insert(hid);
            }
            let th = self.threads.get_mut(&thread).unwrap();
            let new_addr = th.log.alloc_record().expect("hardware log overflow");
            let region = th.active.as_mut().unwrap();
            region.log_end_tail = th.log.tail();
            self.log_tracker.start_record(rid, new_addr, Some(cur));
            th.active.as_mut().unwrap().cur_record = Some(new_addr);
        }
        now // LPO runs in the background
    }

    fn on_end(&mut self, hw: &mut Hw, thread: usize, rid: Rid, now: Cycle) -> Cycle {
        let mut now = now + MARKER_COST;
        {
            let th = self.threads.get_mut(&thread).expect("thread started");
            let region = th.active.as_mut().expect("region active");
            region.ending = true;
            // Seal the final record so the log chain is complete.
            if let Some(cur) = region.cur_record {
                if let Some((addr, bytes)) = self.log_tracker.request_seal(cur, false) {
                    let hid = self.inflight_headers.submit(hw, rid, addr, bytes, now);
                    self.threads
                        .get_mut(&thread)
                        .unwrap()
                        .active
                        .as_mut()
                        .unwrap()
                        .pending_log
                        .insert(hid);
                }
            }
            // Fire DPOs for lines whose LPOs already completed; the rest
            // fire from the acceptance handler.
            let ready: Vec<LineAddr> = self.threads[&thread]
                .active
                .as_ref()
                .unwrap()
                .lines
                .iter()
                .filter(|(_, done)| **done)
                .map(|(l, _)| *l)
                .collect();
            for line in ready {
                if let Some(dpo) = hw.persist_line(line, PersistKind::Dpo, Some(rid), None, now) {
                    self.threads
                        .get_mut(&thread)
                        .unwrap()
                        .active
                        .as_mut()
                        .unwrap()
                        .pending_dpo
                        .insert(dpo);
                }
            }
        }
        // Synchronous commit: wait for every LPO, header and DPO.
        let t0 = now;
        now = wait_mem!(self, hw, now, {
            let r = self.threads[&thread].active.as_ref().unwrap();
            r.pending_log.is_empty() && r.pending_dpo.is_empty()
        });
        hw.note_stall(thread, StallReason::CommitWait, t0, now);
        // Commit: drop undrained log writes, reclaim the log space.
        let th = self.threads.get_mut(&thread).unwrap();
        let region = th.active.take().unwrap();
        th.log.free_to(region.log_end_tail);
        self.log_tracker.forget_region(rid);
        hw.mem.drop_log_writes_of(rid);
        hw.stats.bump("region.committed");
        now
    }

    fn on_fence(&mut self, _hw: &mut Hw, _thread: usize, now: Cycle) -> Cycle {
        now // synchronous commit: regions are already durable at end
    }

    fn on_mem_event(&mut self, hw: &mut Hw, ev: &MemEvent) {
        self.handle_event(hw, ev);
    }

    fn drain(&mut self, hw: &mut Hw, now: Cycle) -> Cycle {
        let end = wait_mem!(self, hw, now, hw.mem.is_idle());
        hw.note_stall(0, StallReason::Drain, now, end);
        end
    }

    fn on_crash(&mut self, hw: &mut Hw) {
        // The on-chip region metadata sits in persistence-domain resources
        // (§6.3): dump each thread's active region so recovery can undo it.
        let mut blob = Vec::new();
        blob.extend_from_slice(b"HWUN");
        let active: Vec<(u16, u64, u64)> = self
            .threads
            .values()
            .filter_map(|th| th.active.as_ref())
            .filter_map(|r| {
                r.cur_record
                    .map(|c| (r.rid.thread() as u16, r.rid.local(), c.0))
            })
            .collect();
        blob.extend_from_slice(&(active.len() as u32).to_le_bytes());
        for (t, l, a) in active {
            blob.extend_from_slice(&t.to_le_bytes());
            blob.extend_from_slice(&l.to_le_bytes());
            blob.extend_from_slice(&a.to_le_bytes());
        }
        self.inflight_headers.flush(&mut hw.image);
        self.log_tracker.flush(&mut hw.image);
        let base = hw.layout.dump_base();
        recovery::write_dump(&mut hw.image, base, &[&blob]);
    }

    fn recover(&mut self, hw: &mut Hw) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let base = hw.layout.dump_base();
        let Some(sections) = recovery::read_dump(&hw.image, base) else {
            return report;
        };
        let blob = &sections[0];
        assert_eq!(&blob[0..4], b"HWUN", "wrong dump for HwUndo recovery");
        let n = u32::from_le_bytes(blob[4..8].try_into().unwrap()) as usize;
        let mut p = 8;
        for _ in 0..n {
            let t = u16::from_le_bytes(blob[p..p + 2].try_into().unwrap());
            let l = u64::from_le_bytes(blob[p + 2..p + 10].try_into().unwrap());
            let a = u64::from_le_bytes(blob[p + 10..p + 18].try_into().unwrap());
            p += 18;
            let rid = Rid::new(u32::from(t), l);
            let records = recovery::collect_records(&hw.image, PmAddr(a), rid);
            report.restored_lines += recovery::undo_region(&mut hw.image, &records);
            report.uncommitted.push(rid);
        }
        recovery::clear_dump(&mut hw.image, base);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_is_hw_undo() {
        assert_eq!(HwUndo::new().kind(), SchemeKind::HwUndo);
    }

    #[test]
    fn fence_is_free_under_sync_commit() {
        let mut hw = Hw::new(asap_sim::SystemConfig::small(), 1, 1 << 20, 1 << 20);
        let mut s = HwUndo::new();
        assert_eq!(s.on_fence(&mut hw, 0, Cycle(9)), Cycle(9));
    }
}
