//! The NP baseline: no atomic durability is enforced (§6.3).
//!
//! Data is read from and written to persistent memory, dirty lines are
//! written back on eviction, but no LPOs or DPOs are ever performed. NP is
//! the upper bound on performance: every other scheme's throughput is
//! normalized against it in Figs. 8 and 10.

use asap_mem::{MemEvent, Rid};
use asap_sim::{Cycle, StallReason};

use crate::hw::Hw;
use crate::scheme::common::wait_mem;
use crate::scheme::{RecoveryReport, Scheme, SchemeKind};

/// Cost of the (empty) begin/end markers, cycles.
const MARKER_COST: u64 = 2;

/// The no-persistence scheme.
#[derive(Clone, Debug, Default)]
pub struct NoPersist {
    _private: (),
}

impl NoPersist {
    /// Creates the scheme.
    pub fn new() -> Self {
        NoPersist::default()
    }

    fn handle_event(&mut self, _hw: &mut Hw, _ev: &MemEvent) {}
}

impl Scheme for NoPersist {
    fn clone_box(&self) -> Box<dyn Scheme> {
        Box::new(self.clone())
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::NoPersist
    }

    fn on_thread_start(&mut self, _hw: &mut Hw, _thread: usize, now: Cycle) -> Cycle {
        now
    }

    fn on_begin(&mut self, _hw: &mut Hw, _thread: usize, _rid: Rid, now: Cycle) -> Cycle {
        now + MARKER_COST
    }

    fn on_end(&mut self, _hw: &mut Hw, _thread: usize, _rid: Rid, now: Cycle) -> Cycle {
        now + MARKER_COST
    }

    fn on_fence(&mut self, _hw: &mut Hw, _thread: usize, now: Cycle) -> Cycle {
        now
    }

    fn on_mem_event(&mut self, hw: &mut Hw, ev: &MemEvent) {
        self.handle_event(hw, ev);
    }

    fn drain(&mut self, hw: &mut Hw, now: Cycle) -> Cycle {
        let end = wait_mem!(self, hw, now, hw.mem.is_idle());
        hw.note_stall(0, StallReason::Drain, now, end);
        end
    }

    fn on_crash(&mut self, _hw: &mut Hw) {}

    fn recover(&mut self, _hw: &mut Hw) -> RecoveryReport {
        RecoveryReport::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_sim::SystemConfig;

    #[test]
    fn begin_end_cost_is_tiny() {
        let mut hw = Hw::new(SystemConfig::small(), 1, 1 << 20, 1 << 20);
        let mut s = NoPersist::new();
        let rid = Rid::new(0, 1);
        let t0 = s.on_begin(&mut hw, 0, rid, Cycle(0));
        let t1 = s.on_end(&mut hw, 0, rid, t0);
        assert_eq!(t1, Cycle(2 * MARKER_COST));
    }

    #[test]
    fn fence_is_free() {
        let mut hw = Hw::new(SystemConfig::small(), 1, 1 << 20, 1 << 20);
        let mut s = NoPersist::new();
        assert_eq!(s.on_fence(&mut hw, 0, Cycle(7)), Cycle(7));
    }

    #[test]
    fn drain_waits_for_writebacks() {
        use asap_mem::{PersistKind, PersistOp};
        use asap_pmem::LineAddr;
        let mut hw = Hw::new(SystemConfig::small(), 1, 1 << 20, 1 << 20);
        let mut s = NoPersist::new();
        let line = LineAddr(hw.layout.heap_base().0 / 64);
        hw.mem.submit(
            PersistOp::new(PersistKind::WriteBack, line, [4u8; 64], None),
            Cycle(0),
        );
        let t = s.drain(&mut hw, Cycle(0));
        assert!(t > Cycle(0));
        assert!(hw.mem.is_idle());
        assert_eq!(hw.image.read_line(line)[0], 4);
    }

    #[test]
    fn recover_reports_nothing() {
        let mut hw = Hw::new(SystemConfig::small(), 1, 1 << 20, 1 << 20);
        let mut s = NoPersist::new();
        s.on_crash(&mut hw);
        assert_eq!(s.recover(&mut hw), RecoveryReport::default());
    }
}
