//! Machinery shared by the logging schemes: active-region log writers,
//! in-flight sealed-header tracking, and the event-wait loop.

use std::collections::HashMap;

use asap_mem::{OpId, PersistKind, Rid};
use asap_pmem::{LineAddr, MemoryImage, PmAddr};
use asap_sim::Cycle;

use crate::hw::Hw;
use crate::logbuf::{LogBuffer, LogFull, RecordHeader};

/// Blocks until `$cond` holds, advancing the memory system event by event
/// and feeding each event through `$self.handle_event`. Returns the updated
/// clock.
///
/// # Panics
///
/// Panics if the condition cannot become true because no memory events are
/// pending (a scheme bookkeeping bug).
macro_rules! wait_mem {
    ($self:ident, $hw:expr, $now:expr, $cond:expr) => {{
        let mut now: asap_sim::Cycle = $now;
        loop {
            while let Some(ev) = $hw.mem.pop_event() {
                $hw.observe_mem_event(&ev);
                $self.handle_event($hw, &ev);
            }
            if $cond {
                break;
            }
            match $hw.mem.next_event_time() {
                Some(t) => {
                    $hw.advance_mem(t);
                    now = now.max(t + $hw.hop() as u64);
                    // Drain loops can run for millions of cycles without
                    // returning to the machine's pump, so the telemetry
                    // sampler must also tick here.
                    if $hw.telemetry_due(now) {
                        let gauges = $crate::scheme::Scheme::gauges($self);
                        $hw.telemetry_record(now, gauges);
                    }
                }
                None => {
                    panic!("scheme deadlock: waiting on condition with no pending memory events")
                }
            }
        }
        now
    }};
}
pub(crate) use wait_mem;

/// The per-region log writer used by the hardware baselines: tracks the
/// current (partial) record and the region's log extent.
#[derive(Clone, Debug)]
pub struct ActiveLog {
    /// The region being logged.
    pub rid: Rid,
    /// Current record header address.
    pub header_addr: PmAddr,
    /// Current (partial) header contents.
    pub header: RecordHeader,
    /// Log tail counter after the region's last allocation (for freeing).
    pub log_end_tail: u64,
    /// Number of data entries logged so far.
    pub entries: u64,
}

impl ActiveLog {
    /// Starts a region's log: allocates its first record.
    ///
    /// # Errors
    ///
    /// Returns [`LogFull`] if the thread's log buffer is exhausted.
    pub fn start(log: &mut LogBuffer, rid: Rid) -> Result<Self, LogFull> {
        let header_addr = log.alloc_record()?;
        Ok(ActiveLog {
            rid,
            header_addr,
            header: RecordHeader::new(rid, None),
            log_end_tail: log.tail(),
            entries: 0,
        })
    }

    /// Allocates the next log entry for `data_line`.
    ///
    /// Returns the entry's address, plus — when the current record just
    /// filled — the sealed header `(addr, bytes)` that must be written
    /// through the WPQ while a fresh record takes its place.
    ///
    /// # Errors
    ///
    /// Returns [`LogFull`] if a new record is needed and the buffer is
    /// exhausted.
    #[allow(clippy::type_complexity)]
    pub fn add_entry(
        &mut self,
        log: &mut LogBuffer,
        data_line: LineAddr,
    ) -> Result<(PmAddr, Option<(PmAddr, [u8; 64])>), LogFull> {
        let i = self.header.push_entry(data_line);
        let entry_addr = RecordHeader::entry_addr(self.header_addr, i);
        self.entries += 1;
        let sealed = if self.header.is_full() {
            self.header.sealed = true;
            let bytes = self.header.encode();
            let old_addr = self.header_addr;
            let new_addr = log.alloc_record()?;
            self.header = RecordHeader::new(self.rid, Some(old_addr));
            self.header_addr = new_addr;
            self.log_end_tail = log.tail();
            Some((old_addr, bytes))
        } else {
            None
        };
        Ok((entry_addr, sealed))
    }

    /// Seals the final (possibly partial) record, marking it `committed`
    /// when requested (the redo commit marker). Returns `(addr, bytes)` to
    /// write through the WPQ.
    #[allow(dead_code)] // used by tests; kept for SW-style writers
    pub fn seal_final(&mut self, committed: bool) -> (PmAddr, [u8; 64]) {
        self.header.sealed = true;
        self.header.committed = committed;
        (self.header_addr, self.header.encode())
    }
}

/// Acceptance-aware log record state for the hardware schemes.
///
/// A record header's entry-address fields become durable knowledge only
/// when the corresponding LPO is *accepted* by the WPQ — the hardware
/// fills the LH-WPQ field at the memory controller, simultaneously with
/// acceptance. Tracking this per entry closes a crash window: a header
/// flushed at power failure must not reference a log entry whose value
/// never reached the persistence domain (recovery would restore garbage).
///
/// The tracker owns every live record header: the region's current
/// (partial) record and sealed records awaiting full acceptance. Once a
/// sealed record's entries are all accepted, [`accepted`](Self::accepted)
/// hands back the encoded header for submission through the WPQ.
#[derive(Clone, Debug, Default)]
pub struct LogAcceptTracker {
    records: HashMap<PmAddr, TrackedRecord>,
    by_op: HashMap<OpId, (PmAddr, usize, LineAddr)>,
}

/// One live record's header plus acceptance progress.
#[derive(Clone, Debug)]
struct TrackedRecord {
    header: RecordHeader,
    accepted: usize,
    /// Seal requested with this committed flag; the header is released
    /// for its WPQ write once all reserved entries are accepted.
    want_seal: Option<bool>,
}

impl LogAcceptTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a freshly allocated record at `addr` for `rid`, chained
    /// to `prev`.
    pub fn start_record(&mut self, rid: Rid, addr: PmAddr, prev: Option<PmAddr>) {
        let old = self.records.insert(
            addr,
            TrackedRecord {
                header: RecordHeader::new(rid, prev),
                accepted: 0,
                want_seal: None,
            },
        );
        debug_assert!(old.is_none(), "record address reused while live");
    }

    /// Reserves the next entry slot of the record at `addr`. Returns the
    /// entry index (the log line is `RecordHeader::entry_addr(addr, i)`).
    ///
    /// # Panics
    ///
    /// Panics if the record is unknown or full.
    pub fn reserve_slot(&mut self, addr: PmAddr) -> usize {
        let r = self.records.get_mut(&addr).expect("record started");
        r.header.reserve_entry()
    }

    /// Registers the in-flight LPO `op` that will publish entry `i` of
    /// the record at `addr` as holding `data_line`'s logged value.
    pub fn register(&mut self, op: OpId, addr: PmAddr, i: usize, data_line: LineAddr) {
        self.by_op.insert(op, (addr, i, data_line));
    }

    /// Marks `op` accepted, publishing its address field. When this
    /// completes a sealed record, returns `(header_addr, bytes)` ready to
    /// write through the WPQ.
    pub fn accepted(&mut self, op: OpId) -> Option<(PmAddr, [u8; 64])> {
        let (addr, i, data_line) = self.by_op.remove(&op)?;
        let r = self.records.get_mut(&addr)?;
        r.header.set_entry(i, data_line);
        r.accepted += 1;
        self.release_if_complete(addr)
    }

    /// Requests sealing of the record at `addr` (with the `committed`
    /// marker flag for redo). Returns the encoded header immediately if
    /// all its entries are already accepted; otherwise it is returned by
    /// the final [`accepted`](Self::accepted) call.
    pub fn request_seal(&mut self, addr: PmAddr, committed: bool) -> Option<(PmAddr, [u8; 64])> {
        let r = self.records.get_mut(&addr)?;
        r.want_seal = Some(committed);
        self.release_if_complete(addr)
    }

    fn release_if_complete(&mut self, addr: PmAddr) -> Option<(PmAddr, [u8; 64])> {
        let r = self.records.get(&addr)?;
        let committed = r.want_seal?;
        if r.accepted < r.header.count as usize {
            return None;
        }
        let mut r = self.records.remove(&addr).expect("present");
        r.header.sealed = true;
        r.header.committed = committed;
        Some((addr, r.header.encode()))
    }

    /// Crash: writes every live header (current acceptance view — fields
    /// of unaccepted LPOs stay invalid and recovery skips them).
    pub fn flush(&self, image: &mut MemoryImage) {
        for (addr, r) in &self.records {
            image.write(*addr, &r.header.encode());
        }
    }

    /// Drops all state belonging to `rid` (region committed).
    pub fn forget_region(&mut self, rid: Rid) {
        self.records.retain(|_, r| r.header.rid != rid);
        let live: std::collections::HashSet<PmAddr> = self.records.keys().copied().collect();
        self.by_op.retain(|_, (addr, _, _)| live.contains(addr));
    }

    /// Number of live (unreleased) records.
    #[allow(dead_code)] // diagnostics
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are live.
    #[allow(dead_code)] // diagnostics
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The current entry count of the record at `addr` (for seal checks).
    #[allow(dead_code)] // diagnostics
    pub fn reserved_count(&self, addr: PmAddr) -> Option<usize> {
        self.records.get(&addr).map(|r| r.header.count as usize)
    }
}

/// Sealed record headers submitted to the WPQ but not yet accepted.
///
/// Hardware keeps a sealed header inside the persistence domain until the
/// WPQ takes it; if power fails in that window the header must still be
/// flushed, or the log chain through it would break. This tracker holds
/// those headers and writes the stragglers out at crash time.
#[derive(Clone, Debug, Default)]
pub struct InflightHeaders {
    pending: HashMap<OpId, (PmAddr, [u8; 64])>,
}

impl InflightHeaders {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits a sealed header through the WPQ and tracks it until
    /// acceptance.
    pub fn submit(
        &mut self,
        hw: &mut Hw,
        rid: Rid,
        addr: PmAddr,
        bytes: [u8; 64],
        now: Cycle,
    ) -> OpId {
        let id = hw.submit_value(
            PersistKind::LogHeader,
            addr.line(),
            bytes,
            Some(rid),
            None,
            now,
        );
        self.pending.insert(id, (addr, bytes));
        id
    }

    /// Marks a header as accepted (safe in the WPQ).
    pub fn accepted(&mut self, id: OpId) {
        self.pending.remove(&id);
    }

    /// Crash: writes every unaccepted sealed header directly to the image
    /// (they were still in the persistence domain).
    pub fn flush(&mut self, image: &mut MemoryImage) {
        for (_, (addr, bytes)) in self.pending.drain() {
            image.write(addr, &bytes);
        }
    }

    /// Number of headers in flight.
    #[allow(dead_code)] // exercised by tests; handy for diagnostics
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no headers are in flight.
    #[allow(dead_code)] // exercised by tests; handy for diagnostics
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logbuf::{MAX_ENTRIES, RECORD_LINES};

    #[test]
    fn active_log_allocates_entries_in_record() {
        let mut log = LogBuffer::new(PmAddr(0), 4 * RECORD_LINES * 64);
        let mut al = ActiveLog::start(&mut log, Rid::new(0, 1)).unwrap();
        let (e0, s0) = al.add_entry(&mut log, LineAddr(10)).unwrap();
        let (e1, s1) = al.add_entry(&mut log, LineAddr(11)).unwrap();
        assert_eq!(e0, PmAddr(64));
        assert_eq!(e1, PmAddr(128));
        assert!(s0.is_none() && s1.is_none());
        assert_eq!(al.entries, 2);
    }

    #[test]
    fn record_seals_at_seven_entries_and_chains() {
        let mut log = LogBuffer::new(PmAddr(0), 4 * RECORD_LINES * 64);
        let mut al = ActiveLog::start(&mut log, Rid::new(0, 1)).unwrap();
        let first_header = al.header_addr;
        let mut sealed = None;
        for i in 0..MAX_ENTRIES {
            let (_, s) = al.add_entry(&mut log, LineAddr(i as u64)).unwrap();
            if s.is_some() {
                sealed = s;
                assert_eq!(i, MAX_ENTRIES - 1, "seals exactly on the 7th entry");
            }
        }
        let (addr, bytes) = sealed.expect("record sealed");
        assert_eq!(addr, first_header);
        let h = RecordHeader::decode(&bytes).unwrap();
        assert!(h.sealed && !h.committed);
        assert_eq!(h.count as usize, MAX_ENTRIES);
        // The fresh record chains back to the sealed one.
        assert_eq!(al.header.prev, Some(first_header));
        assert_ne!(al.header_addr, first_header);
    }

    #[test]
    fn seal_final_marks_commit() {
        let mut log = LogBuffer::new(PmAddr(0), 4 * RECORD_LINES * 64);
        let mut al = ActiveLog::start(&mut log, Rid::new(0, 1)).unwrap();
        al.add_entry(&mut log, LineAddr(5)).unwrap();
        let (_, bytes) = al.seal_final(true);
        let h = RecordHeader::decode(&bytes).unwrap();
        assert!(h.sealed && h.committed);
        assert_eq!(h.count, 1);
    }

    #[test]
    fn log_full_surfaces() {
        let mut log = LogBuffer::new(PmAddr(0), RECORD_LINES * 64);
        let mut al = ActiveLog::start(&mut log, Rid::new(0, 1)).unwrap();
        for i in 0..MAX_ENTRIES - 1 {
            al.add_entry(&mut log, LineAddr(i as u64)).unwrap();
        }
        // The 7th entry seals and needs a new record: buffer is full.
        assert!(al.add_entry(&mut log, LineAddr(99)).is_err());
    }

    #[test]
    fn inflight_headers_flush_on_crash() {
        use asap_sim::SystemConfig;
        let mut hw = Hw::new(SystemConfig::small(), 1, 1 << 20, 1 << 20);
        let mut infl = InflightHeaders::new();
        let addr = hw.layout.log_base(0);
        let rid = Rid::new(0, 1);
        let id = infl.submit(&mut hw, rid, addr, [0xabu8; 64], Cycle(0));
        assert_eq!(infl.len(), 1);
        // Crash before acceptance: flush writes it to the image.
        infl.flush(&mut hw.image);
        assert_eq!(hw.image.read_line(addr.line())[0], 0xab);
        assert!(infl.is_empty());
        // Acceptance path: a new header, accepted, needs no flush.
        let id2 = infl.submit(&mut hw, rid, addr.offset(512), [1u8; 64], Cycle(0));
        assert_ne!(id, id2);
        infl.accepted(id2);
        assert!(infl.is_empty());
    }
}
