//! The shared hardware context every persistence scheme operates on.

use asap_mem::cache::AccessKind;
use asap_mem::{
    Access, CacheHierarchy, Evicted, MemEvent, MemSystem, OpId, PersistKind, PersistOp, Rid,
};
use asap_pmem::{LineAddr, MemoryImage, PmAddr, RangeAllocator, LINE_BYTES, PM_BASE};
use asap_sim::{
    Cycle, StallClass, StallReason, Stats, SystemConfig, TelemetrySettings, TimeSeries, Trace,
    TraceEvent, TraceSettings,
};

use crate::lifecycle::RegionLog;
use crate::scheme::SchemeGauges;

/// Size of the persistence-domain crash-dump area at the bottom of PM.
///
/// On power failure the WPQ, LH-WPQ and active Dependence List entries are
/// flushed to persistent memory (§5.5); this reserved range is where the
/// non-WPQ structures land, so recovery can parse them from the image.
pub const DUMP_BYTES: u64 = 1 << 20;

/// Physical layout of the simulated persistent memory.
///
/// ```text
/// PM_BASE ─┬─ crash-dump area (DUMP_BYTES)
///          ├─ per-thread log buffers (threads × log_bytes)
///          └─ persistent heap (heap_bytes)
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PmLayout {
    /// Bytes of log buffer per thread.
    pub log_bytes: u64,
    /// Number of per-thread log buffers.
    pub threads: u32,
    /// Bytes of persistent heap.
    pub heap_bytes: u64,
}

impl PmLayout {
    /// Base address of the crash-dump area.
    pub fn dump_base(&self) -> PmAddr {
        PmAddr(PM_BASE)
    }

    /// Base address of thread `t`'s log buffer.
    pub fn log_base(&self, t: usize) -> PmAddr {
        PmAddr(PM_BASE + DUMP_BYTES + t as u64 * self.log_bytes)
    }

    /// Base address of the persistent heap.
    pub fn heap_base(&self) -> PmAddr {
        PmAddr(PM_BASE + DUMP_BYTES + u64::from(self.threads) * self.log_bytes)
    }
}

/// All scheme-independent hardware state: caches, memory system, memory
/// image, allocators and statistics.
///
/// Schemes receive `&mut Hw` in every hook; the machine and the scheme
/// never borrow it simultaneously.
pub struct Hw {
    /// The full system configuration (Table 2).
    pub cfg: SystemConfig,
    /// PM address-space layout.
    pub layout: PmLayout,
    /// The cache hierarchy (L1/L2/LLC with tag extensions).
    pub caches: CacheHierarchy,
    /// Memory controllers and WPQs.
    pub mem: MemSystem,
    /// Byte contents of main memory (PM durable state + DRAM).
    pub image: MemoryImage,
    /// Persistent heap (`pm_alloc`/`pm_free`).
    pub heap: RangeAllocator,
    /// Volatile DRAM heap.
    pub dram_heap: RangeAllocator,
    /// Machine-level statistics.
    pub stats: Stats,
    /// CPU-side event trace (regions, stalls, persist issues). Disabled by
    /// default; see [`Hw::set_trace_settings`].
    pub trace: Trace,
    /// Core each thread currently runs on (1:1 by default; §5.7 context
    /// switches can remap).
    pub thread_core: Vec<usize>,
    /// Per-thread stall cycles of the current region, by [`StallClass`]
    /// index. Reset at region begin, collected at region end.
    stall_acc: Vec<[u64; 4]>,
    /// Region-lifecycle recorder and always-on commit-order auditor.
    pub lifecycle: RegionLog,
    /// Virtual-time occupancy sampler (disabled unless telemetry is on).
    telemetry: TimeSeries,
}

impl Hw {
    /// Builds the hardware for `threads` threads with the given PM sizing.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `threads` exceeds cores.
    pub fn new(cfg: SystemConfig, threads: u32, log_bytes: u64, heap_bytes: u64) -> Self {
        cfg.validate().expect("invalid system configuration");
        assert!(
            threads <= cfg.cores,
            "threads ({threads}) must not exceed cores ({})",
            cfg.cores
        );
        let layout = PmLayout {
            log_bytes,
            threads,
            heap_bytes,
        };
        let mut image = MemoryImage::new();
        // Dump area and log buffers are persistent by construction.
        image.mark_persistent(layout.dump_base(), DUMP_BYTES);
        image.mark_persistent(layout.log_base(0), u64::from(threads) * log_bytes);
        let heap = RangeAllocator::new(layout.heap_base(), heap_bytes);
        let dram_heap = RangeAllocator::new(PmAddr(4096), PM_BASE / 2);
        Hw {
            caches: CacheHierarchy::new(&cfg),
            mem: MemSystem::new(&cfg),
            image,
            heap,
            dram_heap,
            stats: Stats::new(),
            trace: Trace::disabled(),
            thread_core: (0..threads as usize).collect(),
            stall_acc: vec![[0u64; 4]; threads as usize],
            lifecycle: RegionLog::new(),
            telemetry: TimeSeries::disabled(),
            cfg,
            layout,
        }
    }

    /// Switches tracing on/off for the CPU side and the memory system.
    pub fn set_trace_settings(&mut self, settings: TraceSettings) {
        self.trace = Trace::new(settings);
        self.mem.set_trace_settings(settings);
    }

    /// Configures the telemetry sampler: registers the gauge set (one WPQ
    /// gauge per memory channel plus the scheme/cache/memory gauges) and
    /// arms lifecycle recording and hot-line tracking when enabled.
    pub fn set_telemetry(&mut self, settings: TelemetrySettings) {
        let mut names: Vec<String> = (0..self.mem.num_channels())
            .map(|c| format!("wpq.ch{c}"))
            .collect();
        names.extend(
            [
                "log.fill_lines",
                "regions.uncommitted",
                "deps.pending",
                "cache.dirty_lines",
                "mem.inflight",
            ]
            .map(String::from),
        );
        self.telemetry = TimeSeries::new(settings, names);
        self.lifecycle.set_recording(settings.enabled);
        self.mem.set_hot_line_tracking(settings.enabled);
    }

    /// True when the sampler wants a sample at `now` — one predictable
    /// branch when telemetry is off, so it is safe on every hot path.
    #[inline]
    pub fn telemetry_due(&self, now: Cycle) -> bool {
        self.telemetry.due(now)
    }

    /// Takes one telemetry sample at `now`. Callers gate on
    /// [`Hw::telemetry_due`] and pass the scheme's current gauge readings.
    pub fn telemetry_record(&mut self, now: Cycle, sg: SchemeGauges) {
        let channels = self.mem.num_channels();
        let mut vals = Vec::with_capacity(channels as usize + 5);
        let mut inflight = 0u64;
        for c in 0..channels {
            vals.push(self.mem.wpq_len(c) as u64);
            inflight += self.mem.pending_len(c) as u64;
        }
        vals.push(sg.log_fill_lines);
        vals.push(sg.uncommitted_regions);
        vals.push(sg.dep_queue_depth);
        vals.push(self.caches.dirty_lines());
        vals.push(inflight);
        self.telemetry.record(now, &vals);
    }

    /// The telemetry sampler (empty when telemetry is disabled).
    pub fn telemetry(&self) -> &TimeSeries {
        &self.telemetry
    }

    /// Feeds a popped memory event to the lifecycle recorder. Both event
    /// pop sites — [`crate::machine::Machine`]'s pump and the schemes'
    /// `wait_mem!` loops — must call this so drain timestamps are complete.
    #[inline]
    pub fn observe_mem_event(&mut self, ev: &MemEvent) {
        if !self.lifecycle.recording() {
            return;
        }
        if let MemEvent::PmWritten { op, at, .. } = ev {
            if let Some(rid) = op.rid {
                self.lifecycle.pm_written(rid, *at);
            }
        }
    }

    /// Records a stall of `thread` on `reason` over `[from, to)`: feeds the
    /// per-region breakdown accumulator, the aggregate
    /// `machine.stall_cycles.<class>` counters and (when enabled) the
    /// trace. Zero-length waits are ignored.
    pub fn note_stall(&mut self, thread: usize, reason: StallReason, from: Cycle, to: Cycle) {
        let cycles = to.since(from);
        if cycles == 0 {
            return;
        }
        let class = reason.class();
        self.stall_acc[thread][class.index()] += cycles;
        let counter = match class {
            StallClass::LogFull => "machine.stall_cycles.log_full",
            StallClass::WpqBackpressure => "machine.stall_cycles.wpq_backpressure",
            StallClass::DependencyWait => "machine.stall_cycles.dependency_wait",
            StallClass::CommitWait => "machine.stall_cycles.commit_wait",
        };
        self.stats.add(counter, cycles);
        if self.trace.enabled() {
            let t = thread as u32;
            self.trace.emit(from, t, TraceEvent::StallBegin { reason });
            self.trace
                .emit(to, t, TraceEvent::StallEnd { reason, cycles });
        }
    }

    /// Clears `thread`'s per-region stall accumulator (region begin).
    pub fn reset_region_stalls(&mut self, thread: usize) {
        self.stall_acc[thread] = [0; 4];
    }

    /// Takes `thread`'s per-region stall cycles by [`StallClass`] index
    /// (region end), resetting the accumulator.
    pub fn take_region_stalls(&mut self, thread: usize) -> [u64; 4] {
        std::mem::take(&mut self.stall_acc[thread])
    }

    /// Advances the memory system's internal events to `now`.
    pub fn advance_mem(&mut self, now: Cycle) {
        self.mem.advance_to(now, &mut self.image);
    }

    /// A cache access by `thread` (not core!) with miss handling: fills
    /// from the memory system (with WPQ forwarding) when needed.
    /// Evictions are returned for the caller/scheme to handle.
    pub fn cache_access(&mut self, thread: usize, line: LineAddr, kind: AccessKind) -> Access {
        let core = self.thread_core[thread];
        // One tag walk: the probe decides whether fill data is needed and
        // is handed back to the access so the hierarchy does not re-probe.
        let probe = self.caches.probe(core, line);
        let (fill, miss_latency) = if probe.level == asap_mem::HitLevel::Memory {
            let fill = self.mem.read_for_fill(line, &self.image);
            (Some(fill), self.mem.read_latency(line))
        } else {
            (None, 0)
        };
        self.caches
            .access_probed(core, line, kind, probe, fill, miss_latency)
    }

    /// The current architectural value of `line`: cache copy if present,
    /// otherwise memory (with WPQ forwarding). No timing side effects.
    pub fn line_value(&mut self, line: LineAddr) -> [u8; 64] {
        match self.caches.line(line) {
            Some(s) => s.data,
            None => self.mem.read_for_fill(line, &self.image).0,
        }
    }

    /// A store to a cached line performed by scheme-internal machinery
    /// (log-entry writes): brings the line in, mutates `bytes` at `offset`,
    /// and marks it dirty. Returns the latency plus any LLC evictions.
    ///
    /// # Panics
    ///
    /// Panics if the write would cross the line boundary.
    pub fn scheme_store(
        &mut self,
        thread: usize,
        line: LineAddr,
        offset: usize,
        bytes: &[u8],
    ) -> (u64, Option<Evicted>) {
        assert!(
            offset + bytes.len() <= LINE_BYTES as usize,
            "store crosses line"
        );
        let access = self.cache_access(thread, line, AccessKind::Store);
        let state = self.caches.line_mut(line).expect("just filled");
        state.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        state.dirty = true;
        (access.latency, access.evicted)
    }

    /// Persists a cached line's current contents (`clwb` or a hardware
    /// persist-op snapshot): clears the cache dirty bit and submits the
    /// write toward the WPQ. Returns `None` if the line is not cached
    /// (nothing to persist — it was already written back).
    pub fn persist_line(
        &mut self,
        line: LineAddr,
        kind: PersistKind,
        rid: Option<Rid>,
        logged_data_line: Option<LineAddr>,
        now: Cycle,
    ) -> Option<OpId> {
        let data = self.caches.writeback_copy(line)?;
        let mut op = PersistOp::new(kind, line, data, rid);
        op.logged_data_line = logged_data_line;
        Some(self.mem.submit(op, now))
    }

    /// Submits a persist operation carrying explicit `data` (used when the
    /// payload is composed by hardware, e.g. a log entry holding another
    /// line's old value).
    pub fn submit_value(
        &mut self,
        kind: PersistKind,
        target: LineAddr,
        data: [u8; 64],
        rid: Option<Rid>,
        logged_data_line: Option<LineAddr>,
        now: Cycle,
    ) -> OpId {
        let mut op = PersistOp::new(kind, target, data, rid);
        op.logged_data_line = logged_data_line;
        self.mem.submit(op, now)
    }

    /// Default eviction handling: dirty PM lines are written back through
    /// the WPQ, dirty DRAM lines go straight to the DRAM image. Schemes
    /// layer their extra behaviour (owner saving, redo redirection) on top.
    pub fn default_evict(&mut self, e: &Evicted, now: Cycle) {
        if !e.state.dirty {
            return;
        }
        if e.line.is_pm_region() {
            let op = PersistOp::new(PersistKind::WriteBack, e.line, e.state.data, e.state.owner);
            self.mem.submit(op, now);
        } else {
            let data = e.state.data;
            self.mem.dram_writeback(&mut self.image, e.line, &data);
        }
    }

    /// Whether the page under `line` is persistent (page-table bit).
    pub fn line_is_persistent(&self, line: LineAddr) -> bool {
        self.image.line_is_persistent(line)
    }

    /// One on-chip hop latency (cache controller ↔ memory controller).
    pub fn hop(&self) -> u64 {
        self.cfg.mem.mc_hop_latency
    }
}

/// Snapshot support: every field of [`Hw`] is simulation state, so a
/// clone is a complete, bit-exact copy. The memory image clones as a
/// copy-on-write pointer table (see `asap_pmem::MemoryImage`), so the
/// dominant cost is the volatile side's flat vectors — a memcpy, not a
/// page-by-page walk. `clone_from` restores in place, reusing the
/// destination's allocations across repeated forks.
impl Clone for Hw {
    fn clone(&self) -> Self {
        Hw {
            cfg: self.cfg,
            layout: self.layout,
            caches: self.caches.clone(),
            mem: self.mem.clone(),
            image: self.image.clone(),
            heap: self.heap.clone(),
            dram_heap: self.dram_heap.clone(),
            stats: self.stats.clone(),
            trace: self.trace.clone(),
            thread_core: self.thread_core.clone(),
            stall_acc: self.stall_acc.clone(),
            lifecycle: self.lifecycle.clone(),
            telemetry: self.telemetry.clone(),
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.cfg = src.cfg;
        self.layout = src.layout;
        self.caches.clone_from(&src.caches);
        self.mem.clone_from(&src.mem);
        self.image.clone_from(&src.image);
        self.heap.clone_from(&src.heap);
        self.dram_heap.clone_from(&src.dram_heap);
        self.stats.clone_from(&src.stats);
        self.trace.clone_from(&src.trace);
        self.thread_core.clone_from(&src.thread_core);
        self.stall_acc.clone_from(&src.stall_acc);
        self.lifecycle.clone_from(&src.lifecycle);
        self.telemetry.clone_from(&src.telemetry);
    }
}

impl std::fmt::Debug for Hw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hw")
            .field("threads", &self.thread_core.len())
            .field("caches", &self.caches)
            .field("mem", &self.mem)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> Hw {
        Hw::new(SystemConfig::small(), 2, 1 << 20, 16 << 20)
    }

    #[test]
    fn layout_is_disjoint_and_ordered() {
        let h = hw();
        let dump = h.layout.dump_base();
        let log0 = h.layout.log_base(0);
        let log1 = h.layout.log_base(1);
        let heap = h.layout.heap_base();
        assert_eq!(dump.0, PM_BASE);
        assert_eq!(log0.0, PM_BASE + DUMP_BYTES);
        assert_eq!(log1.0, log0.0 + (1 << 20));
        assert_eq!(heap.0, log1.0 + (1 << 20));
        assert!(h.heap.base() == heap);
    }

    #[test]
    fn log_and_dump_pages_are_persistent() {
        let h = hw();
        assert!(h.image.is_persistent(h.layout.dump_base()));
        assert!(h.image.is_persistent(h.layout.log_base(1)));
    }

    #[test]
    fn scheme_store_makes_line_dirty() {
        let mut h = hw();
        let line = LineAddr(h.layout.heap_base().0 / 64);
        let (lat, _ev) = h.scheme_store(0, line, 8, &[1, 2, 3]);
        assert!(lat > 0);
        let st = h.caches.line(line).unwrap();
        assert!(st.dirty);
        assert_eq!(&st.data[8..11], &[1, 2, 3]);
    }

    #[test]
    fn persist_line_clears_dirty_and_submits() {
        let mut h = hw();
        let line = LineAddr(h.layout.heap_base().0 / 64);
        h.scheme_store(0, line, 0, &[9]);
        let id = h.persist_line(line, PersistKind::SwPersist, None, None, Cycle(0));
        assert!(id.is_some());
        assert!(!h.caches.line(line).unwrap().dirty);
        h.advance_mem(Cycle(1_000_000));
        assert_eq!(h.image.read_line(line)[0], 9);
    }

    #[test]
    fn persist_uncached_line_is_none() {
        let mut h = hw();
        assert!(h
            .persist_line(
                LineAddr(12345),
                PersistKind::SwPersist,
                None,
                None,
                Cycle(0)
            )
            .is_none());
    }

    #[test]
    fn line_value_prefers_cache() {
        let mut h = hw();
        let line = LineAddr(h.layout.heap_base().0 / 64);
        h.image.write_line(line, &[7u8; 64]);
        assert_eq!(h.line_value(line)[0], 7); // from memory
        h.scheme_store(0, line, 0, &[8]);
        assert_eq!(h.line_value(line)[0], 8); // cache copy wins
    }

    #[test]
    fn default_evict_routes_by_region() {
        let mut h = hw();
        let pm = LineAddr(h.layout.heap_base().0 / 64);
        let dram = LineAddr(100);
        // Build evicted states manually.
        let mut st = asap_mem::LineState::from_bytes([3u8; 64]);
        st.dirty = true;
        h.default_evict(
            &Evicted {
                line: dram,
                state: st.clone(),
                forced: false,
            },
            Cycle(0),
        );
        assert_eq!(h.image.read_line(dram)[0], 3, "DRAM writeback immediate");
        h.default_evict(
            &Evicted {
                line: pm,
                state: st.clone(),
                forced: false,
            },
            Cycle(0),
        );
        h.advance_mem(Cycle(1_000_000));
        assert_eq!(h.image.read_line(pm)[0], 3, "PM writeback via WPQ");
        st.dirty = false;
        let clean = LineAddr(pm.0 + 1);
        h.default_evict(
            &Evicted {
                line: clean,
                state: st,
                forced: false,
            },
            Cycle(0),
        );
        h.advance_mem(Cycle(2_000_000));
        assert_eq!(
            h.image.read_line(clean)[0],
            0,
            "clean eviction writes nothing"
        );
    }

    #[test]
    #[should_panic(expected = "must not exceed cores")]
    fn too_many_threads_panics() {
        Hw::new(SystemConfig::small(), 64, 1 << 20, 1 << 20);
    }

    #[test]
    fn cache_access_fills_pbit() {
        let mut h = hw();
        let line = LineAddr(h.layout.heap_base().0 / 64);
        h.image.mark_persistent(line.base(), 64);
        h.cache_access(0, line, AccessKind::Load);
        assert!(h.caches.line(line).unwrap().pbit);
    }
}
