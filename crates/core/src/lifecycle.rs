//! Region-lifecycle audit log and always-on commit-order auditor.
//!
//! Every atomic region passes through the same lifecycle no matter which
//! scheme runs it: *begin* → *end* (execution leaves the region) →
//! *persist-ordered* (all of its persist operations are accepted by the
//! persistence domain) → *commit* (the region is durable and its log space
//! reclaimable) → *drain* (its last data write reaches the PM media).
//! Synchronous schemes collapse end/ordered/commit into one instant; ASAP
//! is the one scheme where they spread out in time, and the gap is exactly
//! the asynchrony the paper sells.
//!
//! [`RegionLog`] records those five timestamps plus the dependency edges
//! hardware observed between regions, and exports them as JSON, Graphviz
//! DOT, and a commit-order timeline. Recording is bounded (oldest regions
//! are evicted beyond a cap) and only active when telemetry is enabled.
//!
//! Independently of recording, a cheap **auditor** runs on every simulation:
//! it keeps the set of live (begun, not yet committed) regions and the
//! dependency edges among them, and asserts at each commit that every
//! dependency of the committing region has already committed — i.e. that
//! the observed commit order is a linear extension of the dependency DAG.
//! A violation here is precisely the recoverability bug class ASAP's
//! Dependence List exists to prevent, so it panics loudly instead of
//! accumulating a statistic.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use asap_mem::Rid;
use asap_sim::Cycle;

/// Maximum regions (and committed-region timeline entries) retained by the
/// recorder before the oldest are evicted.
pub const DEFAULT_LIFECYCLE_CAP: usize = 1 << 16;

/// Lifecycle timestamps and dependencies of one region.
#[derive(Clone, Debug, Default)]
pub struct RegionRecord {
    /// Cycle `begin_region` ran.
    pub begin: u64,
    /// Cycle `end_region` returned (execution left the region).
    pub end: Option<u64>,
    /// Cycle the region became persist-ordered (all persists accepted).
    pub ordered: Option<u64>,
    /// Cycle the region committed (durable, log reclaimable).
    pub commit: Option<u64>,
    /// Cycle the region's last data write reached the PM media.
    pub drained: Option<u64>,
    /// Regions this region depends on (must commit first).
    pub deps: Vec<Rid>,
}

/// The per-machine lifecycle recorder plus the always-on commit auditor.
#[derive(Clone, Debug, Default)]
pub struct RegionLog {
    recording: bool,
    cap: usize,
    records: BTreeMap<Rid, RegionRecord>,
    /// Insertion order of `records`, for bounded eviction.
    order: VecDeque<Rid>,
    /// Commit-order timeline: `(rid, commit_cycle)` in commit order.
    commits: VecDeque<(Rid, u64)>,
    /// Regions evicted from the bounded recorder.
    dropped: u64,
    // ---- auditor state (always on, O(live regions)) ----
    /// Begun but not yet committed.
    live: HashSet<Rid>,
    /// Dependencies recorded while both endpoints were live.
    audit_deps: HashMap<Rid, Vec<Rid>>,
    /// Commits checked against the DAG so far.
    audited: u64,
}

impl RegionLog {
    /// A log with the auditor armed and recording off.
    pub fn new() -> Self {
        RegionLog {
            cap: DEFAULT_LIFECYCLE_CAP,
            ..RegionLog::default()
        }
    }

    /// Turns full lifecycle recording on or off. The auditor runs either
    /// way.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
        if self.cap == 0 {
            self.cap = DEFAULT_LIFECYCLE_CAP;
        }
    }

    /// Whether full lifecycle recording is active.
    #[inline]
    pub fn recording(&self) -> bool {
        self.recording
    }

    /// A region began at `now`.
    pub fn begin(&mut self, rid: Rid, now: Cycle) {
        self.live.insert(rid);
        if !self.recording {
            return;
        }
        if self.records.len() >= self.cap {
            if let Some(old) = self.order.pop_front() {
                self.records.remove(&old);
                self.dropped += 1;
            }
        }
        self.records.insert(
            rid,
            RegionRecord {
                begin: now.0,
                ..RegionRecord::default()
            },
        );
        self.order.push_back(rid);
    }

    /// Execution left the region at `now`.
    pub fn end(&mut self, rid: Rid, now: Cycle) {
        if self.recording {
            if let Some(r) = self.records.get_mut(&rid) {
                r.end = Some(now.0);
            }
        }
    }

    /// The region became persist-ordered at `now`.
    pub fn ordered(&mut self, rid: Rid, now: Cycle) {
        if self.recording {
            if let Some(r) = self.records.get_mut(&rid) {
                r.ordered = Some(now.0);
            }
        }
    }

    /// The region committed at `now`. Runs the commit-order audit.
    ///
    /// # Panics
    ///
    /// Panics if any dependency recorded for `rid` has not itself
    /// committed — the observed commit order would not be a linear
    /// extension of the dependency DAG, which breaks recoverability.
    pub fn commit(&mut self, rid: Rid, now: Cycle) {
        if let Some(deps) = self.audit_deps.remove(&rid) {
            for dep in deps {
                assert!(
                    !self.live.contains(&dep),
                    "commit-order violation: region {rid} committed at cycle {} \
                     before its dependency {dep}",
                    now.0
                );
            }
        }
        self.live.remove(&rid);
        self.audited += 1;
        if self.recording {
            if let Some(r) = self.records.get_mut(&rid) {
                r.commit = Some(now.0);
            }
            if self.commits.len() >= self.cap {
                self.commits.pop_front();
            }
            self.commits.push_back((rid, now.0));
        }
    }

    /// One of the region's data writes reached the PM media at `now`.
    /// The last such write is the drain timestamp.
    pub fn pm_written(&mut self, rid: Rid, now: Cycle) {
        if self.recording {
            if let Some(r) = self.records.get_mut(&rid) {
                r.drained = Some(r.drained.unwrap_or(0).max(now.0));
            }
        }
    }

    /// Hardware observed that `to` depends on `from` (`from` must commit
    /// first). Ignored by the auditor unless `from` is still live — a
    /// dependency on an already-committed region is trivially satisfied.
    pub fn dep_edge(&mut self, from: Rid, to: Rid) {
        if self.live.contains(&from) {
            self.audit_deps.entry(to).or_default().push(from);
        }
        if self.recording {
            if let Some(r) = self.records.get_mut(&to) {
                if !r.deps.contains(&from) {
                    r.deps.push(from);
                }
            }
        }
    }

    /// A crash wiped the machine: in-flight regions will never commit, so
    /// the auditor forgets them. Recorded history is kept for post-mortems.
    pub fn note_crash(&mut self) {
        self.live.clear();
        self.audit_deps.clear();
    }

    /// Commits checked against the dependency DAG so far.
    pub fn audited_commits(&self) -> u64 {
        self.audited
    }

    /// Regions evicted from the bounded recorder.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of regions currently recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no regions have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Recorded regions in `Rid` order.
    pub fn records(&self) -> impl Iterator<Item = (&Rid, &RegionRecord)> {
        self.records.iter()
    }

    /// The commit-order timeline as `(rid, commit_cycle)` pairs.
    pub fn commit_order(&self) -> impl Iterator<Item = &(Rid, u64)> {
        self.commits.iter()
    }

    /// Serializes the log as one JSON object (regions in `Rid` order, the
    /// commit timeline in commit order, plus audit/eviction counters).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"regions\":[");
        for (i, (rid, r)) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rid\":\"{rid}\",\"begin\":{},\"end\":{},\"ordered\":{},\
                 \"commit\":{},\"drained\":{},\"deps\":[",
                r.begin,
                opt(r.end),
                opt(r.ordered),
                opt(r.commit),
                opt(r.drained),
            ));
            for (j, d) in r.deps.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{d}\""));
            }
            out.push_str("]}");
        }
        out.push_str("],\"commits\":[");
        for (i, (rid, at)) in self.commits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[\"{rid}\",{at}]"));
        }
        out.push_str(&format!(
            "],\"dropped\":{},\"audited\":{}}}",
            self.dropped, self.audited
        ));
        out
    }

    /// Exports the dependency DAG as Graphviz DOT. Nodes are regions
    /// labelled with their begin→commit window; edges point from a region
    /// to the region that had to commit before it.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph regions {\n  rankdir=LR;\n  node [shape=box];\n");
        for (rid, r) in &self.records {
            let commit = r
                .commit
                .map(|c| c.to_string())
                .unwrap_or_else(|| "?".into());
            out.push_str(&format!(
                "  \"{rid}\" [label=\"{rid}\\n{}..{commit}\"];\n",
                r.begin
            ));
        }
        for (rid, r) in &self.records {
            for d in &r.deps {
                out.push_str(&format!("  \"{rid}\" -> \"{d}\";\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    /// The commit-order timeline as text: one `cycle rid` line per commit.
    pub fn timeline(&self) -> String {
        let mut out = String::new();
        for (rid, at) in &self.commits {
            out.push_str(&format!("{at:>12} {rid}\n"));
        }
        out
    }
}

/// Renders an optional cycle as JSON (`null` when absent).
fn opt(v: Option<u64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "null".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_sim::json;

    fn rid(t: u32, l: u64) -> Rid {
        Rid::new(t, l)
    }

    #[test]
    fn auditor_accepts_linear_extension() {
        let mut log = RegionLog::new();
        let (a, b, c) = (rid(0, 0), rid(0, 1), rid(1, 0));
        log.begin(a, Cycle(0));
        log.begin(b, Cycle(5));
        log.begin(c, Cycle(6));
        log.dep_edge(a, b); // b depends on a
        log.dep_edge(a, c); // c depends on a
        log.commit(a, Cycle(10));
        log.commit(c, Cycle(11));
        log.commit(b, Cycle(12));
        assert_eq!(log.audited_commits(), 3);
    }

    #[test]
    #[should_panic(expected = "commit-order violation")]
    fn auditor_rejects_dependency_inversion() {
        let mut log = RegionLog::new();
        let (a, b) = (rid(0, 0), rid(0, 1));
        log.begin(a, Cycle(0));
        log.begin(b, Cycle(1));
        log.dep_edge(a, b); // b depends on a …
        log.commit(b, Cycle(5)); // … but b commits first.
    }

    #[test]
    fn auditor_runs_even_when_not_recording() {
        let mut log = RegionLog::new();
        assert!(!log.recording());
        let a = rid(0, 0);
        log.begin(a, Cycle(0));
        log.commit(a, Cycle(3));
        assert_eq!(log.audited_commits(), 1);
        assert!(log.is_empty(), "no records kept while recording is off");
    }

    #[test]
    fn dep_on_committed_region_is_trivially_satisfied() {
        let mut log = RegionLog::new();
        let (a, b) = (rid(0, 0), rid(0, 1));
        log.begin(a, Cycle(0));
        log.commit(a, Cycle(2));
        log.begin(b, Cycle(3));
        log.dep_edge(a, b); // a already durable: no audit edge.
        log.commit(b, Cycle(4));
    }

    #[test]
    fn crash_clears_live_set() {
        let mut log = RegionLog::new();
        let (a, b) = (rid(0, 0), rid(0, 1));
        log.begin(a, Cycle(0));
        log.begin(b, Cycle(1));
        log.dep_edge(a, b);
        log.note_crash();
        // Post-crash, b's replayed successor may commit freely.
        log.begin(b, Cycle(10));
        log.commit(b, Cycle(11));
    }

    #[test]
    fn recording_captures_full_lifecycle() {
        let mut log = RegionLog::new();
        log.set_recording(true);
        let (a, b) = (rid(0, 0), rid(0, 1));
        log.begin(a, Cycle(0));
        log.end(a, Cycle(4));
        log.ordered(a, Cycle(6));
        log.begin(b, Cycle(5));
        log.dep_edge(a, b);
        log.commit(a, Cycle(8));
        log.pm_written(a, Cycle(9));
        log.pm_written(a, Cycle(12));
        let (_, r) = log.records().next().unwrap();
        assert_eq!(r.begin, 0);
        assert_eq!(r.end, Some(4));
        assert_eq!(r.ordered, Some(6));
        assert_eq!(r.commit, Some(8));
        assert_eq!(r.drained, Some(12));
        let rec_b = &log.records[&b];
        assert_eq!(rec_b.deps, vec![a]);
        assert_eq!(log.commit_order().count(), 1);
    }

    #[test]
    fn recorder_is_bounded() {
        let mut log = RegionLog::new();
        log.set_recording(true);
        log.cap = 4;
        for i in 0..10u64 {
            let r = rid(0, i);
            log.begin(r, Cycle(i));
            log.commit(r, Cycle(i + 1));
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.dropped(), 6);
        assert!(log.commit_order().count() <= 4);
    }

    #[test]
    fn exports_are_well_formed() {
        let mut log = RegionLog::new();
        log.set_recording(true);
        let (a, b) = (rid(0, 0), rid(1, 0));
        log.begin(a, Cycle(0));
        log.begin(b, Cycle(1));
        log.dep_edge(a, b);
        log.commit(a, Cycle(5));
        log.commit(b, Cycle(7));
        let v = json::parse(&log.to_json()).expect("lifecycle JSON parses");
        assert_eq!(
            v.get("regions").and_then(|r| r.as_array()).unwrap().len(),
            2
        );
        assert_eq!(v.get("audited").and_then(json::Value::as_f64), Some(2.0));
        let dot = log.to_dot();
        assert!(dot.starts_with("digraph regions {"));
        assert!(dot.contains("\"R1.0\" -> \"R0.0\";"));
        assert!(dot.trim_end().ends_with('}'));
        let tl = log.timeline();
        assert_eq!(tl.lines().count(), 2);
        assert!(tl.contains("R0.0"));
    }
}
