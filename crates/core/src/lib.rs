//! ASAP: Architecture Support for Asynchronous Persistence — core library.
//!
//! This crate reproduces the system described in the ISCA 2022 paper
//! *ASAP: Architecture Support for Asynchronous Persistence* (Abulila,
//! El Hajj, Jung, Kim): a hardware write-ahead-logging scheme for
//! persistent memory in which atomic regions **commit asynchronously** —
//! execution proceeds past `asap_end()` without waiting for outstanding log
//! persist operations (LPOs) or data persist operations (DPOs) — while
//! hardware tracks and enforces control and data dependencies between
//! regions so they still commit in a recoverable order.
//!
//! # What's here
//!
//! - [`machine`] — the simulated multicore machine: software interface
//!   (Table 1: `begin_region`/`end_region`/`fence`/`pm_alloc`/`pm_free`),
//!   virtual-time execution, crash injection and recovery;
//! - [`scheme`] — the five persistence schemes evaluated by the paper:
//!   no-persistence, software undo logging, synchronous-commit hardware
//!   undo (à la Proteus), synchronous-LPO hardware redo, and ASAP itself;
//! - [`scheme::asap`] — ASAP's hardware state: thread state registers,
//!   CL List, Dependence List, LH-WPQ, the §5.1 traffic optimizations,
//!   and asynchronous commit;
//! - [`logbuf`] — per-thread circular log buffers and the Fig. 5a record
//!   format (one header line + up to 7 data-entry lines, chained);
//! - [`recovery`] — crash-time persistence-domain dump and the recovery
//!   procedures (dependence-DAG ordered undo for ASAP, undo/redo for the
//!   baselines);
//! - [`tracker`] — an execution shadow used by tests to verify atomic
//!   durability and commit-order guarantees end to end.
//!
//! # Quickstart
//!
//! ```
//! use asap_core::machine::{Machine, MachineConfig};
//! use asap_core::scheme::SchemeKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::new(MachineConfig::small(SchemeKind::Asap, 1));
//! let counter = machine.pm_alloc(8)?;
//! machine.run_thread(0, |ctx| {
//!     ctx.begin_region();
//!     let v = ctx.read_u64(counter);
//!     ctx.write_u64(counter, v + 1);
//!     ctx.end_region();
//! });
//! machine.drain();
//! assert_eq!(machine.debug_read_u64(counter), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod hw;
pub mod lifecycle;
pub mod logbuf;
pub mod machine;
pub mod recovery;
pub mod scheme;
pub mod tracker;

pub use hw::Hw;
pub use lifecycle::{RegionLog, RegionRecord};
pub use machine::{Machine, MachineConfig, RunOutcome, ThreadCtx};
pub use scheme::SchemeKind;
pub use tracker::RegionTracker;
