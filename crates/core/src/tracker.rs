//! Execution shadow for verifying atomic durability end to end.
//!
//! When enabled, the machine records every atomic region's line-granular
//! write set (old and new values), its reads, and its happens-before
//! dependencies, against an independently maintained shadow of persistent
//! memory. After a crash and recovery, [`RegionTracker::verify`] checks
//! the paper's guarantees against the recovered image:
//!
//! 1. **per-thread order** — the committed regions of each thread form a
//!    prefix of that thread's region sequence;
//! 2. **dependence closure** — a committed region's data dependencies are
//!    all committed (the Fig. 2 scenario can never appear);
//! 3. **fence durability** — every region completed before an
//!    `asap_fence` returned is committed;
//! 4. **atomic durability** — replaying exactly the committed regions over
//!    the initial state reproduces the recovered image on every tracked
//!    line.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use asap_mem::Rid;
use asap_pmem::{LineAddr, MemoryImage};

/// One tracked atomic region.
#[derive(Clone, Debug)]
pub struct TrackedRegion {
    /// The region's id.
    pub rid: Rid,
    /// Line → (value before the region's first write, value after its
    /// last write).
    pub writes: BTreeMap<LineAddr, ([u8; 64], [u8; 64])>,
    /// Cross-region data dependencies (regions whose data this one read
    /// or overwrote while they were uncommitted is a superset; we record
    /// all last-writers, and filter at verification time).
    pub deps: BTreeSet<Rid>,
    /// The region finished (`end_region` returned).
    pub ended: bool,
    /// A fence completed after this region ended.
    pub fenced: bool,
}

/// The execution shadow (see module docs).
#[derive(Clone, Debug, Default)]
pub struct RegionTracker {
    regions: Vec<TrackedRegion>,
    index: HashMap<Rid, usize>,
    /// Region sequence per thread, in begin order.
    per_thread: BTreeMap<u32, Vec<Rid>>,
    /// Last region to write each line.
    last_writer: HashMap<LineAddr, Rid>,
    /// Shadow of current persistent-line values.
    shadow: HashMap<LineAddr, [u8; 64]>,
    open: BTreeMap<u32, Rid>,
}

impl RegionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a region begin.
    ///
    /// # Panics
    ///
    /// Panics if the thread already has an open region.
    pub fn begin(&mut self, rid: Rid) {
        let t = rid.thread();
        assert!(
            !self.open.contains_key(&t),
            "thread {t} already has an open region"
        );
        self.open.insert(t, rid);
        self.index.insert(rid, self.regions.len());
        self.per_thread.entry(t).or_default().push(rid);
        self.regions.push(TrackedRegion {
            rid,
            writes: BTreeMap::new(),
            deps: BTreeSet::new(),
            ended: false,
            fenced: false,
        });
    }

    /// Records a write of `new` (full line value after the write) by the
    /// open region of `rid`'s thread.
    pub fn write(&mut self, rid: Rid, line: LineAddr, new: [u8; 64]) {
        let old = self.shadow.get(&line).copied().unwrap_or([0u8; 64]);
        if let Some(&w) = self.last_writer.get(&line) {
            if w != rid {
                self.region_mut(rid).deps.insert(w);
            }
        }
        self.last_writer.insert(line, rid);
        let r = self.region_mut(rid);
        r.writes.entry(line).or_insert((old, new)).1 = new;
        self.shadow.insert(line, new);
    }

    /// Records a read by `rid`.
    pub fn read(&mut self, rid: Rid, line: LineAddr) {
        if let Some(&w) = self.last_writer.get(&line) {
            if w != rid {
                self.region_mut(rid).deps.insert(w);
            }
        }
    }

    /// Records a region end. Returns the region's footprint —
    /// `(lines written, cross-region dependencies)` — so the caller can
    /// fold it into the run statistics (`region.lines_written`,
    /// `region.deps`).
    pub fn end(&mut self, rid: Rid) -> (usize, usize) {
        self.open.remove(&rid.thread());
        let r = self.region_mut(rid);
        r.ended = true;
        (r.writes.len(), r.deps.len())
    }

    /// Records a completed fence on `thread`: all of its ended regions are
    /// now guaranteed durable.
    pub fn fence(&mut self, thread: u32) {
        if let Some(rids) = self.per_thread.get(&thread) {
            for rid in rids.clone() {
                let r = self.region_mut(rid);
                if r.ended {
                    r.fenced = true;
                }
            }
        }
    }

    fn region_mut(&mut self, rid: Rid) -> &mut TrackedRegion {
        let i = *self.index.get(&rid).expect("region was begun");
        &mut self.regions[i]
    }

    /// Number of tracked regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether nothing was tracked.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// All tracked regions in begin order.
    pub fn regions(&self) -> &[TrackedRegion] {
        &self.regions
    }

    /// Removes regions rolled back by recovery and rebuilds the shadow
    /// from the surviving history, so tracking can continue after a
    /// crash+recover cycle.
    pub fn discard(&mut self, uncommitted: &BTreeSet<Rid>) {
        self.regions.retain(|r| !uncommitted.contains(&r.rid));
        self.index.clear();
        self.per_thread.clear();
        self.last_writer.clear();
        self.shadow.clear();
        self.open.clear();
        for (i, r) in self.regions.iter().enumerate() {
            self.index.insert(r.rid, i);
            self.per_thread
                .entry(r.rid.thread())
                .or_default()
                .push(r.rid);
            for (line, (_, new)) in &r.writes {
                self.shadow.insert(*line, *new);
                self.last_writer.insert(*line, r.rid);
            }
        }
    }

    /// Verifies the recovered `image` against the shadow, given the set of
    /// regions recovery reported as uncommitted (rolled back).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated guarantee.
    pub fn verify(&self, image: &MemoryImage, uncommitted: &BTreeSet<Rid>) -> Result<(), String> {
        let committed: BTreeSet<Rid> = self
            .regions
            .iter()
            .map(|r| r.rid)
            .filter(|r| !uncommitted.contains(r))
            .collect();
        // 1. Per-thread prefix order.
        for (t, rids) in &self.per_thread {
            let mut seen_uncommitted = false;
            for rid in rids {
                let is_committed = committed.contains(rid);
                if is_committed && seen_uncommitted {
                    return Err(format!(
                        "thread {t}: region {rid} committed after an earlier uncommitted region"
                    ));
                }
                if !is_committed {
                    seen_uncommitted = true;
                }
            }
        }
        // 2. Dependence closure.
        for r in &self.regions {
            if !committed.contains(&r.rid) {
                continue;
            }
            for d in &r.deps {
                if !committed.contains(d) {
                    return Err(format!(
                        "region {} committed but its dependence {d} did not",
                        r.rid
                    ));
                }
            }
        }
        // 3. Fence durability.
        for r in &self.regions {
            if r.fenced && !committed.contains(&r.rid) {
                return Err(format!("region {} was fenced but not committed", r.rid));
            }
        }
        // 4. Atomic durability: replay committed regions in begin order.
        let mut replay: HashMap<LineAddr, [u8; 64]> = HashMap::new();
        for r in &self.regions {
            if !committed.contains(&r.rid) {
                continue;
            }
            for (line, (_, new)) in &r.writes {
                replay.insert(*line, *new);
            }
        }
        let tracked: BTreeSet<LineAddr> = self
            .regions
            .iter()
            .flat_map(|r| r.writes.keys().copied())
            .collect();
        for line in tracked {
            let expect = replay.get(&line).copied().unwrap_or([0u8; 64]);
            let got = image.read_line(line);
            if got != expect {
                let byte = (0..64).find(|&i| got[i] != expect[i]).unwrap_or(0);
                let writers: Vec<String> = self
                    .regions
                    .iter()
                    .filter(|r| r.writes.contains_key(&line))
                    .map(|r| {
                        format!(
                            "{}{}",
                            r.rid,
                            if committed.contains(&r.rid) {
                                "(C)"
                            } else {
                                "(U)"
                            }
                        )
                    })
                    .collect();
                return Err(format!(
                    "line {line}: byte {byte} image={:#04x} != replay={:#04x}; \
                     writers: {}; {} committed regions",
                    got[byte],
                    expect[byte],
                    writers.join(","),
                    committed.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(t: u32, l: u64) -> Rid {
        Rid::new(t, l)
    }

    fn line_val(b: u8) -> [u8; 64] {
        [b; 64]
    }

    #[test]
    fn tracks_old_and_new_values() {
        let mut tr = RegionTracker::new();
        tr.begin(rid(0, 1));
        tr.write(rid(0, 1), LineAddr(5), line_val(1));
        tr.write(rid(0, 1), LineAddr(5), line_val(2));
        tr.end(rid(0, 1));
        let r = &tr.regions()[0];
        let (old, new) = r.writes[&LineAddr(5)];
        assert_eq!(old, line_val(0), "old value is pre-region");
        assert_eq!(new, line_val(2), "new value is the last write");
    }

    #[test]
    fn cross_region_deps_recorded() {
        let mut tr = RegionTracker::new();
        tr.begin(rid(0, 1));
        tr.write(rid(0, 1), LineAddr(9), line_val(1));
        tr.end(rid(0, 1));
        tr.begin(rid(1, 1));
        tr.read(rid(1, 1), LineAddr(9));
        tr.end(rid(1, 1));
        assert!(tr.regions()[1].deps.contains(&rid(0, 1)));
        assert!(tr.regions()[0].deps.is_empty());
    }

    #[test]
    fn verify_accepts_consistent_crash() {
        let mut tr = RegionTracker::new();
        tr.begin(rid(0, 1));
        tr.write(rid(0, 1), LineAddr(1), line_val(0xA));
        tr.end(rid(0, 1));
        tr.begin(rid(0, 2));
        tr.write(rid(0, 2), LineAddr(1), line_val(0xB));
        tr.end(rid(0, 2));
        // Crash: region 2 uncommitted, image holds region 1's value.
        let mut image = MemoryImage::new();
        image.write_line(LineAddr(1), &line_val(0xA));
        let un: BTreeSet<Rid> = [rid(0, 2)].into();
        tr.verify(&image, &un).unwrap();
    }

    #[test]
    fn verify_rejects_prefix_violation() {
        let mut tr = RegionTracker::new();
        tr.begin(rid(0, 1));
        tr.write(rid(0, 1), LineAddr(1), line_val(1));
        tr.end(rid(0, 1));
        tr.begin(rid(0, 2));
        tr.write(rid(0, 2), LineAddr(2), line_val(2));
        tr.end(rid(0, 2));
        // Claim region 1 rolled back but region 2 kept: order violation.
        let mut image = MemoryImage::new();
        image.write_line(LineAddr(2), &line_val(2));
        let un: BTreeSet<Rid> = [rid(0, 1)].into();
        let err = tr.verify(&image, &un).unwrap_err();
        assert!(
            err.contains("committed after an earlier uncommitted"),
            "{err}"
        );
    }

    #[test]
    fn verify_rejects_dependence_violation() {
        let mut tr = RegionTracker::new();
        tr.begin(rid(0, 1));
        tr.write(rid(0, 1), LineAddr(1), line_val(1));
        tr.end(rid(0, 1));
        tr.begin(rid(1, 1));
        tr.read(rid(1, 1), LineAddr(1));
        tr.write(rid(1, 1), LineAddr(2), line_val(2));
        tr.end(rid(1, 1));
        // Consumer kept, producer rolled back: Fig. 2's broken state.
        let mut image = MemoryImage::new();
        image.write_line(LineAddr(2), &line_val(2));
        let un: BTreeSet<Rid> = [rid(0, 1)].into();
        let err = tr.verify(&image, &un).unwrap_err();
        assert!(err.contains("dependence"), "{err}");
    }

    #[test]
    fn verify_rejects_torn_region() {
        let mut tr = RegionTracker::new();
        tr.begin(rid(0, 1));
        tr.write(rid(0, 1), LineAddr(1), line_val(1));
        tr.write(rid(0, 1), LineAddr(2), line_val(2));
        tr.end(rid(0, 1));
        // Image has only half the region's writes but claims it committed.
        let mut image = MemoryImage::new();
        image.write_line(LineAddr(1), &line_val(1));
        let err = tr.verify(&image, &BTreeSet::new()).unwrap_err();
        assert!(err.contains("replay"), "{err}");
    }

    #[test]
    fn verify_rejects_unfenced_rollback() {
        let mut tr = RegionTracker::new();
        tr.begin(rid(0, 1));
        tr.write(rid(0, 1), LineAddr(1), line_val(1));
        tr.end(rid(0, 1));
        tr.fence(0);
        let image = MemoryImage::new(); // rolled back
        let un: BTreeSet<Rid> = [rid(0, 1)].into();
        let err = tr.verify(&image, &un).unwrap_err();
        assert!(err.contains("fenced"), "{err}");
    }

    #[test]
    fn fence_only_covers_ended_regions() {
        let mut tr = RegionTracker::new();
        tr.begin(rid(0, 1));
        tr.end(rid(0, 1));
        tr.begin(rid(0, 2)); // still open
        tr.fence(0);
        assert!(tr.regions()[0].fenced);
        assert!(!tr.regions()[1].fenced);
    }

    #[test]
    fn end_reports_region_footprint() {
        let mut tr = RegionTracker::new();
        tr.begin(rid(0, 1));
        tr.write(rid(0, 1), LineAddr(1), line_val(1));
        tr.end(rid(0, 1));
        tr.begin(rid(1, 1));
        tr.read(rid(1, 1), LineAddr(1));
        tr.write(rid(1, 1), LineAddr(2), line_val(2));
        tr.write(rid(1, 1), LineAddr(3), line_val(3));
        assert_eq!(tr.end(rid(1, 1)), (2, 1), "two lines, one dependence");
    }

    #[test]
    #[should_panic(expected = "already has an open region")]
    fn overlapping_regions_same_thread_panic() {
        let mut tr = RegionTracker::new();
        tr.begin(rid(0, 1));
        tr.begin(rid(0, 2));
    }

    #[test]
    fn empty_tracker_verifies_empty_image() {
        let tr = RegionTracker::new();
        assert!(tr.is_empty());
        tr.verify(&MemoryImage::new(), &BTreeSet::new()).unwrap();
    }
}
