//! The simulated machine: software interface, executor, crash/recovery.
//!
//! A [`Machine`] owns the hardware ([`Hw`]), one persistence [`Scheme`],
//! per-thread virtual clocks and a table of [`VirtualLock`]s. Simulated
//! threads are ordinary Rust closures receiving a [`ThreadCtx`], whose
//! methods mirror the paper's Table 1 interface:
//!
//! | Paper | Here |
//! |-------|------|
//! | `asap_init()` | implicit at first step of each thread |
//! | `asap_malloc()` / `asap_free()` | [`Machine::pm_alloc`] / [`Machine::pm_free`] (or [`ThreadCtx::pm_alloc`]) |
//! | `asap_begin()` / `asap_end()` | [`ThreadCtx::begin_region`] / [`ThreadCtx::end_region`] |
//! | `asap_fence()` | [`ThreadCtx::fence`] |
//!
//! # Scheduling model
//!
//! [`Machine::run`] drives all threads with a deterministic virtual-time
//! scheduler: the runnable thread with the smallest local clock executes
//! one *step* (typically one lock-guarded transaction) to completion, then
//! yields. Because steps are serialized, a region observed by another
//! thread has always finished executing — so every hardware stall a scheme
//! performs (full CL List, Dep slots, LH-WPQ) resolves purely through
//! memory events, never through another thread's future execution.
//! Cross-thread timing still matters: lock hand-offs, WPQ contention and
//! commit ordering all happen in virtual time.
//!
//! # Crash injection
//!
//! Configure [`MachineConfig::crash_after_pm_writes`] and the machine
//! "loses power" at the matching persistent write: caches vanish, the
//! WPQs and the scheme's persistence-domain structures are flushed
//! (ADR), and [`Machine::recover`] rolls the image to a consistent state.

use std::any::Any;
use std::collections::BTreeSet;
use std::panic::{self, AssertUnwindSafe};

use asap_mem::cache::AccessKind;
use asap_mem::Rid;
use asap_pmem::{AllocError, LineAddr, PmAddr, LINE_BYTES};
use asap_sim::{
    chrome_trace_json, Cycle, StallClass, Stats, SystemConfig, TelemetrySettings, ThreadClocks,
    TimeSeries, Trace, TraceEvent, TracePart, TraceSettings, VirtualLock,
};

use crate::hw::Hw;
use crate::lifecycle::RegionLog;
use crate::scheme::{self, RecoveryReport, Scheme, SchemeKind};
use crate::tracker::RegionTracker;

/// Payload used to unwind out of workload code at a simulated power
/// failure.
struct SimCrash;

fn install_panic_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimCrash>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Machine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// The Table 2 system configuration.
    pub system: SystemConfig,
    /// The persistence scheme to run.
    pub scheme: SchemeKind,
    /// Number of simulated threads (≤ cores; 1:1 mapped).
    pub threads: u32,
    /// Per-thread log buffer bytes (`asap_init` size parameter).
    pub log_bytes: u64,
    /// Persistent heap bytes.
    pub heap_bytes: u64,
    /// Record an execution shadow for crash-consistency verification.
    pub track_regions: bool,
    /// Simulate a power failure at the N-th persistent-line write.
    pub crash_after_pm_writes: Option<u64>,
    /// Size of the virtual lock table.
    pub num_locks: usize,
    /// Event-trace settings (off by default; see [`TraceSettings`]).
    pub trace: TraceSettings,
    /// Telemetry sampler settings (off by default; see
    /// [`TelemetrySettings`]).
    pub telemetry: TelemetrySettings,
}

impl MachineConfig {
    /// Full Table 2 machine.
    pub fn new(scheme: SchemeKind, threads: u32) -> Self {
        MachineConfig {
            system: SystemConfig::table2(),
            scheme,
            threads,
            log_bytes: 4 << 20,
            heap_bytes: 256 << 20,
            track_regions: false,
            crash_after_pm_writes: None,
            num_locks: 64,
            trace: TraceSettings::disabled(),
            telemetry: TelemetrySettings::disabled(),
        }
    }

    /// Scaled-down machine for tests (small caches, 4 cores).
    pub fn small(scheme: SchemeKind, threads: u32) -> Self {
        let mut c = Self::new(scheme, threads);
        c.system = SystemConfig::small();
        c.log_bytes = 1 << 20;
        c.heap_bytes = 32 << 20;
        c
    }

    /// Enables the verification shadow.
    pub fn with_tracking(mut self) -> Self {
        self.track_regions = true;
        self
    }

    /// Arms a power failure at the N-th persistent write.
    pub fn with_crash_after(mut self, pm_writes: u64) -> Self {
        self.crash_after_pm_writes = Some(pm_writes);
        self
    }

    /// Overrides the system configuration.
    pub fn with_system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }

    /// Overrides the per-thread log buffer size (`asap_init`'s optional
    /// size parameter, §4.4).
    pub fn with_log_bytes(mut self, bytes: u64) -> Self {
        self.log_bytes = bytes;
        self
    }

    /// Enables event tracing with the given settings (e.g.
    /// [`TraceSettings::from_env`] for the `ASAP_TRACE` knobs).
    pub fn with_trace(mut self, trace: TraceSettings) -> Self {
        self.trace = trace;
        self
    }

    /// Enables virtual-time telemetry sampling and lifecycle recording
    /// (e.g. [`TelemetrySettings::from_env`] for the `ASAP_TELEMETRY`
    /// knobs).
    pub fn with_telemetry(mut self, telemetry: TelemetrySettings) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// One thread's step closure for [`Machine::run`]: execute one
/// transaction, return `false` when the thread is finished.
pub type StepFn = Box<dyn FnMut(&mut ThreadCtx<'_>) -> bool>;

/// How a [`Machine::run`] call ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// All threads finished their steps.
    Completed,
    /// The armed power failure fired; call [`Machine::recover`].
    Crashed,
}

/// How one [`Machine::step_thread`] call ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step ran; the thread has more steps.
    Continue,
    /// The step ran and returned `false`; the thread is finished.
    Finished,
    /// The armed power failure fired; call [`Machine::recover`].
    Crashed,
}

/// A frozen deep copy of a [`Machine`]'s complete state — hardware
/// (caches, WPQs, event wheels, PM image via copy-on-write pages, logs,
/// stats, traces), scheme state, thread clocks, locks and region
/// bookkeeping.
///
/// Taking one is O(volatile state + touched pages) pointer/`memcpy` work:
/// the PM image contributes only a refcounted pointer-table copy, so large
/// heaps snapshot in microseconds and pay per-page deep copies lazily, on
/// first write after the fork ([`MemoryImage::snapshot`](asap_pmem::MemoryImage::snapshot)).
///
/// Restoring with [`Machine::restore`] reuses the destination's
/// allocations (`clone_from` all the way down), which keeps a
/// fork-restore-run crash sweep allocation-flat after the first fork.
pub struct MachineSnapshot {
    cfg: MachineConfig,
    hw: Hw,
    scheme: Box<dyn Scheme>,
    clocks: ThreadClocks,
    locks: Vec<VirtualLock>,
    nest: Vec<u32>,
    local_rid: Vec<u64>,
    cur_rid: Vec<Option<Rid>>,
    region_start: Vec<Cycle>,
    started: Vec<bool>,
    tracker: Option<RegionTracker>,
    pm_write_ops: u64,
    crash_armed: Option<u64>,
    tx_count: u64,
}

impl MachineSnapshot {
    /// Persistent-line writes performed by the machine when the snapshot
    /// was taken — the coordinate crash sweeps use to pick the latest
    /// snapshot preceding a crash point.
    pub fn pm_write_ops(&self) -> u64 {
        self.pm_write_ops
    }

    /// Approximate resident size: the PM image's touched pages (shared
    /// with the live machine until written) — the dominant term.
    pub fn approx_image_bytes(&self) -> u64 {
        self.hw.image.touched_pages() as u64 * asap_pmem::PAGE_BYTES
    }
}

impl std::fmt::Debug for MachineSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MachineSnapshot")
            .field("scheme", &self.cfg.scheme)
            .field("pm_write_ops", &self.pm_write_ops)
            .field("makespan", &self.clocks.makespan())
            .finish()
    }
}

// Snapshots move across host threads: the parallel crash-sweep engine
// restores them inside pool workers. `Scheme: Send` (the only non-trivial
// component — everything else is flat owned data; the PM image's
// `Arc<Page>` table is `Send` by construction) makes this structural.
// Snapshots are *not* `Sync`: the image keeps single-thread `Cell` caches,
// so cross-thread sharing goes through a `Mutex`, never `&MachineSnapshot`.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<MachineSnapshot>();
    assert_send::<Machine>();
};

/// The simulated machine. See the [module docs](self).
pub struct Machine {
    cfg: MachineConfig,
    hw: Hw,
    scheme: Box<dyn Scheme>,
    clocks: ThreadClocks,
    locks: Vec<VirtualLock>,
    nest: Vec<u32>,
    local_rid: Vec<u64>,
    cur_rid: Vec<Option<Rid>>,
    region_start: Vec<Cycle>,
    started: Vec<bool>,
    tracker: Option<RegionTracker>,
    pm_write_ops: u64,
    crash_armed: Option<u64>,
    crashed: bool,
    tx_count: u64,
    /// Persistent-write counts at which persistence-lifecycle boundaries
    /// occurred (WPQ acceptances, media persists, audited commits, region
    /// ends), recorded while crash-point enumeration is on. Observer
    /// state: deliberately excluded from snapshot/restore so a recording
    /// pilot run and a replaying fork never disagree on machine state.
    crash_candidates: Option<Vec<u64>>,
}

/// Appends a candidate coordinate unless it repeats the latest one — the
/// event pump visits many events between persistent writes, and only
/// distinct write counts are distinct crash points.
fn push_candidate(c: &mut Vec<u64>, k: u64) {
    if c.last() != Some(&k) {
        c.push(k);
    }
}

impl Machine {
    /// Builds a machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (e.g. more threads than
    /// cores).
    pub fn new(cfg: MachineConfig) -> Self {
        install_panic_hook();
        let mut hw = Hw::new(cfg.system, cfg.threads, cfg.log_bytes, cfg.heap_bytes);
        hw.set_trace_settings(cfg.trace);
        hw.set_telemetry(cfg.telemetry);
        let scheme = scheme::build(cfg.scheme, &cfg.system);
        let threads = cfg.threads as usize;
        Machine {
            hw,
            scheme,
            clocks: ThreadClocks::new(threads),
            locks: (0..cfg.num_locks)
                .map(|_| VirtualLock::new(cfg.system.lock_cost))
                .collect(),
            nest: vec![0; threads],
            local_rid: vec![0; threads],
            cur_rid: vec![None; threads],
            region_start: vec![Cycle::ZERO; threads],
            started: vec![false; threads],
            tracker: cfg.track_regions.then(RegionTracker::new),
            pm_write_ops: 0,
            crash_armed: cfg.crash_after_pm_writes,
            crashed: false,
            tx_count: 0,
            crash_candidates: None,
            cfg,
        }
    }

    /// Allocates persistent memory (`asap_malloc`): cache-line aligned,
    /// page persistent bits set.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the heap is exhausted.
    pub fn pm_alloc(&mut self, len: u64) -> Result<PmAddr, AllocError> {
        let addr = self.hw.heap.alloc(len)?;
        self.hw.image.mark_persistent(addr, len.max(1));
        Ok(addr)
    }

    /// Frees persistent memory (`asap_free`).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NotAllocated`] for a bad address.
    pub fn pm_free(&mut self, addr: PmAddr) -> Result<(), AllocError> {
        self.hw.heap.free(addr)
    }

    /// Allocates volatile DRAM.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when DRAM is exhausted.
    pub fn dram_alloc(&mut self, len: u64) -> Result<PmAddr, AllocError> {
        self.hw.dram_heap.alloc(len)
    }

    fn ensure_started(&mut self, t: usize) {
        if !self.started[t] {
            self.started[t] = true;
            let now = self.clocks.clock(t);
            let now = self.scheme.on_thread_start(&mut self.hw, t, now);
            self.clocks.advance(t, now);
        }
    }

    fn pump(&mut self, now: Cycle) {
        self.hw.advance_mem(now);
        let audited0 = self
            .crash_candidates
            .is_some()
            .then(|| self.hw.lifecycle.audited_commits());
        while let Some(ev) = self.hw.mem.pop_event() {
            self.hw.observe_mem_event(&ev);
            if let Some(c) = &mut self.crash_candidates {
                // Every memory event is a persistence boundary: WPQ
                // acceptance (`Accepted`) and media persist (`PmWritten`)
                // are exactly the coordinates where a power failure
                // changes what recovery sees.
                push_candidate(c, self.pm_write_ops);
            }
            self.scheme.on_mem_event(&mut self.hw, &ev);
        }
        // ASAP-style asynchronous commits surface here (the commit
        // cascade runs from `on_mem_event`): a change in the audited
        // commit count marks a commit boundary.
        if let Some(a0) = audited0 {
            if self.hw.lifecycle.audited_commits() != a0 {
                if let Some(c) = &mut self.crash_candidates {
                    push_candidate(c, self.pm_write_ops);
                }
            }
        }
        if self.hw.telemetry_due(now) {
            let gauges = self.scheme.gauges();
            self.hw.telemetry_record(now, gauges);
        }
    }

    /// Turns crash-candidate recording on or off. While on, the machine
    /// appends its current [`pm_write_ops`](Self::pm_write_ops) to an
    /// internal list at every persistence-lifecycle boundary: WPQ
    /// acceptance, media persist, audited commit, and region end. Crash
    /// sweeps run one recording pilot and crash-straddle these counts
    /// instead of sweeping a blind fixed stride.
    pub fn record_crash_candidates(&mut self, on: bool) {
        self.crash_candidates = on.then(Vec::new);
    }

    /// Takes the recorded candidate coordinates (absolute persistent-write
    /// counts, ascending, deduplicated) and turns recording off.
    pub fn take_crash_candidates(&mut self) -> Vec<u64> {
        self.crash_candidates.take().unwrap_or_default()
    }

    fn note_crash_candidate(&mut self) {
        if let Some(c) = &mut self.crash_candidates {
            push_candidate(c, self.pm_write_ops);
        }
    }

    /// Runs one closure as a single step of thread `t`.
    pub fn run_thread(&mut self, t: usize, f: impl FnOnce(&mut ThreadCtx)) -> RunOutcome {
        assert!(!self.crashed, "machine crashed: call recover() first");
        self.ensure_started(t);
        let now = self.clocks.clock(t);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            let mut ctx = ThreadCtx { m: self, t, now };
            f(&mut ctx);
            ctx.now
        }));
        self.settle(t, caught)
    }

    /// Runs all threads to completion under the virtual-time scheduler.
    /// Each closure invocation is one step; returning `false` finishes the
    /// thread.
    ///
    /// This is exactly the [`begin_schedule`](Self::begin_schedule) /
    /// [`next_runnable`](Self::next_runnable) /
    /// [`step_thread`](Self::step_thread) loop — crash-sweep drivers that
    /// drive the primitives directly (to snapshot between steps) execute
    /// the same code path and cannot diverge from a plain `run`.
    ///
    /// # Panics
    ///
    /// Panics if `steps.len()` differs from the configured thread count.
    pub fn run(&mut self, steps: &mut [StepFn]) -> RunOutcome {
        assert!(!self.crashed, "machine crashed: call recover() first");
        assert_eq!(
            steps.len(),
            self.cfg.threads as usize,
            "one step closure per thread"
        );
        self.begin_schedule();
        while let Some(t) = self.next_runnable() {
            if self.step_thread(t, &mut steps[t]) == StepOutcome::Crashed {
                return RunOutcome::Crashed;
            }
        }
        RunOutcome::Completed
    }

    /// Restarts the virtual-time scheduler: clears the per-thread
    /// finished flags so every thread is runnable again. Clocks are kept —
    /// re-stepping a thread whose step closure immediately returns `false`
    /// is a no-op in simulated state.
    pub fn begin_schedule(&mut self) {
        self.clocks.restart();
    }

    /// The runnable thread with the smallest local clock, or `None` when
    /// all threads have finished.
    pub fn next_runnable(&mut self) -> Option<usize> {
        self.clocks.next_runnable()
    }

    /// Executes one step of thread `t` under the crash-injection guard —
    /// one iteration of the [`run`](Self::run) loop. Step boundaries are
    /// the machine's consistent snapshot points: no workload closure is on
    /// the stack, so [`snapshot`](Self::snapshot) captures resumable
    /// state.
    pub fn step_thread(&mut self, t: usize, step: &mut StepFn) -> StepOutcome {
        assert!(!self.crashed, "machine crashed: call recover() first");
        self.ensure_started(t);
        let now = self.clocks.clock(t);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            let mut ctx = ThreadCtx { m: self, t, now };
            let more = step(&mut ctx);
            (more, ctx.now)
        }));
        match caught {
            Ok((more, end)) => {
                self.clocks.advance(t, end);
                if more {
                    StepOutcome::Continue
                } else {
                    self.clocks.finish(t);
                    StepOutcome::Finished
                }
            }
            Err(payload) => {
                if payload.downcast_ref::<SimCrash>().is_some() {
                    self.perform_crash();
                    StepOutcome::Crashed
                } else {
                    panic::resume_unwind(payload)
                }
            }
        }
    }

    /// A deep copy of the machine's complete state, cheap where it
    /// matters: the PM image is captured copy-on-write (pointer-table
    /// copy; see [`MemoryImage::snapshot`](asap_pmem::MemoryImage::snapshot)), everything volatile is flat
    /// slab/SoA vectors that `memcpy`.
    ///
    /// Call at a step boundary (not from inside a step closure). Workload
    /// state living outside the machine — step closures, RNGs, per-thread
    /// op budgets — is the caller's to capture alongside.
    ///
    /// # Panics
    ///
    /// Panics if the machine is in the crashed state (snapshot the
    /// pre-crash machine instead; the crash is re-injectable).
    pub fn snapshot(&self) -> MachineSnapshot {
        assert!(!self.crashed, "snapshot of a crashed machine");
        MachineSnapshot {
            cfg: self.cfg,
            hw: self.hw.clone(),
            scheme: self.scheme.clone_box(),
            clocks: self.clocks.clone(),
            locks: self.locks.clone(),
            nest: self.nest.clone(),
            local_rid: self.local_rid.clone(),
            cur_rid: self.cur_rid.clone(),
            region_start: self.region_start.clone(),
            started: self.started.clone(),
            tracker: self.tracker.clone(),
            pm_write_ops: self.pm_write_ops,
            crash_armed: self.crash_armed,
            tx_count: self.tx_count,
        }
    }

    /// Rewinds the machine to `snap`, byte-for-byte: a subsequent run is
    /// indistinguishable — stats, traces, telemetry, outcomes — from one
    /// that never forked. Reuses this machine's existing allocations
    /// (`clone_from` down the whole ownership tree), so restore cost is
    /// O(state actually differing), not O(heap).
    ///
    /// # Panics
    ///
    /// Panics if `snap` came from a machine with a different
    /// configuration.
    pub fn restore(&mut self, snap: &MachineSnapshot) {
        assert_eq!(
            self.cfg.threads, snap.cfg.threads,
            "snapshot from a differently-sized machine"
        );
        assert_eq!(
            self.cfg.scheme, snap.cfg.scheme,
            "snapshot from a different scheme"
        );
        self.cfg = snap.cfg;
        self.hw.clone_from(&snap.hw);
        self.scheme = snap.scheme.clone_box();
        self.clocks.clone_from(&snap.clocks);
        self.locks.clone_from(&snap.locks);
        self.nest.clone_from(&snap.nest);
        self.local_rid.clone_from(&snap.local_rid);
        self.cur_rid.clone_from(&snap.cur_rid);
        self.region_start.clone_from(&snap.region_start);
        self.started.clone_from(&snap.started);
        self.tracker.clone_from(&snap.tracker);
        self.pm_write_ops = snap.pm_write_ops;
        self.crash_armed = snap.crash_armed;
        self.crashed = false;
        self.tx_count = snap.tx_count;
    }

    /// Persistent-line writes performed so far (the crash-injection
    /// coordinate: [`arm_crash_after_additional`]
    /// (Self::arm_crash_after_additional) counts from this value).
    pub fn pm_write_ops(&self) -> u64 {
        self.pm_write_ops
    }

    fn settle(&mut self, t: usize, caught: Result<Cycle, Box<dyn Any + Send>>) -> RunOutcome {
        match caught {
            Ok(end) => {
                self.clocks.advance(t, end);
                RunOutcome::Completed
            }
            Err(payload) => {
                if payload.downcast_ref::<SimCrash>().is_some() {
                    self.perform_crash();
                    RunOutcome::Crashed
                } else {
                    panic::resume_unwind(payload)
                }
            }
        }
    }

    /// Simulates an immediate power failure.
    pub fn crash_now(&mut self) {
        self.perform_crash();
    }

    /// Arms (or re-arms) a power failure `writes` persistent writes from
    /// now — useful to exclude a setup phase from the crash budget.
    pub fn arm_crash_after_additional(&mut self, writes: u64) {
        self.crash_armed = Some(self.pm_write_ops + writes);
    }

    /// Advances every thread's clock to the current makespan — a barrier,
    /// used after a single-threaded setup phase so worker threads do not
    /// start in the virtual past of the setup thread.
    pub fn sync_thread_clocks(&mut self) {
        let t = self.clocks.makespan();
        for i in 0..self.clocks.len() {
            self.clocks.advance(i, t);
        }
    }

    /// Discards the samples of one statistics summary (e.g. exclude setup
    /// regions from `region.cycles`).
    pub fn reset_summary(&mut self, name: &str) {
        self.hw.stats.reset_summary(name);
    }

    fn perform_crash(&mut self) {
        assert!(!self.crashed, "already crashed");
        self.hw.stats.bump("crash.count");
        self.hw
            .trace
            .emit(self.clocks.makespan(), 0, TraceEvent::CrashInjected);
        // Persistence domain flush: scheme structures, then the WPQs.
        self.scheme.on_crash(&mut self.hw);
        let mut image = std::mem::take(&mut self.hw.image);
        self.hw.mem.flush_to_image(&mut image);
        self.hw.image = image;
        self.hw.caches.invalidate_all();
        // In-flight regions died with the power: the commit auditor must
        // not expect them to commit after recovery.
        self.hw.lifecycle.note_crash();
        self.crashed = true;
    }

    /// Recovers after a crash: replays/undoes logs per the scheme, resets
    /// volatile state, and verifies the shadow when tracking is enabled.
    ///
    /// # Panics
    ///
    /// Panics if the machine has not crashed, or if verification fails.
    pub fn recover(&mut self) -> RecoveryReport {
        assert!(self.crashed, "recover() without a crash");
        let report = self.scheme.recover(&mut self.hw);
        if let Some(tracker) = &self.tracker {
            let un: BTreeSet<Rid> = report.uncommitted.iter().copied().collect();
            if let Err(e) = tracker.verify(&self.hw.image, &un) {
                panic!("crash-consistency violation: {e}");
            }
        }
        if let Some(tracker) = &mut self.tracker {
            let un: BTreeSet<Rid> = report.uncommitted.iter().copied().collect();
            tracker.discard(&un);
        }
        // Reboot volatile state; the image (and heap metadata) survive.
        self.scheme = scheme::build(self.cfg.scheme, &self.cfg.system);
        for s in &mut self.started {
            *s = false;
        }
        for n in &mut self.nest {
            *n = 0;
        }
        for c in &mut self.cur_rid {
            *c = None;
        }
        self.locks = (0..self.cfg.num_locks)
            .map(|_| VirtualLock::new(self.cfg.system.lock_cost))
            .collect();
        self.crashed = false;
        self.crash_armed = None;
        report
    }

    /// Waits for all asynchronous work (region commits, WPQ drain) to
    /// finish. Returns the fully-drained makespan.
    pub fn drain(&mut self) -> Cycle {
        let now = self.clocks.makespan();
        let end = self.scheme.drain(&mut self.hw, now);
        self.hw.stats.add("run.drain_cycles", end - now);
        end
    }

    /// Migrates thread `t` to a different core (§5.7 context switch).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn context_switch(&mut self, t: usize, core: usize) {
        assert!(core < self.cfg.system.cores as usize, "no such core");
        self.ensure_started(t);
        let now = self.clocks.clock(t);
        let now = self.scheme.on_context_switch(&mut self.hw, t, now);
        self.hw.thread_core[t] = core;
        self.clocks.advance(t, now);
        self.hw.stats.bump("machine.context_switch");
    }

    /// Architectural read of a `u64` (debug/verification — no timing).
    pub fn debug_read_u64(&mut self, addr: PmAddr) -> u64 {
        let mut b = [0u8; 8];
        self.debug_read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Architectural read of a byte span (debug/verification — no timing).
    pub fn debug_read(&mut self, addr: PmAddr, buf: &mut [u8]) {
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr.offset(pos as u64);
            let line = a.line();
            let off = a.offset_in_line() as usize;
            let n = (buf.len() - pos).min(LINE_BYTES as usize - off);
            let data = self.hw.line_value(line);
            buf[pos..pos + n].copy_from_slice(&data[off..off + n]);
            pos += n;
        }
    }

    /// Merged machine + memory-system statistics, with the cache
    /// hierarchy's eviction counters folded in as `machine.evict.*`.
    pub fn stats(&self) -> Stats {
        let mut s = self.hw.stats.clone();
        s.merge(self.hw.mem.stats());
        let ev = self.hw.caches.eviction_counts();
        s.add("machine.evict.total", ev.total);
        s.add("machine.evict.forced", ev.forced);
        s.add("machine.evict.dirty", ev.dirty);
        s
    }

    /// Merged statistics as a JSON report (counters + histograms).
    pub fn stats_json(&self) -> String {
        self.stats().to_json()
    }

    /// The CPU-side event trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &Trace {
        &self.hw.trace
    }

    /// The telemetry time series (empty unless telemetry was enabled).
    pub fn timeseries(&self) -> &TimeSeries {
        self.hw.telemetry()
    }

    /// The region-lifecycle log (records populated only when telemetry was
    /// enabled; the commit-order auditor inside runs regardless).
    pub fn lifecycle(&self) -> &RegionLog {
        &self.hw.lifecycle
    }

    /// The whole run as Chrome trace-event JSON: CPU thread lanes under
    /// pid 0, memory-system persist channels under pid 1. Open the output
    /// in Perfetto (`ui.perfetto.dev`); one cycle renders as 1 µs.
    pub fn trace_chrome_json(&self) -> String {
        chrome_trace_json(&[
            TracePart {
                name: "cpu",
                pid: 0,
                trace: &self.hw.trace,
            },
            TracePart {
                name: "pm",
                pid: 1,
                trace: self.hw.mem.trace(),
            },
        ])
    }

    /// The largest thread clock (execution makespan).
    pub fn makespan(&self) -> Cycle {
        self.clocks.makespan()
    }

    /// Transactions completed (workloads call [`ThreadCtx::complete_tx`]).
    pub fn tx_count(&self) -> u64 {
        self.tx_count
    }

    /// Transactions per kilocycle of makespan.
    pub fn throughput(&self) -> f64 {
        let c = self.makespan().raw();
        if c == 0 {
            0.0
        } else {
            self.tx_count as f64 * 1000.0 / c as f64
        }
    }

    /// Total 64-byte writes that reached the PM media.
    pub fn pm_write_traffic(&self) -> u64 {
        self.hw.mem.stats().get("pm.write.total")
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Whether the machine is in the crashed state.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Direct access to the hardware (tests and examples).
    pub fn hw(&self) -> &Hw {
        &self.hw
    }

    /// Mutable access to the hardware (tests).
    pub fn hw_mut(&mut self) -> &mut Hw {
        &mut self.hw
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("scheme", &self.cfg.scheme)
            .field("threads", &self.cfg.threads)
            .field("makespan", &self.makespan())
            .field("crashed", &self.crashed)
            .finish()
    }
}

/// A thread's handle onto the machine during one step.
pub struct ThreadCtx<'m> {
    m: &'m mut Machine,
    t: usize,
    now: Cycle,
}

impl ThreadCtx<'_> {
    /// This thread's id.
    pub fn thread(&self) -> usize {
        self.t
    }

    /// This thread's local clock.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Whether the thread is inside an atomic region.
    pub fn in_region(&self) -> bool {
        self.m.nest[self.t] > 0
    }

    /// Burns `ops` compute operations' worth of cycles.
    pub fn compute(&mut self, ops: u64) {
        self.now += ops * self.m.cfg.system.compute_cost;
    }

    /// Marks one workload transaction as complete (throughput metric).
    pub fn complete_tx(&mut self) {
        self.m.tx_count += 1;
        self.m.hw.stats.bump("tx.completed");
    }

    /// `asap_begin`: starts (or nests into) an atomic region.
    pub fn begin_region(&mut self) {
        let t = self.t;
        self.m.nest[t] += 1;
        if self.m.nest[t] > 1 {
            self.now += 1; // flattened nested begin: a counter bump
            return;
        }
        self.m.local_rid[t] += 1;
        let rid = Rid::new(t as u32, self.m.local_rid[t]);
        self.m.cur_rid[t] = Some(rid);
        self.m.region_start[t] = self.now;
        self.m.hw.stats.bump("region.begun");
        self.m.hw.reset_region_stalls(t);
        self.m.hw.trace.emit(
            self.now,
            t as u32,
            TraceEvent::RegionBegin {
                rid: (rid.thread(), rid.local()),
            },
        );
        if let Some(tr) = &mut self.m.tracker {
            tr.begin(rid);
        }
        self.m.hw.lifecycle.begin(rid, self.now);
        let m = &mut *self.m;
        self.now = m.scheme.on_begin(&mut m.hw, t, rid, self.now);
    }

    /// `asap_end`: ends the current region (commit per the scheme).
    ///
    /// # Panics
    ///
    /// Panics if no region is active.
    pub fn end_region(&mut self) {
        let t = self.t;
        assert!(self.m.nest[t] > 0, "end_region without begin_region");
        self.m.nest[t] -= 1;
        if self.m.nest[t] > 0 {
            self.now += 1;
            return;
        }
        let rid = self.m.cur_rid[t].expect("region id set at begin");
        let m = &mut *self.m;
        self.now = m.scheme.on_end(&mut m.hw, t, rid, self.now);
        m.hw.lifecycle.end(rid, self.now);
        // Region end is a persist-order boundary for synchronous schemes
        // (durable when `on_end` returns) and the commit-request edge for
        // asynchronous ones — a candidate either way.
        m.note_crash_candidate();
        if !m.cfg.scheme.commits_asynchronously() {
            // Synchronous schemes are durable when on_end returns: the
            // region is persist-ordered and committed at this instant.
            // ASAP records these from its commit cascade instead.
            m.hw.lifecycle.ordered(rid, self.now);
            m.hw.lifecycle.commit(rid, self.now);
        }
        if let Some(tr) = &mut m.tracker {
            let (lines, deps) = tr.end(rid);
            m.hw.stats.sample("region.lines_written", lines as u64);
            m.hw.stats.sample("region.deps", deps as u64);
        }
        m.hw.trace.emit(
            self.now,
            t as u32,
            TraceEvent::RegionCommit {
                rid: (rid.thread(), rid.local()),
            },
        );
        let dur = self.now - m.region_start[t];
        // Per-region cycle breakdown: the four stall classes plus compute
        // sum exactly to the region's duration.
        let stalls = m.hw.take_region_stalls(t);
        let stalled: u64 = stalls.iter().sum();
        for class in StallClass::all() {
            let name = match class {
                StallClass::LogFull => "region.stall.log_full",
                StallClass::WpqBackpressure => "region.stall.wpq_backpressure",
                StallClass::DependencyWait => "region.stall.dependency_wait",
                StallClass::CommitWait => "region.stall.commit_wait",
            };
            m.hw.stats.sample(name, stalls[class.index()]);
        }
        m.hw.stats
            .sample("region.compute", dur.saturating_sub(stalled));
        m.hw.stats.sample("region.cycles", dur);
        m.hw.stats.bump("region.count");
    }

    /// `asap_fence` (§5.2): blocks until this thread's last region (and
    /// transitively everything it depends on) has committed.
    pub fn fence(&mut self) {
        let t = self.t;
        let m = &mut *self.m;
        self.now = m.scheme.on_fence(&mut m.hw, t, self.now);
        if let Some(tr) = &mut self.m.tracker {
            tr.fence(t as u32);
        }
    }

    /// Acquires virtual lock `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn lock(&mut self, id: usize) {
        self.now = self.m.locks[id].acquire(self.now);
    }

    /// Releases virtual lock `id`.
    pub fn unlock(&mut self, id: usize) {
        self.m.locks[id].release(self.now);
    }

    /// Runs `f` as a lock-guarded atomic region, ordering the unlock and
    /// region end the way each scheme family does: asynchronous-commit
    /// schemes release the lock *before* `asap_end` (Fig. 6 — the region
    /// commits in the background, so the critical section never pays for
    /// persistence), synchronous ones release it only after the region is
    /// durable (the data must not be visible before it is recoverable).
    pub fn locked_region(&mut self, lock_id: usize, f: impl FnOnce(&mut Self)) {
        if self.m.cfg.scheme.commits_asynchronously() {
            self.lock(lock_id);
            self.begin_region();
            f(self);
            self.unlock(lock_id);
            self.end_region();
        } else {
            self.lock(lock_id);
            self.begin_region();
            f(self);
            self.end_region();
            self.unlock(lock_id);
        }
    }

    /// Allocates persistent memory mid-run (charged a small cost).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the heap is exhausted.
    pub fn pm_alloc(&mut self, len: u64) -> Result<PmAddr, AllocError> {
        self.now += 40; // allocator bookkeeping
        self.m.pm_alloc(len)
    }

    /// Frees persistent memory mid-run.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NotAllocated`] for a bad address.
    pub fn pm_free(&mut self, addr: PmAddr) -> Result<(), AllocError> {
        self.now += 20;
        self.m.pm_free(addr)
    }

    /// Reads `buf.len()` bytes from `addr`.
    pub fn read_bytes(&mut self, addr: PmAddr, buf: &mut [u8]) {
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr.offset(pos as u64);
            let line = a.line();
            let off = a.offset_in_line() as usize;
            let n = (buf.len() - pos).min(LINE_BYTES as usize - off);
            self.access_line(line, AccessKind::Load);
            let data = self.m.hw.caches.line(line).expect("filled").data;
            buf[pos..pos + n].copy_from_slice(&data[off..off + n]);
            pos += n;
        }
    }

    /// Reads a `u64` at `addr`.
    pub fn read_u64(&mut self, addr: PmAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes `data` at `addr`.
    pub fn write_bytes(&mut self, addr: PmAddr, data: &[u8]) {
        let mut pos = 0usize;
        while pos < data.len() {
            let a = addr.offset(pos as u64);
            let line = a.line();
            let off = a.offset_in_line() as usize;
            let n = (data.len() - pos).min(LINE_BYTES as usize - off);
            self.write_line_span(line, off, &data[pos..pos + n]);
            pos += n;
        }
    }

    /// Writes a `u64` at `addr`.
    pub fn write_u64(&mut self, addr: PmAddr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// One cache access with event pumping, eviction routing and latency.
    ///
    /// Returns `(persistent, hooked)`: the accessed line's post-access
    /// persistent bit, and whether an eviction hook ran (only then can the
    /// scheme have displaced `line` itself again). Store callers use the
    /// pair to skip re-resolving the line on the hit path.
    fn access_line(&mut self, line: LineAddr, kind: AccessKind) -> (bool, bool) {
        let m = &mut *self.m;
        m.pump(self.now);
        let access = m.hw.cache_access(self.t, line, kind);
        self.now += access.latency;
        let hooked = access.evicted.is_some();
        if let Some(e) = &access.evicted {
            m.hw.trace.emit(
                self.now,
                self.t as u32,
                TraceEvent::CacheEvict {
                    line: e.line.0,
                    dirty: e.state.dirty,
                },
            );
            m.scheme.on_evict(&mut m.hw, e, self.now);
        }
        // Region bookkeeping for persistent lines. Without an eviction hook
        // nothing can have touched the just-accessed line, so the bit
        // captured by the access itself is current.
        let persistent = if hooked {
            m.hw.caches.line(line).is_some_and(|s| s.pbit)
        } else {
            access.pbit
        };
        if persistent && m.nest[self.t] > 0 {
            let rid = m.cur_rid[self.t].expect("in region");
            if kind == AccessKind::Load {
                self.now = m.scheme.post_read(&mut m.hw, self.t, rid, line, self.now);
                if let Some(tr) = &mut m.tracker {
                    tr.read(rid, line);
                }
            }
        } else if persistent && kind == AccessKind::Store {
            m.hw.stats.bump("machine.nonregion_pm_write");
        }
        (persistent, hooked)
    }

    fn write_line_span(&mut self, line: LineAddr, off: usize, bytes: &[u8]) {
        let t = self.t;
        let (persistent, hooked) = self.access_line(line, AccessKind::Store);
        let m = &mut *self.m;
        let in_region = m.nest[t] > 0 && persistent;
        let rid = m.cur_rid[t];
        if in_region {
            let rid = rid.expect("in region");
            self.now = m.scheme.pre_write(&mut m.hw, t, rid, line, self.now);
        }
        // A scheme's own log stores may (rarely) have evicted the target
        // line from the small-cache configs: refill before mutating. Only
        // a hook (`pre_write` above, `on_evict` inside the access) can
        // have done that — the plain hit path skips the lookup.
        if (in_region || hooked) && m.hw.caches.line(line).is_none() {
            let access = m.hw.cache_access(t, line, AccessKind::Store);
            self.now += access.latency;
            if let Some(e) = &access.evicted {
                m.scheme.on_evict(&mut m.hw, e, self.now);
            }
        }
        {
            let st = m.hw.caches.line_mut(line).expect("filled");
            st.data[off..off + bytes.len()].copy_from_slice(bytes);
            st.dirty = true;
        }
        if in_region {
            let rid = rid.expect("in region");
            self.now = m.scheme.post_write(&mut m.hw, t, rid, line, self.now);
            if let Some(tr) = &mut m.tracker {
                let data = m.hw.line_value(line);
                tr.write(rid, line, data);
            }
        }
        if persistent {
            m.pm_write_ops += 1;
            if m.crash_armed.is_some_and(|n| m.pm_write_ops >= n) {
                m.crash_armed = None;
                panic::panic_any(SimCrash);
            }
        }
    }
}

impl std::fmt::Debug for ThreadCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("thread", &self.t)
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(kind: SchemeKind) -> Machine {
        Machine::new(MachineConfig::small(kind, 2).with_tracking())
    }

    fn all_kinds() -> Vec<SchemeKind> {
        vec![
            SchemeKind::NoPersist,
            SchemeKind::SwUndo,
            SchemeKind::SwDpoOnly,
            SchemeKind::HwUndo,
            SchemeKind::HwRedo,
            SchemeKind::Asap,
        ]
    }

    #[test]
    fn single_region_updates_data_under_every_scheme() {
        for kind in all_kinds() {
            let mut m = Machine::new(MachineConfig::small(kind, 1));
            let a = m.pm_alloc(64).unwrap();
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                ctx.write_u64(a, 42);
                let v = ctx.read_u64(a);
                assert_eq!(v, 42);
                ctx.end_region();
                ctx.complete_tx();
            });
            m.drain();
            assert_eq!(m.debug_read_u64(a), 42, "{kind}");
            assert_eq!(m.tx_count(), 1);
            assert!(m.makespan() > Cycle::ZERO);
        }
    }

    #[test]
    fn data_is_durable_in_pm_after_drain() {
        for kind in [
            SchemeKind::SwUndo,
            SchemeKind::HwUndo,
            SchemeKind::HwRedo,
            SchemeKind::Asap,
        ] {
            let mut m = Machine::new(MachineConfig::small(kind, 1));
            let a = m.pm_alloc(8).unwrap();
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                ctx.write_u64(a, 7);
                ctx.end_region();
                ctx.fence();
            });
            m.drain();
            // After drain + fence, the PM image itself (not just caches)
            // must hold the value or its recoverable log.
            m.crash_now();
            let report = m.recover();
            assert!(report.uncommitted.is_empty(), "{kind}: nothing uncommitted");
            assert_eq!(m.debug_read_u64(a), 7, "{kind}");
        }
    }

    #[test]
    fn nested_regions_flatten() {
        let mut m = machine(SchemeKind::Asap);
        let a = m.pm_alloc(8).unwrap();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            ctx.begin_region();
            ctx.write_u64(a, 1);
            ctx.end_region();
            assert!(ctx.in_region());
            ctx.write_u64(a, 2);
            ctx.end_region();
            assert!(!ctx.in_region());
        });
        m.drain();
        assert_eq!(m.debug_read_u64(a), 2);
        let s = m.stats();
        assert_eq!(s.get("region.count"), 1, "nested regions flattened");
    }

    #[test]
    #[should_panic(expected = "end_region without begin_region")]
    fn unbalanced_end_panics() {
        let mut m = machine(SchemeKind::NoPersist);
        m.run_thread(0, |ctx| ctx.end_region());
    }

    #[test]
    fn two_threads_interleave_by_clock() {
        let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 2));
        let a = m.pm_alloc(8).unwrap();
        let mut steps: Vec<StepFn> = vec![
            Box::new(move |ctx| {
                ctx.locked_region(0, |ctx| {
                    let v = ctx.read_u64(a);
                    ctx.write_u64(a, v + 1);
                });
                ctx.complete_tx();
                false
            }),
            Box::new(move |ctx| {
                ctx.locked_region(0, |ctx| {
                    let v = ctx.read_u64(a);
                    ctx.write_u64(a, v + 10);
                });
                ctx.complete_tx();
                false
            }),
        ];
        assert_eq!(m.run(&mut steps), RunOutcome::Completed);
        m.drain();
        assert_eq!(m.debug_read_u64(a), 11);
        assert_eq!(m.tx_count(), 2);
    }

    #[test]
    fn crash_injection_fires_and_recovery_restores_consistency() {
        for kind in [
            SchemeKind::SwUndo,
            SchemeKind::HwUndo,
            SchemeKind::HwRedo,
            SchemeKind::Asap,
        ] {
            let mut m = Machine::new(
                MachineConfig::small(kind, 1)
                    .with_tracking()
                    .with_crash_after(5),
            );
            let a = m.pm_alloc(64 * 8).unwrap();
            let outcome = m.run_thread(0, |ctx| {
                for i in 0..16u64 {
                    ctx.begin_region();
                    ctx.write_u64(a.offset(i % 8 * 64), i + 1);
                    ctx.end_region();
                }
            });
            assert_eq!(outcome, RunOutcome::Crashed, "{kind}");
            assert!(m.is_crashed());
            let _report = m.recover(); // panics on inconsistency
            assert!(!m.is_crashed());
        }
    }

    #[test]
    fn fence_makes_regions_durable_for_asap() {
        let mut m = machine(SchemeKind::Asap);
        let a = m.pm_alloc(8).unwrap();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            ctx.write_u64(a, 99);
            ctx.end_region();
            ctx.fence(); // §5.2 synchronous point
        });
        m.crash_now();
        let report = m.recover();
        assert!(report.uncommitted.is_empty());
        assert_eq!(m.debug_read_u64(a), 99);
    }

    #[test]
    fn asap_region_latency_is_far_below_sync_schemes() {
        let mut cycles = std::collections::BTreeMap::new();
        for kind in [SchemeKind::Asap, SchemeKind::HwUndo, SchemeKind::SwUndo] {
            let mut m = Machine::new(MachineConfig::small(kind, 1));
            let a = m.pm_alloc(64 * 32).unwrap();
            m.run_thread(0, |ctx| {
                for i in 0..64u64 {
                    ctx.begin_region();
                    for j in 0..4 {
                        ctx.write_u64(a.offset((i * 4 + j) % 32 * 64), i);
                    }
                    ctx.end_region();
                }
            });
            m.drain();
            let s = m.stats();
            cycles.insert(kind.name(), s.summary("region.cycles").unwrap().mean());
        }
        assert!(
            cycles["asap"] < cycles["hw-undo"],
            "async commit must beat sync commit: {cycles:?}"
        );
        assert!(
            cycles["hw-undo"] < cycles["sw"],
            "hardware must beat software: {cycles:?}"
        );
    }

    #[test]
    fn context_switch_preserves_correctness() {
        let mut m = machine(SchemeKind::Asap);
        let a = m.pm_alloc(8).unwrap();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            ctx.write_u64(a, 5);
            ctx.end_region();
        });
        m.context_switch(0, 2);
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            ctx.write_u64(a, 6);
            ctx.end_region();
        });
        m.drain();
        assert_eq!(m.debug_read_u64(a), 6);
        assert_eq!(m.stats().get("machine.context_switch"), 1);
    }

    #[test]
    fn context_switch_mid_region_continues_safely() {
        // §5.7: the suspended thread's CL entry is cleared after its
        // persist operations complete; once rescheduled (on a different
        // core) the In Progress region continues and commits normally.
        let mut m = machine(SchemeKind::Asap);
        let a = m.pm_alloc(64 * 4).unwrap();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            ctx.write_u64(a, 1);
            ctx.write_u64(a.offset(64), 2);
            // Deliberately leave the region open across steps.
        });
        m.context_switch(0, 3);
        m.run_thread(0, |ctx| {
            assert!(ctx.in_region());
            ctx.write_u64(a.offset(128), 3);
            ctx.end_region();
            ctx.fence();
        });
        m.crash_now();
        let r = m.recover();
        assert!(r.uncommitted.is_empty());
        assert_eq!(m.debug_read_u64(a), 1);
        assert_eq!(m.debug_read_u64(a.offset(64)), 2);
        assert_eq!(m.debug_read_u64(a.offset(128)), 3);
    }

    #[test]
    fn context_switch_mid_region_then_no_more_writes() {
        let mut m = machine(SchemeKind::Asap);
        let a = m.pm_alloc(64).unwrap();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            ctx.write_u64(a, 9);
        });
        m.context_switch(0, 2);
        m.run_thread(0, |ctx| {
            ctx.end_region(); // no writes on the new core
            ctx.fence();
        });
        m.crash_now();
        let r = m.recover();
        assert!(r.uncommitted.is_empty());
        assert_eq!(m.debug_read_u64(a), 9);
    }

    #[test]
    fn throughput_counts_transactions() {
        let mut m = machine(SchemeKind::NoPersist);
        let a = m.pm_alloc(8).unwrap();
        m.run_thread(0, |ctx| {
            for _ in 0..10 {
                ctx.begin_region();
                ctx.write_u64(a, 1);
                ctx.end_region();
                ctx.complete_tx();
            }
        });
        assert_eq!(m.tx_count(), 10);
        assert!(m.throughput() > 0.0);
    }

    #[test]
    fn tiny_log_stalls_but_stays_correct() {
        // Room for just four records per thread: regions must wait for
        // older commits to reclaim log space (§4.4 overflow handling).
        let mut m = Machine::new(
            MachineConfig::small(SchemeKind::Asap, 1)
                .with_tracking()
                .with_log_bytes(4 * 8 * 64),
        );
        let a = m.pm_alloc(64 * 64).unwrap();
        m.run_thread(0, |ctx| {
            for i in 0..32u64 {
                ctx.begin_region();
                for j in 0..8 {
                    ctx.write_u64(a.offset((i * 8 + j) % 64 * 64), i);
                }
                ctx.end_region();
            }
        });
        m.drain();
        assert!(
            m.stats().get("asap.stall.log_full") > 0,
            "the tiny log stalled"
        );
        m.crash_now();
        let r = m.recover();
        assert!(r.uncommitted.is_empty(), "drained before crash");
    }

    #[test]
    fn pm_alloc_marks_pages_persistent() {
        let mut m = machine(SchemeKind::Asap);
        let a = m.pm_alloc(128).unwrap();
        assert!(m.hw().image.is_persistent(a));
        m.pm_free(a).unwrap();
    }

    #[test]
    fn byte_spans_cross_cache_lines() {
        let mut m = machine(SchemeKind::Asap);
        let a = m.pm_alloc(64 * 4).unwrap();
        // A 100-byte pattern starting 30 bytes into a line spans 3 lines.
        let pattern: Vec<u8> = (0..100u32).map(|i| (i * 7 % 251) as u8 + 1).collect();
        let start = a.offset(30);
        let p = pattern.clone();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            ctx.write_bytes(start, &p);
            ctx.end_region();
            let mut buf = vec![0u8; 100];
            ctx.read_bytes(start, &mut buf);
            assert_eq!(buf, p);
        });
        m.drain();
        let mut buf = vec![0u8; 100];
        m.debug_read(start, &mut buf);
        assert_eq!(buf, pattern);
        // The crash path respects the span too.
        m.crash_now();
        m.recover();
        let mut buf = vec![0u8; 100];
        m.debug_read(start, &mut buf);
        assert_eq!(buf, pattern);
    }

    #[test]
    fn clock_is_monotone_across_ops() {
        let mut m = machine(SchemeKind::Asap);
        let a = m.pm_alloc(64 * 2).unwrap();
        m.run_thread(0, |ctx| {
            let t0 = ctx.now();
            ctx.compute(10);
            let t1 = ctx.now();
            assert_eq!(t1 - t0, 10, "compute_cost is 1 in the small config");
            ctx.begin_region();
            let t2 = ctx.now();
            assert!(t2 >= t1);
            ctx.write_u64(a, 1);
            let t3 = ctx.now();
            assert!(t3 > t2, "a write costs time");
            let _ = ctx.read_u64(a.offset(64));
            let t4 = ctx.now();
            assert!(t4 > t3, "a read costs time");
            ctx.end_region();
            assert!(ctx.now() >= t4);
        });
    }

    #[test]
    fn dram_heap_is_separate_from_pm_heap() {
        let mut m = machine(SchemeKind::Asap);
        let d = m.dram_alloc(64).unwrap();
        let p = m.pm_alloc(64).unwrap();
        assert!(!d.is_pm_region());
        assert!(p.is_pm_region());
        assert!(!m.hw().image.is_persistent(d));
    }

    /// A driver-style workload: each thread runs `per_thread` one-region
    /// steps against a shared array, with the loop counters held outside
    /// the closures (as the crash-sweep driver does) so they can be
    /// captured alongside a machine snapshot.
    fn counter_steps(a: PmAddr, remaining: &[std::rc::Rc<std::cell::Cell<u64>>]) -> Vec<StepFn> {
        remaining
            .iter()
            .map(|rem| {
                let rem = std::rc::Rc::clone(rem);
                Box::new(move |ctx: &mut ThreadCtx<'_>| {
                    let left = rem.get();
                    if left == 0 {
                        return false;
                    }
                    rem.set(left - 1);
                    let t = ctx.thread() as u64;
                    ctx.locked_region(0, |ctx| {
                        let slot = a.offset((left % 8) * 64);
                        let v = ctx.read_u64(slot);
                        ctx.write_u64(slot, v + t + 1);
                    });
                    ctx.complete_tx();
                    left > 1
                }) as StepFn
            })
            .collect()
    }

    fn fingerprint(m: &Machine) -> (String, u64, u64, Cycle) {
        (m.stats_json(), m.tx_count(), m.pm_write_ops(), m.makespan())
    }

    #[test]
    fn snapshot_restore_continue_is_bit_identical() {
        let mk = || {
            let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 2).with_tracking());
            let a = m.pm_alloc(64 * 8).unwrap();
            m.drain();
            m.sync_thread_clocks();
            (m, a)
        };
        // Reference: uninterrupted run.
        let (mut reference, a) = mk();
        let rem: Vec<_> = (0..2)
            .map(|_| std::rc::Rc::new(std::cell::Cell::new(6u64)))
            .collect();
        let mut steps = counter_steps(a, &rem);
        assert_eq!(reference.run(&mut steps), RunOutcome::Completed);
        reference.drain();
        let want = fingerprint(&reference);

        // Forked: drive the primitives, snapshot mid-run, finish, then
        // restore and finish again. Both completions must match the
        // uninterrupted reference exactly.
        let (mut m, a2) = mk();
        assert_eq!(a2, a, "deterministic allocation");
        let rem: Vec<_> = (0..2)
            .map(|_| std::rc::Rc::new(std::cell::Cell::new(6u64)))
            .collect();
        let mut steps = counter_steps(a2, &rem);
        m.begin_schedule();
        let mut taken = None;
        let mut stepped = 0u32;
        while let Some(t) = m.next_runnable() {
            assert_ne!(m.step_thread(t, &mut steps[t]), StepOutcome::Crashed);
            stepped += 1;
            if stepped == 3 {
                // Capture the machine and the driver-side counters.
                taken = Some((
                    m.snapshot(),
                    rem.iter().map(|r| r.get()).collect::<Vec<_>>(),
                ));
            }
        }
        m.drain();
        assert_eq!(fingerprint(&m), want, "primitive-driven run == run()");

        let (snap, saved_rem) = taken.expect("snapshot taken");
        m.restore(&snap);
        for (r, v) in rem.iter().zip(&saved_rem) {
            r.set(*v);
        }
        let mut steps = counter_steps(a2, &rem);
        assert_eq!(m.run(&mut steps), RunOutcome::Completed);
        m.drain();
        assert_eq!(fingerprint(&m), want, "restored-and-continued run");
    }

    #[test]
    fn snapshot_crash_fork_matches_legacy_crash_after() {
        for kind in [SchemeKind::HwUndo, SchemeKind::Asap] {
            let crash_at = 9u64;
            // Legacy: crash armed from construction.
            let mut legacy = Machine::new(
                MachineConfig::small(kind, 2)
                    .with_tracking()
                    .with_crash_after(crash_at),
            );
            let a = legacy.pm_alloc(64 * 8).unwrap();
            legacy.drain();
            legacy.sync_thread_clocks();
            let rem: Vec<_> = (0..2)
                .map(|_| std::rc::Rc::new(std::cell::Cell::new(6u64)))
                .collect();
            let mut steps = counter_steps(a, &rem);
            assert_eq!(legacy.run(&mut steps), RunOutcome::Crashed);
            let legacy_report = legacy.recover();
            let legacy_fp = fingerprint(&legacy);

            // Fork: run unarmed to a snapshot before the crash point, then
            // restore, arm the remaining writes, and continue.
            let mut m = Machine::new(MachineConfig::small(kind, 2).with_tracking());
            let a2 = m.pm_alloc(64 * 8).unwrap();
            assert_eq!(a2, a);
            m.drain();
            m.sync_thread_clocks();
            let rem: Vec<_> = (0..2)
                .map(|_| std::rc::Rc::new(std::cell::Cell::new(6u64)))
                .collect();
            let mut steps = counter_steps(a, &rem);
            m.begin_schedule();
            let mut taken = None;
            while let Some(t) = m.next_runnable() {
                assert_ne!(m.step_thread(t, &mut steps[t]), StepOutcome::Crashed);
                if taken.is_none() && m.pm_write_ops() >= 2 {
                    assert!(m.pm_write_ops() < crash_at, "snapshot precedes crash");
                    taken = Some((
                        m.snapshot(),
                        rem.iter().map(|r| r.get()).collect::<Vec<_>>(),
                    ));
                }
            }
            let (snap, saved_rem) = taken.expect("snapshot taken before crash point");
            m.restore(&snap);
            for (r, v) in rem.iter().zip(&saved_rem) {
                r.set(*v);
            }
            m.arm_crash_after_additional(crash_at - snap.pm_write_ops());
            let mut steps = counter_steps(a, &rem);
            assert_eq!(m.run(&mut steps), RunOutcome::Crashed, "{kind}");
            let report = m.recover();
            assert_eq!(report.uncommitted, legacy_report.uncommitted, "{kind}");
            assert_eq!(fingerprint(&m), legacy_fp, "{kind}: fork == legacy");
        }
    }

    #[test]
    fn dram_writes_are_not_tracked_or_logged() {
        let mut m = machine(SchemeKind::Asap);
        let d = m.dram_alloc(64).unwrap();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            ctx.write_u64(d, 123);
            assert_eq!(ctx.read_u64(d), 123);
            ctx.end_region();
        });
        m.drain();
        assert_eq!(m.stats().get("asap.lpo"), 0, "no LPO for DRAM writes");
    }
}
