//! Crash-dump serialization and the recovery procedures (§5.5).
//!
//! On power failure the persistence domain is flushed: the machine flushes
//! every WPQ, and each scheme dumps its metadata (Dependence List, LH-WPQ
//! table, per-thread anchors) into the reserved dump area at the bottom of
//! PM. Recovery parses the dump, walks each uncommitted region's record
//! chain (newest record first, via each header's `prev` pointer) and
//! restores old values — in an order derived from the dependence DAG so
//! that dependents are undone before the regions they depend on.

use std::collections::{BTreeMap, BTreeSet};

use asap_mem::Rid;
use asap_pmem::{MemoryImage, PmAddr};

use crate::logbuf::RecordHeader;
use crate::scheme::asap::structs::DepEntry;

// ---------------------------------------------------------------------------
// Dump area framing
// ---------------------------------------------------------------------------

const DUMP_MAGIC: u32 = 0x4153_4450; // "ASDP"

/// Writes length-prefixed `sections` into the dump area at `base`.
pub fn write_dump(image: &mut MemoryImage, base: PmAddr, sections: &[&[u8]]) {
    let mut pos = base;
    image.write(pos, &DUMP_MAGIC.to_le_bytes());
    pos = pos.offset(4);
    image.write(pos, &(sections.len() as u32).to_le_bytes());
    pos = pos.offset(4);
    for s in sections {
        image.write(pos, &(s.len() as u64).to_le_bytes());
        pos = pos.offset(8);
        image.write(pos, s);
        pos = pos.offset(s.len() as u64);
    }
}

/// Reads back the sections written by [`write_dump`]; `None` if the dump
/// area holds no dump.
pub fn read_dump(image: &MemoryImage, base: PmAddr) -> Option<Vec<Vec<u8>>> {
    let mut magic = [0u8; 4];
    image.read(base, &mut magic);
    if u32::from_le_bytes(magic) != DUMP_MAGIC {
        return None;
    }
    let mut pos = base.offset(4);
    let mut nb = [0u8; 4];
    image.read(pos, &mut nb);
    pos = pos.offset(4);
    let n = u32::from_le_bytes(nb) as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut lb = [0u8; 8];
        image.read(pos, &mut lb);
        pos = pos.offset(8);
        let len = u64::from_le_bytes(lb) as usize;
        let mut s = vec![0u8; len];
        image.read(pos, &mut s);
        pos = pos.offset(len as u64);
        out.push(s);
    }
    Some(out)
}

/// Erases the dump (after successful recovery).
pub fn clear_dump(image: &mut MemoryImage, base: PmAddr) {
    image.write(base, &[0u8; 8]);
}

// ---------------------------------------------------------------------------
// Record-chain traversal and log application
// ---------------------------------------------------------------------------

/// Collects a region's records from its final header backwards through the
/// `prev` chain. Returns `(header_addr, header)` pairs, newest first.
///
/// # Panics
///
/// Panics if a chained header fails to parse or belongs to a different
/// region — the persistence-domain flush guarantees chain integrity, so
/// this indicates a logging bug.
pub fn collect_records(
    image: &MemoryImage,
    last_header: PmAddr,
    rid: Rid,
) -> Vec<(PmAddr, RecordHeader)> {
    let mut out = Vec::new();
    let mut cursor = Some(last_header);
    while let Some(addr) = cursor {
        let h = RecordHeader::decode(&image.read_line(addr.line()))
            .unwrap_or_else(|| panic!("broken log chain for {rid} at {addr}"));
        assert_eq!(h.rid, rid, "log chain for {rid} crossed into {0}", h.rid);
        cursor = h.prev;
        out.push((addr, h));
    }
    out
}

/// Undo: restores the logged (old) values of every entry. Records are
/// applied newest-first and entries within a record in reverse, so a line
/// logged twice ends at its oldest value. Returns lines restored.
pub fn undo_region(image: &mut MemoryImage, records: &[(PmAddr, RecordHeader)]) -> u64 {
    let mut restored = 0;
    for (addr, h) in records {
        for i in (0..h.count as usize).rev() {
            if !h.entry_valid(i) {
                continue; // LPO never became durable: nothing to restore
            }
            let entry = RecordHeader::entry_addr(*addr, i);
            let value = image.read_line(entry.line());
            image.write_line(h.addrs[i], &value);
            restored += 1;
        }
    }
    restored
}

/// Redo: applies the logged (new) values oldest-first, so a line logged
/// twice ends at its newest value. Returns lines applied.
pub fn redo_region(image: &mut MemoryImage, records: &[(PmAddr, RecordHeader)]) -> u64 {
    let mut applied = 0;
    for (addr, h) in records.iter().rev() {
        for i in 0..h.count as usize {
            if !h.entry_valid(i) {
                continue; // LPO never became durable: nothing to apply
            }
            let entry = RecordHeader::entry_addr(*addr, i);
            let value = image.read_line(entry.line());
            image.write_line(h.addrs[i], &value);
            applied += 1;
        }
    }
    applied
}

/// Orders uncommitted regions for undo: every region precedes the regions
/// it depends on (dependents are rolled back first — §5.5's reverse
/// happens-before order). Deterministic; ties break by RID.
///
/// # Panics
///
/// Panics if the dependence graph has a cycle (impossible by construction:
/// dependencies always point to earlier regions).
pub fn undo_order(entries: &[DepEntry]) -> Vec<Rid> {
    let present: BTreeSet<Rid> = entries.iter().map(|e| e.rid).collect();
    // dependents[r] = how many present regions depend on r.
    let mut dependents: BTreeMap<Rid, usize> = present.iter().map(|r| (*r, 0)).collect();
    let deps_of: BTreeMap<Rid, Vec<Rid>> = entries
        .iter()
        .map(|e| {
            let ds: Vec<Rid> = e
                .deps
                .iter()
                .copied()
                .filter(|d| present.contains(d))
                .collect();
            (e.rid, ds)
        })
        .collect();
    for ds in deps_of.values() {
        for d in ds {
            *dependents.get_mut(d).expect("filtered to present") += 1;
        }
    }
    let mut ready: BTreeSet<Rid> = dependents
        .iter()
        .filter(|(_, n)| **n == 0)
        .map(|(r, _)| *r)
        .collect();
    let mut out = Vec::with_capacity(entries.len());
    while let Some(r) = ready.iter().next().copied() {
        ready.remove(&r);
        out.push(r);
        for d in &deps_of[&r] {
            let n = dependents.get_mut(d).unwrap();
            *n -= 1;
            if *n == 0 {
                ready.insert(*d);
            }
        }
    }
    assert_eq!(out.len(), entries.len(), "dependence cycle in crash dump");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_pmem::LineAddr;

    fn rid(t: u32, l: u64) -> Rid {
        Rid::new(t, l)
    }

    #[test]
    fn dump_roundtrip() {
        let mut image = MemoryImage::new();
        let base = PmAddr(0x8000_0000);
        write_dump(&mut image, base, &[b"hello", b"", b"world!"]);
        let sections = read_dump(&image, base).unwrap();
        assert_eq!(
            sections,
            vec![b"hello".to_vec(), Vec::new(), b"world!".to_vec()]
        );
        clear_dump(&mut image, base);
        assert!(read_dump(&image, base).is_none());
    }

    #[test]
    fn read_dump_without_dump_is_none() {
        let image = MemoryImage::new();
        assert!(read_dump(&image, PmAddr(0x8000_0000)).is_none());
    }

    /// Builds a two-record chain for one region directly in the image.
    fn build_chain(image: &mut MemoryImage, r: Rid) -> PmAddr {
        // Record 1 (older): logs line 100 value 0xAA, line 101 value 0xBB.
        let h1_addr = PmAddr(0x9000_0000);
        let mut h1 = RecordHeader::new(r, None);
        h1.push_entry(LineAddr(100));
        h1.push_entry(LineAddr(101));
        h1.sealed = true;
        image.write(h1_addr, &h1.encode());
        image.write_line(RecordHeader::entry_addr(h1_addr, 0).line(), &[0xAA; 64]);
        image.write_line(RecordHeader::entry_addr(h1_addr, 1).line(), &[0xBB; 64]);
        // Record 2 (newer): logs line 100 again, value 0xCC.
        let h2_addr = PmAddr(0x9000_2000);
        let mut h2 = RecordHeader::new(r, Some(h1_addr));
        h2.push_entry(LineAddr(100));
        image.write(h2_addr, &h2.encode());
        image.write_line(RecordHeader::entry_addr(h2_addr, 0).line(), &[0xCC; 64]);
        h2_addr
    }

    #[test]
    fn collect_walks_chain_newest_first() {
        let mut image = MemoryImage::new();
        let r = rid(0, 1);
        let last = build_chain(&mut image, r);
        let records = collect_records(&image, last, r);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].0, last);
        assert_eq!(records[0].1.count, 1);
        assert_eq!(records[1].1.count, 2);
    }

    #[test]
    #[should_panic(expected = "broken log chain")]
    fn collect_panics_on_garbage() {
        let image = MemoryImage::new();
        collect_records(&image, PmAddr(0x9000_0000), rid(0, 1));
    }

    #[test]
    fn undo_restores_oldest_value_for_relogged_line() {
        let mut image = MemoryImage::new();
        let r = rid(0, 1);
        let last = build_chain(&mut image, r);
        image.write_line(LineAddr(100), &[0xFF; 64]); // current (new) data
        image.write_line(LineAddr(101), &[0xFF; 64]);
        let records = collect_records(&image, last, r);
        let n = undo_region(&mut image, &records);
        assert_eq!(n, 3);
        // Line 100 logged twice: the OLDEST value (record 1's 0xAA) wins.
        assert_eq!(image.read_line(LineAddr(100))[0], 0xAA);
        assert_eq!(image.read_line(LineAddr(101))[0], 0xBB);
    }

    #[test]
    fn redo_applies_newest_value_for_relogged_line() {
        let mut image = MemoryImage::new();
        let r = rid(0, 1);
        let last = build_chain(&mut image, r);
        let records = collect_records(&image, last, r);
        let n = redo_region(&mut image, &records);
        assert_eq!(n, 3);
        // Redo semantics: the NEWEST logged value (record 2's 0xCC) wins.
        assert_eq!(image.read_line(LineAddr(100))[0], 0xCC);
        assert_eq!(image.read_line(LineAddr(101))[0], 0xBB);
    }

    fn entry(r: Rid, deps: &[Rid], done: bool) -> DepEntry {
        DepEntry {
            rid: r,
            done,
            deps: deps.to_vec(),
        }
    }

    #[test]
    fn undo_order_puts_dependents_first() {
        // r0.2 depends on r0.1; r1.1 depends on r0.2.
        let entries = vec![
            entry(rid(0, 1), &[], true),
            entry(rid(0, 2), &[rid(0, 1)], true),
            entry(rid(1, 1), &[rid(0, 2)], false),
        ];
        let order = undo_order(&entries);
        let pos = |r: Rid| order.iter().position(|x| *x == r).unwrap();
        assert!(pos(rid(1, 1)) < pos(rid(0, 2)));
        assert!(pos(rid(0, 2)) < pos(rid(0, 1)));
    }

    #[test]
    fn undo_order_ignores_committed_deps() {
        // Dep on a region absent from the list (already committed).
        let entries = vec![entry(rid(0, 5), &[rid(0, 4)], true)];
        assert_eq!(undo_order(&entries), vec![rid(0, 5)]);
    }

    #[test]
    fn undo_order_handles_diamond() {
        // d depends on b and c; b and c both depend on a.
        let a = rid(0, 1);
        let b = rid(1, 1);
        let c = rid(2, 1);
        let d = rid(3, 1);
        let entries = vec![
            entry(a, &[], true),
            entry(b, &[a], true),
            entry(c, &[a], true),
            entry(d, &[b, c], true),
        ];
        let order = undo_order(&entries);
        let pos = |r: Rid| order.iter().position(|x| *x == r).unwrap();
        assert!(pos(d) < pos(b) && pos(d) < pos(c));
        assert!(pos(b) < pos(a) && pos(c) < pos(a));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn undo_order_empty() {
        assert!(undo_order(&[]).is_empty());
    }
}
