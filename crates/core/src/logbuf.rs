//! Per-thread circular log buffers and the Fig. 5a record format.
//!
//! Each thread owns a distributed log (§5.5) in persistent memory. The log
//! is divided into *records*: one 64-byte `LogHeader` line followed by up
//! to seven 64-byte data-entry lines. The header holds the region ID,
//! flags, the addresses of each logged data line, and (an addition needed
//! for recovery without volatile registers) the address of the region's
//! previous record, forming a per-region chain that recovery walks from
//! the LH-WPQ's final `LogHeaderAddr`.

use std::fmt;

use asap_mem::Rid;
use asap_pmem::{LineAddr, PmAddr, LINE_BYTES};

/// Lines occupied by one full record: header + 7 entries.
pub const RECORD_LINES: u64 = 8;

/// Maximum data entries per record (Fig. 5a).
pub const MAX_ENTRIES: usize = 7;

/// Magic tag in every record header ("ASAP").
pub const LOG_MAGIC: u32 = 0x4153_4150;

/// Error: the circular log buffer is out of space.
///
/// The paper handles overflow with an exception that allocates more log
/// space (§4.4); the reproduction sizes logs generously and surfaces the
/// condition instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogFull {
    /// Lines requested.
    pub requested: u64,
    /// Lines free.
    pub free: u64,
}

impl fmt::Display for LogFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "log buffer overflow: need {} lines, {} free (pass a larger log size to init)",
            self.requested, self.free
        )
    }
}

impl std::error::Error for LogFull {}

/// One decoded record header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordHeader {
    /// The atomic region this record belongs to.
    pub rid: Rid,
    /// Sealed: all entry slots filled, header written through the WPQ.
    pub sealed: bool,
    /// Committed marker (used by redo logging as the commit record).
    pub committed: bool,
    /// Number of valid entries (≤ 7).
    pub count: u8,
    /// Byte address of the region's previous record header, if any.
    pub prev: Option<PmAddr>,
    /// Data-line addresses of the logged entries (first `count` valid).
    pub addrs: [LineAddr; MAX_ENTRIES],
}

impl RecordHeader {
    /// A fresh, empty header for `rid` chaining to `prev`.
    pub fn new(rid: Rid, prev: Option<PmAddr>) -> Self {
        RecordHeader {
            rid,
            sealed: false,
            committed: false,
            count: 0,
            prev,
            addrs: [LineAddr(0); MAX_ENTRIES],
        }
    }

    /// Appends a logged data-line address; returns the entry index.
    ///
    /// # Panics
    ///
    /// Panics if the record is already full.
    pub fn push_entry(&mut self, data_line: LineAddr) -> usize {
        let i = self.reserve_entry();
        self.addrs[i] = data_line;
        i
    }

    /// Reserves the next entry slot without publishing its address (the
    /// address becomes valid only once the entry's LPO is accepted by the
    /// WPQ — hardware fills the LH-WPQ field at the memory controller).
    ///
    /// # Panics
    ///
    /// Panics if the record is already full.
    pub fn reserve_entry(&mut self) -> usize {
        assert!((self.count as usize) < MAX_ENTRIES, "record full");
        let i = self.count as usize;
        self.count += 1;
        i
    }

    /// Publishes entry `i`'s data-line address (LPO accepted).
    ///
    /// # Panics
    ///
    /// Panics if slot `i` was not reserved.
    pub fn set_entry(&mut self, i: usize, data_line: LineAddr) {
        assert!(i < self.count as usize, "entry not reserved");
        self.addrs[i] = data_line;
    }

    /// Whether entry `i` holds a published (durable) address.
    pub fn entry_valid(&self, i: usize) -> bool {
        i < self.count as usize && self.addrs[i].0 != 0
    }

    /// Whether all entry slots are used.
    pub fn is_full(&self) -> bool {
        self.count as usize == MAX_ENTRIES
    }

    /// Serializes into one cache line.
    ///
    /// # Panics
    ///
    /// Panics if the thread id exceeds 16 bits or a line address exceeds
    /// 40 bits (both far beyond the simulated machine).
    pub fn encode(&self) -> [u8; 64] {
        let mut b = [0u8; 64];
        b[0..4].copy_from_slice(&LOG_MAGIC.to_le_bytes());
        b[4] = u8::from(self.sealed) | (u8::from(self.committed) << 1);
        b[5] = self.count;
        let thread = u16::try_from(self.rid.thread()).expect("thread id fits u16");
        b[6..8].copy_from_slice(&thread.to_le_bytes());
        b[8..16].copy_from_slice(&self.rid.local().to_le_bytes());
        b[16..24].copy_from_slice(&self.prev.map_or(0, |p| p.0).to_le_bytes());
        for (i, a) in self.addrs.iter().enumerate() {
            assert!(a.0 < (1 << 40), "line address fits 40 bits");
            let off = 24 + i * 5;
            b[off..off + 5].copy_from_slice(&a.0.to_le_bytes()[..5]);
        }
        b
    }

    /// Parses a cache line; `None` if it is not a record header.
    pub fn decode(b: &[u8; 64]) -> Option<Self> {
        if u32::from_le_bytes(b[0..4].try_into().unwrap()) != LOG_MAGIC {
            return None;
        }
        let count = b[5];
        if count as usize > MAX_ENTRIES {
            return None;
        }
        let thread = u16::from_le_bytes(b[6..8].try_into().unwrap());
        let local = u64::from_le_bytes(b[8..16].try_into().unwrap());
        let prev_raw = u64::from_le_bytes(b[16..24].try_into().unwrap());
        let mut addrs = [LineAddr(0); MAX_ENTRIES];
        for (i, a) in addrs.iter_mut().enumerate() {
            let off = 24 + i * 5;
            let mut v = [0u8; 8];
            v[..5].copy_from_slice(&b[off..off + 5]);
            *a = LineAddr(u64::from_le_bytes(v));
        }
        Some(RecordHeader {
            rid: Rid::new(u32::from(thread), local),
            sealed: b[4] & 1 != 0,
            committed: b[4] & 2 != 0,
            count,
            prev: (prev_raw != 0).then_some(PmAddr(prev_raw)),
            addrs,
        })
    }

    /// Byte address of entry `i`'s log line, given the header's address
    /// (entries follow the header contiguously).
    pub fn entry_addr(header_addr: PmAddr, i: usize) -> PmAddr {
        header_addr.offset((1 + i as u64) * LINE_BYTES)
    }
}

/// A per-thread circular log buffer allocated in whole records.
///
/// `head` and `tail` are absolute line counters; the buffer is full when
/// `tail - head` reaches capacity. Records never wrap: if fewer than
/// [`RECORD_LINES`] remain before the wrap point, the allocator pads to
/// the start (recovery tolerates the skipped lines because it follows
/// header chains, never scans).
///
/// # Example
///
/// ```
/// use asap_core::logbuf::{LogBuffer, RECORD_LINES};
/// use asap_pmem::PmAddr;
///
/// let mut log = LogBuffer::new(PmAddr(0), 64 * RECORD_LINES * 4);
/// let r0 = log.alloc_record().unwrap();
/// let r1 = log.alloc_record().unwrap();
/// assert_eq!(r1.0, r0.0 + 64 * RECORD_LINES);
/// log.free_to(log.head() + RECORD_LINES); // region owning r0 committed
/// ```
#[derive(Clone, Debug)]
pub struct LogBuffer {
    base: PmAddr,
    cap_lines: u64,
    head: u64,
    tail: u64,
}

impl LogBuffer {
    /// Creates a buffer over `[base, base + bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer cannot hold at least one record.
    pub fn new(base: PmAddr, bytes: u64) -> Self {
        let cap_lines = bytes / LINE_BYTES;
        assert!(cap_lines >= RECORD_LINES, "log too small for one record");
        LogBuffer {
            base,
            cap_lines,
            head: 0,
            tail: 0,
        }
    }

    /// Allocates one record (8 contiguous lines); returns its header's
    /// byte address.
    ///
    /// # Errors
    ///
    /// Returns [`LogFull`] when the circular buffer has no room.
    pub fn alloc_record(&mut self) -> Result<PmAddr, LogFull> {
        let idx = self.tail % self.cap_lines;
        let mut tail = self.tail;
        if idx + RECORD_LINES > self.cap_lines {
            tail += self.cap_lines - idx; // pad to wrap (only if it fits)
        }
        // The pad lines count against capacity too; a full buffer must not
        // pad into live data.
        if tail + RECORD_LINES > self.head + self.cap_lines {
            let free = self.cap_lines.saturating_sub(self.tail - self.head);
            return Err(LogFull {
                requested: RECORD_LINES,
                free,
            });
        }
        self.tail = tail + RECORD_LINES;
        Ok(self.base.offset((tail % self.cap_lines) * LINE_BYTES))
    }

    /// Whether [`alloc_record`](Self::alloc_record) would currently
    /// succeed (no state change).
    pub fn can_alloc(&self) -> bool {
        let idx = self.tail % self.cap_lines;
        let mut tail = self.tail;
        if idx + RECORD_LINES > self.cap_lines {
            tail += self.cap_lines - idx;
        }
        tail + RECORD_LINES <= self.head + self.cap_lines
    }

    /// Frees everything up to absolute line counter `pos` (a committed
    /// region's end), advancing `LogHead`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is outside `[head, tail]` — per-thread regions
    /// commit in order, so frees are monotone.
    pub fn free_to(&mut self, pos: u64) {
        assert!(
            pos >= self.head && pos <= self.tail,
            "free_to out of range: head={} pos={pos} tail={}",
            self.head,
            self.tail
        );
        self.head = pos;
    }

    /// Absolute line counter of the head (oldest live line).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Absolute line counter of the tail (next allocation point).
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Lines currently live.
    pub fn live_lines(&self) -> u64 {
        self.tail - self.head
    }

    /// Buffer capacity in lines.
    pub fn capacity_lines(&self) -> u64 {
        self.cap_lines
    }

    /// The buffer's base address.
    pub fn base(&self) -> PmAddr {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn header_roundtrip() {
        let mut h = RecordHeader::new(Rid::new(3, 42), Some(PmAddr(0x1000)));
        h.push_entry(LineAddr(0x123456789));
        h.push_entry(LineAddr(7));
        h.sealed = true;
        h.committed = true;
        let got = RecordHeader::decode(&h.encode()).unwrap();
        assert_eq!(got, h);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(RecordHeader::decode(&[0u8; 64]), None);
        let mut b = RecordHeader::new(Rid::new(0, 0), None).encode();
        b[5] = 99; // impossible count
        assert_eq!(RecordHeader::decode(&b), None);
    }

    #[test]
    fn push_entry_fills_up() {
        let mut h = RecordHeader::new(Rid::new(0, 1), None);
        for i in 0..MAX_ENTRIES {
            assert!(!h.is_full());
            assert_eq!(h.push_entry(LineAddr(i as u64)), i);
        }
        assert!(h.is_full());
    }

    #[test]
    #[should_panic(expected = "record full")]
    fn push_into_full_record_panics() {
        let mut h = RecordHeader::new(Rid::new(0, 1), None);
        for i in 0..=MAX_ENTRIES {
            h.push_entry(LineAddr(i as u64));
        }
    }

    #[test]
    fn entry_addresses_follow_header() {
        let base = PmAddr(0x40000);
        assert_eq!(RecordHeader::entry_addr(base, 0), PmAddr(0x40040));
        assert_eq!(RecordHeader::entry_addr(base, 6), PmAddr(0x40000 + 7 * 64));
    }

    #[test]
    fn alloc_is_contiguous_then_wraps_with_padding() {
        // Capacity: 3 records + 4 spare lines, to force wrap padding.
        let cap_lines = 3 * RECORD_LINES + 4;
        let mut log = LogBuffer::new(PmAddr(0), cap_lines * 64);
        let r0 = log.alloc_record().unwrap();
        let r1 = log.alloc_record().unwrap();
        let r2 = log.alloc_record().unwrap();
        assert_eq!(r1.0 - r0.0, RECORD_LINES * 64);
        assert_eq!(r2.0 - r1.0, RECORD_LINES * 64);
        // Buffer nearly full; free the first two records then allocate:
        // the 4 spare lines at the end are skipped, wrapping to offset 0.
        log.free_to(2 * RECORD_LINES);
        let r3 = log.alloc_record().unwrap();
        assert_eq!(r3, PmAddr(0), "wrapped to base, padding skipped");
    }

    #[test]
    fn overflow_is_reported() {
        let mut log = LogBuffer::new(PmAddr(0), RECORD_LINES * 64);
        log.alloc_record().unwrap();
        let err = log.alloc_record().unwrap_err();
        assert_eq!(err.requested, RECORD_LINES);
        assert_eq!(err.free, 0);
        assert!(err.to_string().contains("overflow"));
    }

    #[test]
    fn can_alloc_tracks_alloc() {
        let mut log = LogBuffer::new(PmAddr(0), 2 * RECORD_LINES * 64);
        assert!(log.can_alloc());
        log.alloc_record().unwrap();
        assert!(log.can_alloc());
        log.alloc_record().unwrap();
        assert!(!log.can_alloc());
        log.free_to(RECORD_LINES);
        assert!(log.can_alloc());
    }

    #[test]
    fn free_makes_room_again() {
        let mut log = LogBuffer::new(PmAddr(0), 2 * RECORD_LINES * 64);
        log.alloc_record().unwrap();
        log.alloc_record().unwrap();
        assert!(log.alloc_record().is_err());
        log.free_to(RECORD_LINES);
        assert!(log.alloc_record().is_ok());
        assert_eq!(log.live_lines(), 2 * RECORD_LINES);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn free_past_tail_panics() {
        let mut log = LogBuffer::new(PmAddr(0), RECORD_LINES * 64);
        log.free_to(1);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_log_panics() {
        LogBuffer::new(PmAddr(0), 64);
    }

    proptest! {
        #[test]
        fn prop_header_roundtrip(thread in 0u32..1000, local in any::<u64>(),
                                 n in 0usize..=MAX_ENTRIES,
                                 lines in proptest::collection::vec(0u64..(1 << 40), MAX_ENTRIES)) {
            let mut h = RecordHeader::new(Rid::new(thread, local), None);
            for line in lines.iter().take(n) {
                h.push_entry(LineAddr(*line));
            }
            prop_assert_eq!(RecordHeader::decode(&h.encode()), Some(h));
        }

        #[test]
        fn prop_alloc_never_overlaps_live(records in 2u64..20, spare in 0u64..7) {
            // A capacity that is not a whole number of records exercises
            // wrap padding.
            let cap = records * RECORD_LINES + spare;
            let mut log = LogBuffer::new(PmAddr(0), cap * 64);
            // Queue of (record addr, tail counter right after its alloc).
            let mut live: std::collections::VecDeque<(PmAddr, u64)> =
                std::collections::VecDeque::new();
            for _ in 0..records * 5 {
                match log.alloc_record() {
                    Ok(a) => {
                        prop_assert!(
                            live.iter().all(|(l, _)| *l != a),
                            "overlap at {a}"
                        );
                        live.push_back((a, log.tail()));
                    }
                    Err(_) => {
                        let (_, end) = live.pop_front().expect("full yet nothing live");
                        log.free_to(end);
                    }
                }
            }
        }
    }
}
