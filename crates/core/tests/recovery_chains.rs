//! Recovery across multi-record log chains.
//!
//! A log record holds at most 7 data entries (Fig. 5a); regions touching
//! more lines chain several records via the header `prev` pointers. These
//! tests crash regions with long chains — partially accepted, sealed and
//! unsealed records — and check the undo/redo walks.

use asap_core::machine::{Machine, MachineConfig, RunOutcome};
use asap_core::scheme::SchemeKind;

fn big_region_machine(scheme: SchemeKind) -> (Machine, asap_pmem::PmAddr) {
    let mut m = Machine::new(MachineConfig::small(scheme, 1).with_tracking());
    let a = m.pm_alloc(64 * 40).unwrap();
    (m, a)
}

/// Fills `n` distinct lines in one region (n > 7 chains records).
fn run_big_region(m: &mut Machine, a: asap_pmem::PmAddr, n: u64, tag: u64) -> RunOutcome {
    m.run_thread(0, |ctx| {
        ctx.begin_region();
        for i in 0..n {
            ctx.write_u64(a.offset(i * 64), tag * 1000 + i);
        }
        ctx.end_region();
    })
}

#[test]
fn undo_walks_multi_record_chains() {
    for scheme in [SchemeKind::Asap, SchemeKind::HwUndo] {
        // Seed 20 lines with generation 1, fence, then overwrite all 20
        // (3 records worth of log) and crash mid-flight.
        for crash_at in [21u64, 25, 30, 35, 40] {
            let (mut m, a) = big_region_machine(scheme);
            assert_eq!(run_big_region(&mut m, a, 20, 1), RunOutcome::Completed);
            m.run_thread(0, |ctx| ctx.fence());
            m.arm_crash_after_additional(crash_at - 20);
            let o = run_big_region(&mut m, a, 20, 2);
            m.recover_after(o);
            // Atomicity: all 20 lines from generation 1, or all from 2.
            let first = m.debug_read_u64(a);
            let generation = first / 1000;
            assert!(generation == 1 || generation == 2, "{scheme} @{crash_at}");
            for i in 0..20u64 {
                assert_eq!(
                    m.debug_read_u64(a.offset(i * 64)),
                    generation * 1000 + i,
                    "{scheme} @{crash_at}: line {i} torn"
                );
            }
        }
    }
}

#[test]
fn redo_replays_multi_record_chains() {
    // HwRedo: commit, then crash while the async DPOs drain — the whole
    // 20-entry chain must roll forward.
    let (mut m, a) = big_region_machine(SchemeKind::HwRedo);
    assert_eq!(run_big_region(&mut m, a, 20, 1), RunOutcome::Completed);
    // Crash immediately: region committed at end (sync LPO wait) but the
    // in-place data may be anywhere.
    m.crash_now();
    let report = m.recover();
    assert!(report.uncommitted.is_empty());
    for i in 0..20u64 {
        assert_eq!(m.debug_read_u64(a.offset(i * 64)), 1000 + i);
    }
}

#[test]
fn exactly_record_boundary_sizes() {
    // 7 and 14 entries: records seal exactly at the boundary with no
    // partial final record; 8 and 15 leave a one-entry final record.
    for scheme in [SchemeKind::Asap, SchemeKind::HwUndo, SchemeKind::HwRedo] {
        for n in [7u64, 8, 14, 15] {
            let (mut m, a) = big_region_machine(scheme);
            assert_eq!(run_big_region(&mut m, a, n, 3), RunOutcome::Completed);
            m.run_thread(0, |ctx| ctx.fence());
            m.crash_now();
            let r = m.recover();
            assert!(r.uncommitted.is_empty(), "{scheme} n={n}");
            for i in 0..n {
                assert_eq!(
                    m.debug_read_u64(a.offset(i * 64)),
                    3000 + i,
                    "{scheme} n={n}"
                );
            }
        }
    }
}

/// Convenience: recover only if the outcome was a crash.
trait RecoverAfter {
    fn recover_after(&mut self, o: RunOutcome);
}

impl RecoverAfter for Machine {
    fn recover_after(&mut self, o: RunOutcome) {
        if o == RunOutcome::Completed {
            self.crash_now();
        }
        self.recover();
    }
}
