//! Generate-only strategies: each strategy draws a value from a [`TestRng`].

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy: 'static {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug + 'static> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U + 'static,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A weighted choice between strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V: Debug + 'static> Union<V> {
    /// Creates a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { arms, total }
    }
}

impl<V: Debug + 'static> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weighted pick out of range")
    }
}

/// A strategy from a plain generation function.
pub struct FnGen<V> {
    f: fn(&mut TestRng) -> V,
    _marker: PhantomData<fn() -> V>,
}

impl<V> FnGen<V> {
    /// Wraps `f` as a strategy.
    pub fn new(f: fn(&mut TestRng) -> V) -> Self {
        FnGen {
            f,
            _marker: PhantomData,
        }
    }
}

impl<V: Debug + 'static> Strategy for FnGen<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.f)(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as u128 + v) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("strategy::ranges", 0);
        for _ in 0..500 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u8..=255).generate(&mut rng);
            assert!(w >= 1);
        }
    }

    #[test]
    fn union_respects_zero_weight_absence() {
        let mut rng = TestRng::for_case("strategy::union", 0);
        let u = Union::new(vec![(1u32, Just(1u64).boxed()), (3u32, Just(2u64).boxed())]);
        let mut seen = [0usize; 3];
        for _ in 0..400 {
            seen[u.generate(&mut rng) as usize] += 1;
        }
        assert_eq!(seen[0], 0);
        assert!(seen[1] > 0 && seen[2] > seen[1]);
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::for_case("strategy::map", 0);
        let s = (0u64..4, 0u64..4).prop_map(|(a, b)| a * 10 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 10 < 4 && v / 10 < 4);
        }
    }
}
