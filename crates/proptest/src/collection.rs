//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification accepted by [`vec`]: an exact `usize`, `a..b`, or
/// `a..=b`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Generates a `Vec` of values from `element`, with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_spec() {
        let mut rng = TestRng::for_case("collection::lengths", 0);
        let ranged = vec(0u64..10, 2..5);
        let exact = vec(0u64..10, 7usize);
        for _ in 0..200 {
            let v = ranged.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert_eq!(exact.generate(&mut rng).len(), 7);
        }
    }
}
