//! Offline drop-in subset of the `proptest` crate API.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace ships the slice of proptest it uses as a path dependency
//! keeping the upstream package name (tests stay source-compatible).
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports its generated inputs (all
//!   strategy values are `Debug`) and the deterministic case index instead.
//! - **Deterministic by default.** Each test function derives its RNG seed
//!   from the test's module path, name and case index, so failures reproduce
//!   exactly on re-run with no `proptest-regressions` files.
//! - Strategies are generate-only: a [`strategy::Strategy`] produces a value
//!   from an RNG; there is no value tree.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Chooses between several strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $(let $arg = ($strat);)+
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                    let __inputs = {
                        let mut s = String::new();
                        $(s.push_str(&format!(
                            concat!("  ", stringify!($arg), " = {:?}\n"),
                            &$arg
                        ));)+
                        s
                    };
                    let __result = (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs:\n{}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            e,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with its inputs) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}
