//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::{BoxedStrategy, FnGen, Strategy};

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + std::fmt::Debug + 'static {
    /// The canonical strategy for `Self`.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// Returns the canonical strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<Self> {
                FnGen::new(|rng| rng.next_u64() as $t).boxed()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<Self> {
        FnGen::new(|rng| rng.next_u64() & 1 == 1).boxed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn any_covers_domain_edges_eventually() {
        let mut rng = TestRng::for_case("arbitrary::bool", 0);
        let s = any::<bool>();
        let trues = (0..100).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 20 && trues < 80);
    }
}
