//! Boolean strategies (`proptest::bool::weighted`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `true` with probability `p`.
pub fn weighted(p: f64) -> Weighted {
    assert!((0.0..=1.0).contains(&p), "weighted: p out of [0, 1]");
    Weighted { p }
}

/// The strategy returned by [`weighted`].
#[derive(Clone, Copy, Debug)]
pub struct Weighted {
    p: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.unit_f64() < self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_roughly_respected() {
        let mut rng = TestRng::for_case("bool::weighted", 0);
        let s = weighted(0.15);
        let hits = (0..10_000).filter(|_| s.generate(&mut rng)).count();
        assert!((1000..2000).contains(&hits), "hits = {hits}");
    }
}
