//! Test-execution plumbing: configuration, deterministic RNG, failure type.

use std::fmt;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property case (produced by `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG driving strategy generation: xoshiro256++, seeded from the test's
/// identity and case index so every run of a test replays the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// The RNG for case `case` of the test identified by `path`.
    pub fn for_case(path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut x = h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Draws uniformly from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Draws a float uniformly from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
