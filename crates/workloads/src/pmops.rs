//! Small helpers for pointer-structured data in simulated PM.

use asap_core::machine::{Machine, ThreadCtx};
use asap_pmem::PmAddr;

/// The null persistent pointer.
pub const NULL: u64 = 0;

/// Reads the `i`-th 8-byte field of a record at `base`.
pub fn read_field(ctx: &mut ThreadCtx, base: PmAddr, i: u64) -> u64 {
    ctx.read_u64(base.offset(8 * i))
}

/// Writes the `i`-th 8-byte field of a record at `base`.
pub fn write_field(ctx: &mut ThreadCtx, base: PmAddr, i: u64, v: u64) {
    ctx.write_u64(base.offset(8 * i), v);
}

/// Interprets a field value as an optional pointer.
pub fn as_ptr(v: u64) -> Option<PmAddr> {
    (v != NULL).then_some(PmAddr(v))
}

/// Debug (timing-free) variant of [`read_field`] for verification walks.
pub fn debug_field(m: &mut Machine, base: PmAddr, i: u64) -> u64 {
    m.debug_read_u64(base.offset(8 * i))
}

/// Fills `len` bytes deterministically from `(key, tag)` — the payload
/// pattern used by the benchmarks so tests can validate values.
pub fn payload(key: u64, tag: u64, len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(len);
    let mut s = PayloadStream::new(key, tag);
    v.resize(len, 0);
    s.fill(&mut v);
    v
}

/// Streaming generator of the [`payload`] byte sequence (xorshift64, 8
/// bytes per step), so hot-path writers can produce the pattern one cache
/// line at a time instead of materializing the whole value.
struct PayloadStream {
    x: u64,
    buf: [u8; 8],
    avail: usize,
}

impl PayloadStream {
    fn new(key: u64, tag: u64) -> Self {
        PayloadStream {
            x: key
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(tag.wrapping_mul(0xd1b5_4a32_d192_ed03))
                | 1,
            buf: [0; 8],
            avail: 0,
        }
    }

    /// Writes the next `out.len()` bytes of the sequence into `out`.
    fn fill(&mut self, out: &mut [u8]) {
        for b in out {
            if self.avail == 0 {
                self.x ^= self.x << 13;
                self.x ^= self.x >> 7;
                self.x ^= self.x << 17;
                self.buf = self.x.to_le_bytes();
                self.avail = 8;
            }
            *b = self.buf[8 - self.avail];
            self.avail -= 1;
        }
    }
}

/// Batched sequential-store fast path for benchmark values: streams the
/// [`payload`] pattern into simulated PM one cache-line span at a time
/// through a stack buffer. The store sequence the machine sees is
/// byte-identical to `ctx.write_bytes(addr, &payload(key, tag, len))` —
/// same spans, same bytes, same latencies — but a multi-kilobyte value
/// update (the Fig. 7 large-value sweeps store runs of 32 consecutive
/// already-owned lines) no longer heap-allocates a `Vec` per operation.
pub fn write_payload(ctx: &mut ThreadCtx, addr: PmAddr, key: u64, tag: u64, len: usize) {
    let mut s = PayloadStream::new(key, tag);
    let mut span = [0u8; asap_pmem::LINE_BYTES as usize];
    let mut pos = 0usize;
    while pos < len {
        let a = addr.offset(pos as u64);
        let off = a.offset_in_line() as usize;
        let n = (len - pos).min(asap_pmem::LINE_BYTES as usize - off);
        s.fill(&mut span[..n]);
        ctx.write_bytes(a, &span[..n]);
        pos += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::machine::MachineConfig;
    use asap_core::scheme::SchemeKind;

    #[test]
    fn field_roundtrip() {
        let mut m = Machine::new(MachineConfig::small(SchemeKind::NoPersist, 1));
        let rec = m.pm_alloc(64).unwrap();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            write_field(ctx, rec, 0, 11);
            write_field(ctx, rec, 7, 77);
            assert_eq!(read_field(ctx, rec, 0), 11);
            assert_eq!(read_field(ctx, rec, 7), 77);
            ctx.end_region();
        });
        assert_eq!(debug_field(&mut m, rec, 7), 77);
    }

    #[test]
    fn null_pointers() {
        assert_eq!(as_ptr(NULL), None);
        assert_eq!(as_ptr(64), Some(PmAddr(64)));
    }

    #[test]
    fn payload_is_deterministic_and_distinct() {
        assert_eq!(payload(1, 2, 100), payload(1, 2, 100));
        assert_ne!(payload(1, 2, 100), payload(1, 3, 100));
        assert_ne!(payload(1, 2, 100), payload(2, 2, 100));
        assert_eq!(payload(5, 0, 0).len(), 0);
        assert_eq!(payload(5, 0, 13).len(), 13);
    }
}
