//! Small helpers for pointer-structured data in simulated PM.

use asap_core::machine::{Machine, ThreadCtx};
use asap_pmem::PmAddr;

/// The null persistent pointer.
pub const NULL: u64 = 0;

/// Reads the `i`-th 8-byte field of a record at `base`.
pub fn read_field(ctx: &mut ThreadCtx, base: PmAddr, i: u64) -> u64 {
    ctx.read_u64(base.offset(8 * i))
}

/// Writes the `i`-th 8-byte field of a record at `base`.
pub fn write_field(ctx: &mut ThreadCtx, base: PmAddr, i: u64, v: u64) {
    ctx.write_u64(base.offset(8 * i), v);
}

/// Interprets a field value as an optional pointer.
pub fn as_ptr(v: u64) -> Option<PmAddr> {
    (v != NULL).then_some(PmAddr(v))
}

/// Debug (timing-free) variant of [`read_field`] for verification walks.
pub fn debug_field(m: &mut Machine, base: PmAddr, i: u64) -> u64 {
    m.debug_read_u64(base.offset(8 * i))
}

/// Fills `len` bytes deterministically from `(key, tag)` — the payload
/// pattern used by the benchmarks so tests can validate values.
pub fn payload(key: u64, tag: u64, len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(len);
    let mut x = key
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(tag.wrapping_mul(0xd1b5_4a32_d192_ed03))
        | 1;
    while v.len() < len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v.extend_from_slice(&x.to_le_bytes());
    }
    v.truncate(len);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::machine::MachineConfig;
    use asap_core::scheme::SchemeKind;

    #[test]
    fn field_roundtrip() {
        let mut m = Machine::new(MachineConfig::small(SchemeKind::NoPersist, 1));
        let rec = m.pm_alloc(64).unwrap();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            write_field(ctx, rec, 0, 11);
            write_field(ctx, rec, 7, 77);
            assert_eq!(read_field(ctx, rec, 0), 11);
            assert_eq!(read_field(ctx, rec, 7), 77);
            ctx.end_region();
        });
        assert_eq!(debug_field(&mut m, rec, 7), 77);
    }

    #[test]
    fn null_pointers() {
        assert_eq!(as_ptr(NULL), None);
        assert_eq!(as_ptr(64), Some(PmAddr(64)));
    }

    #[test]
    fn payload_is_deterministic_and_distinct() {
        assert_eq!(payload(1, 2, 100), payload(1, 2, 100));
        assert_ne!(payload(1, 2, 100), payload(1, 3, 100));
        assert_ne!(payload(1, 2, 100), payload(2, 2, 100));
        assert_eq!(payload(5, 0, 0).len(), 0);
        assert_eq!(payload(5, 0, 13).len(), 13);
    }
}
