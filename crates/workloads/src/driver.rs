//! Turns a [`WorkloadSpec`] into a simulated run and its measurements.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use asap_core::machine::{
    Machine, MachineConfig, MachineSnapshot, RunOutcome, StepFn, StepOutcome, ThreadCtx,
};
use asap_core::scheme::RecoveryReport;
use asap_sim::{Cycle, Stats, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::spec::WorkloadSpec;
use crate::structures::{AnyBench, Benchmark};

/// Mean per-region cycle breakdown: compute plus the four stall classes.
/// The components sum to the mean of `region.cycles` (within float error),
/// because the machine samples them from the same per-region accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StallBreakdown {
    /// Cycles not attributed to any stall class.
    pub compute: f64,
    /// Waiting for log space (`region.stall.log_full`).
    pub log_full: f64,
    /// Persistence-path backpressure (LH-WPQ, CL entries, CLPtr slots).
    pub wpq_backpressure: f64,
    /// Inter-region dependence waits (Dep slots/entries, LPO locks).
    pub dependency_wait: f64,
    /// Synchronous durability waits (commit, fence, drain).
    pub commit_wait: f64,
}

impl StallBreakdown {
    /// Sum of all components (≈ mean region cycles).
    pub fn total(&self) -> f64 {
        self.compute
            + self.log_full
            + self.wpq_backpressure
            + self.dependency_wait
            + self.commit_wait
    }

    fn from_stats(stats: &Stats) -> Self {
        let mean = |n: &str| stats.summary(n).map_or(0.0, Summary::mean);
        StallBreakdown {
            compute: mean("region.compute"),
            log_full: mean("region.stall.log_full"),
            wpq_backpressure: mean("region.stall.wpq_backpressure"),
            dependency_wait: mean("region.stall.dependency_wait"),
            commit_wait: mean("region.stall.commit_wait"),
        }
    }
}

/// Everything a figure needs from one run.
///
/// Results are plain owned data (`Send`), so a harness may simulate many
/// specs on host worker threads and move the finished results back — each
/// *simulation* stays single-threaded and deterministic regardless.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The spec that produced this result.
    pub spec: WorkloadSpec,
    /// Transactions completed.
    pub tx: u64,
    /// Execution makespan in cycles (excludes the post-run drain tail).
    pub exec_cycles: u64,
    /// Makespan after draining all asynchronous work.
    pub drained_cycles: u64,
    /// Transactions per kilocycle.
    pub throughput: f64,
    /// 64-byte writes that reached the PM media.
    pub pm_writes: u64,
    /// Mean cycles per atomic region (Fig. 8's metric).
    pub region_cycles_mean: f64,
    /// Mean per-region cycle breakdown by stall class.
    pub stalls: StallBreakdown,
    /// Full statistics registry.
    pub stats: Stats,
    /// Chrome trace-event JSON (only when the spec enables tracing).
    pub chrome_trace: Option<String>,
    /// Deterministic text dump of the CPU and memory traces (only when
    /// the spec enables tracing); byte-identical across identical runs.
    pub trace_dump: Option<String>,
    /// Occupancy time-series JSON (only when the spec enables telemetry);
    /// deterministic, bounded by the decimating buffer.
    pub timeseries: Option<String>,
    /// Region-lifecycle log JSON (only when the spec enables telemetry).
    pub lifecycle: Option<String>,
    /// Lifecycle dependency DAG as Graphviz DOT (telemetry only).
    pub lifecycle_dot: Option<String>,
    /// The hottest PM lines as `(line, media_writes)`, hottest first
    /// (telemetry only; capped at [`HOT_LINES`] entries).
    pub hot_lines: Vec<(u64, u64)>,
    /// Whether the run completed or crashed.
    pub outcome: RunOutcome,
    /// Recovery report when the run crashed and recovered.
    pub recovery: Option<RecoveryReport>,
    /// Per-crash-point outcomes when this result is the baseline of a
    /// [`run_sweep`] (empty for ordinary runs and sweep forks — a fork
    /// stays byte-identical to its legacy `crash_after` equivalent).
    pub crash_points: Vec<CrashPointOutcome>,
}

/// One crash point's outcome in a [`run_sweep`] summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPointOutcome {
    /// The crash point: power failure at the N-th post-setup persistent
    /// write (the spec's `crash_after` coordinate).
    pub crash_after: u64,
    /// Whether the armed failure fired (`false`: the point lay beyond the
    /// workload's writes and the fork completed normally).
    pub crashed: bool,
    /// Regions rolled back (or discarded) by recovery.
    pub uncommitted: u64,
    /// Regions rolled forward by recovery (redo schemes).
    pub replayed: u64,
    /// Log entries written back to data locations during recovery.
    pub restored_lines: u64,
    /// Transactions completed before the failure.
    pub tx: u64,
}

// The parallel figure harness moves whole results across host threads:
// everything in a RunResult must stay plain data. (`Send` is not `Sync` —
// a finished result never needs sharing, only moving.)
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<RunResult>();
};

/// How many hottest PM lines a telemetry-enabled run reports.
pub const HOT_LINES: usize = 32;

impl RunResult {
    /// One self-contained telemetry JSON object for this run — cell
    /// identity, time series, lifecycle log and hottest lines — or `None`
    /// when the spec ran without telemetry. This is what the bench
    /// harness's merged export is made of.
    pub fn telemetry_json(&self) -> Option<String> {
        let ts = self.timeseries.as_deref()?;
        let lc = self.lifecycle.as_deref().unwrap_or("null");
        let mut hot = String::from("[");
        for (i, (line, n)) in self.hot_lines.iter().enumerate() {
            if i > 0 {
                hot.push(',');
            }
            hot.push_str(&format!("[{line},{n}]"));
        }
        hot.push(']');
        Some(format!(
            "{{\"bench\":\"{}\",\"scheme\":\"{}\",\"threads\":{},\"value_bytes\":{},\
             \"timeseries\":{ts},\"lifecycle\":{lc},\"hot_lines\":{hot}}}",
            self.spec.bench.label(),
            self.spec.scheme,
            self.spec.threads,
            self.spec.value_bytes,
        ))
    }

    /// Throughput of `self` relative to `base`.
    pub fn speedup_over(&self, base: &RunResult) -> f64 {
        if base.throughput == 0.0 {
            0.0
        } else {
            self.throughput / base.throughput
        }
    }

    /// PM write traffic of `self` relative to `base`.
    pub fn traffic_ratio_to(&self, base: &RunResult) -> f64 {
        if base.pm_writes == 0 {
            0.0
        } else {
            self.pm_writes as f64 / base.pm_writes as f64
        }
    }
}

/// Builds the machine for a spec.
fn machine_for(spec: &WorkloadSpec) -> Machine {
    let mut cfg = MachineConfig::new(spec.scheme, spec.threads)
        .with_system(spec.system)
        .with_trace(spec.trace)
        .with_telemetry(spec.telemetry);
    if spec.track {
        cfg = cfg.with_tracking();
    }
    Machine::new(cfg)
}

/// Runs a spec end to end: setup, timed run, drain, verification.
///
/// When the spec arms a crash, the run stops at the power failure and
/// recovery executes (with shadow verification if tracking is on); the
/// result then reports the crashed outcome and the recovery report.
///
/// # Examples
///
/// Compare ASAP against the software baseline on the hash-map benchmark:
///
/// ```
/// use asap_core::scheme::SchemeKind;
/// use asap_workloads::{run, BenchId, WorkloadSpec};
///
/// let sw = run(&WorkloadSpec::small(BenchId::Hm, SchemeKind::SwUndo).with_ops(10));
/// let asap = run(&WorkloadSpec::small(BenchId::Hm, SchemeKind::Asap).with_ops(10));
/// assert!(asap.speedup_over(&sw) > 1.0);
/// ```
///
/// # Panics
///
/// Panics if a structural invariant or crash-consistency check fails —
/// that is a bug in the scheme under test, which is the point.
pub fn run(spec: &WorkloadSpec) -> RunResult {
    let (mut m, mut bench, marks) = prepare(spec);
    let state = thread_states(spec);
    let mut steps = shared_steps(bench, spec, &state);
    let outcome = m.run(&mut steps);
    drop(steps);
    collect(&mut m, &mut bench, spec, outcome, &marks)
}

/// Boundary measurements taken between setup and the timed run, shared by
/// the single-run and sweep paths (and by every fork of a sweep).
#[derive(Clone, Copy, Debug)]
struct SetupMarks {
    /// PM media write traffic consumed by setup (excluded from results).
    pm_writes_setup: u64,
    /// CPU persistent-write count at arm time — the origin of the
    /// `crash_after` coordinate.
    armed_base: u64,
    /// Makespan when the timed run began.
    setup_end: Cycle,
}

/// Builds the machine, runs benchmark setup, and establishes the
/// steady-state baseline: drained, clock-synced, per-region summaries
/// reset, crash armed (when the spec asks for one).
fn prepare(spec: &WorkloadSpec) -> (Machine, AnyBench, SetupMarks) {
    let mut m = machine_for(spec);
    let mut bench = AnyBench::create(&mut m, spec);
    bench.setup(&mut m, spec);
    // Steady state starts here: drain setup persists, barrier the thread
    // clocks, and exclude setup from the per-region and traffic metrics.
    m.drain();
    m.sync_thread_clocks();
    // Exclude setup regions from every per-region metric, so the stall
    // breakdown keeps summing to `region.cycles`.
    for name in [
        "region.cycles",
        "region.compute",
        "region.stall.log_full",
        "region.stall.wpq_backpressure",
        "region.stall.dependency_wait",
        "region.stall.commit_wait",
        "region.lines_written",
        "region.deps",
    ] {
        m.reset_summary(name);
    }
    let pm_writes_setup = m.pm_write_traffic();
    let armed_base = m.pm_write_ops();
    // Arm the crash counter only after setup so setup always survives.
    if let Some(n) = spec.crash_after {
        m.arm_crash_after_additional(n);
    }
    let setup_end = m.makespan();
    (
        m,
        bench,
        SetupMarks {
            pm_writes_setup,
            armed_base,
            setup_end,
        },
    )
}

/// Per-thread workload-driver state. It lives *outside* the step
/// closures (shared via `Rc<RefCell<…>>`) so a crash sweep can capture
/// and rewind it alongside a [`MachineSnapshot`]; a plain [`run`] uses
/// the same arrangement so the two paths execute identical code.
#[derive(Clone, Debug)]
struct ThreadState {
    rng: StdRng,
    remaining: u64,
}

type SharedStates = Rc<RefCell<Vec<ThreadState>>>;

fn thread_states(spec: &WorkloadSpec) -> SharedStates {
    Rc::new(RefCell::new(
        (0..spec.threads as u64)
            .map(|t| ThreadState {
                rng: StdRng::seed_from_u64(spec.seed ^ t.wrapping_mul(0x9e37)),
                remaining: spec.ops_per_thread,
            })
            .collect(),
    ))
}

fn shared_steps(bench: AnyBench, spec: &WorkloadSpec, state: &SharedStates) -> Vec<StepFn> {
    (0..spec.threads as usize)
        .map(|t| {
            let b = bench;
            let s = *spec;
            let state = Rc::clone(state);
            Box::new(move |ctx: &mut ThreadCtx| {
                let st = &mut state.borrow_mut()[t];
                if st.remaining == 0 {
                    return false;
                }
                b.step(ctx, &mut st.rng, &s);
                ctx.complete_tx();
                st.remaining -= 1;
                st.remaining > 0
            }) as StepFn
        })
        .collect()
}

/// Post-run bookkeeping shared by every path that finishes a simulation:
/// drain-or-recover, verification, and measurement into a [`RunResult`].
fn collect(
    m: &mut Machine,
    bench: &mut AnyBench,
    spec: &WorkloadSpec,
    outcome: RunOutcome,
    marks: &SetupMarks,
) -> RunResult {
    let SetupMarks {
        pm_writes_setup,
        setup_end,
        ..
    } = *marks;
    let (exec, drained, recovery) = match outcome {
        RunOutcome::Completed => {
            let exec = m.makespan();
            let drained = m.drain();
            bench.verify(m).expect("structural invariants after run");
            // Cross-validate the sharer presence masks against the tag
            // arrays. The walk is O(cache) with a hash probe per line,
            // so release builds only pay it for >64-core machines —
            // the multi-word-mask stripes the unit tests can't cover at
            // full figure scale; debug builds (the test suites) check
            // every run.
            if cfg!(debug_assertions) || spec.system.cores > 64 {
                assert!(
                    m.hw().caches.check_inclusive(),
                    "cache inclusion/presence-mask invariant violated after drain"
                );
            }
            (exec, drained, None)
        }
        RunOutcome::Crashed => {
            let exec = m.makespan();
            let report = m.recover(); // panics on a consistency violation
                                      // Atomic durability means structural invariants hold at region
                                      // boundaries — so they must hold in the recovered image too.
            bench
                .verify(m)
                .expect("structural invariants after recovery");
            (exec, exec, Some(report))
        }
    };
    let stats = m.stats();
    let tx = m.tx_count();
    let cycles = exec.raw().saturating_sub(setup_end.raw()).max(1);
    let (chrome_trace, trace_dump) = if spec.trace.enabled {
        let dump = format!("{}{}", m.trace().dump(), m.hw().mem.trace().dump());
        (Some(m.trace_chrome_json()), Some(dump))
    } else {
        (None, None)
    };
    let (timeseries, lifecycle, lifecycle_dot) = if spec.telemetry.enabled {
        (
            Some(m.timeseries().to_json()),
            Some(m.lifecycle().to_json()),
            Some(m.lifecycle().to_dot()),
        )
    } else {
        (None, None, None)
    };
    let hot_lines = m.hw().mem.hottest_lines(HOT_LINES);
    flush_host_metrics(m);
    RunResult {
        spec: *spec,
        tx,
        exec_cycles: cycles,
        drained_cycles: drained.raw(),
        throughput: tx as f64 * 1000.0 / cycles as f64,
        pm_writes: stats.get("pm.write.total").saturating_sub(pm_writes_setup),
        region_cycles_mean: stats.summary("region.cycles").map_or(0.0, |s| s.mean()),
        stalls: StallBreakdown::from_stats(&stats),
        stats,
        outcome,
        recovery,
        chrome_trace,
        trace_dump,
        timeseries,
        lifecycle,
        lifecycle_dot,
        hot_lines,
        crash_points: Vec::new(),
    }
}

/// The result of a [`run_sweep`]: the uninterrupted baseline run (whose
/// [`RunResult::crash_points`] summarizes every fork) plus one full
/// [`RunResult`] per crash point, each byte-identical to what [`run`]
/// would produce for `spec.with_crash_after(point)`.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The uninterrupted prefix run, crash-point summaries attached.
    pub baseline: RunResult,
    /// One result per requested crash point, in request order.
    pub forks: Vec<RunResult>,
    /// Post-setup persistent writes the full prefix performed — the upper
    /// end of the meaningful `crash_after` coordinate for this spec.
    /// Callers use it to place sweep points (e.g. quantiles of the write
    /// range); a pilot `run_sweep(spec, &[], u64::MAX)` measures it for
    /// the cost of one uninterrupted run.
    pub prefix_writes: u64,
    /// Persistent writes re-simulated across all forks (distance from
    /// each fork's restored snapshot to where its run stopped) — the cost
    /// the snapshot layout exists to minimize. Also accumulated into the
    /// process-global `snapshot.replayed_writes` metric.
    pub replayed_writes: u64,
}

/// Sweep-engine tuning: snapshot layout and fork dispatch.
///
/// The configuration never affects results — every combination produces
/// bit-identical [`RunResult`]s (the equivalence suites enforce it) —
/// only wall clock and resident memory.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Spine snapshot cadence in persistent writes (quantized to step
    /// boundaries; minimum 1).
    pub snap_every: u64,
    /// Most spine snapshots retained (0 = unbounded). When the prefix
    /// outgrows the budget, every other spine snapshot is evicted and the
    /// cadence doubles — memory stays O(budget) while worst-case replay
    /// distance stays O(prefix / budget).
    pub snap_budget: usize,
    /// Refinement snapshots — the snapshot tree's leaves. Each fork first
    /// advances (unarmed) to the last step boundary before its crash
    /// point and snapshots there, so the armed replay is at most one
    /// step's writes instead of a cadence tail, and consecutive points in
    /// a chunk share their advance work.
    pub refine: bool,
    /// Fork-dispatch worker threads (1 = inline on the calling thread;
    /// results are identical either way).
    pub jobs: usize,
}

impl SweepConfig {
    /// PR 9's layout: flat cadence, no tree, serial dispatch.
    pub fn flat(snap_every: u64) -> Self {
        SweepConfig {
            snap_every,
            snap_budget: 0,
            refine: false,
            jobs: 1,
        }
    }

    /// The tree layout: budgeted spine plus per-fork refinement leaves.
    pub fn tree(snap_every: u64) -> Self {
        SweepConfig {
            snap_every,
            snap_budget: 64,
            refine: true,
            jobs: 1,
        }
    }

    /// Sets the fork-dispatch worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the spine snapshot budget (0 = unbounded).
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.snap_budget = budget;
        self
    }
}

/// Runs a crash-point sweep over one workload: the prefix simulates once,
/// machine snapshots are taken copy-on-write every `snap_every`
/// persistent writes (quantized to step boundaries), and every crash
/// point forks from the latest preceding snapshot instead of
/// re-simulating from cycle 0 — O(points × dirty state) instead of
/// O(points × run length).
///
/// This is the flat serial layout, [`SweepConfig::flat`]; see
/// [`run_sweep_with`] for the snapshot tree and parallel fork dispatch.
///
/// Each fork arms the power failure at exactly the absolute write count
/// the legacy path would have crashed on, and both paths execute the same
/// [`Machine::step_thread`] loop, so a fork's `RunResult` is
/// byte-identical to `run(&spec.with_crash_after(point))` — the
/// equivalence suite enforces this. The baseline is what [`run`] returns
/// for the unarmed spec, plus the `crash_points` summary.
///
/// # Panics
///
/// Panics if `spec.crash_after` is set (the sweep owns crash arming), or
/// if a scheme invariant or crash-consistency check fails in any fork.
pub fn run_sweep(spec: &WorkloadSpec, points: &[u64], snap_every: u64) -> SweepResult {
    run_sweep_with(spec, points, &SweepConfig::flat(snap_every))
}

/// Immutable state one sweep's fork workers share by reference.
struct SweepShared<'a> {
    spec: &'a WorkloadSpec,
    marks: SetupMarks,
    cfg: SweepConfig,
    /// Requested crash points, in request order.
    points: &'a [u64],
    /// Point indices sorted ascending by point value — the processing
    /// order that keeps each chunk on one stretch of the prefix.
    order: &'a [usize],
    /// Realized post-step `pm_write_ops` values of the prefix, ascending
    /// — the refinement targets (every crash point lies between two).
    boundaries: &'a [u64],
    /// Spine snapshots. `Mutex` because a snapshot is `Send` but not
    /// `Sync` (the PM image keeps single-thread `Cell` caches): workers
    /// hold the lock only for the restore `memcpy`.
    spine: &'a [Mutex<(MachineSnapshot, Vec<ThreadState>)>],
    /// `pm_write_ops` of each spine snapshot (lock-free index).
    spine_writes: &'a [u64],
    /// One result slot per requested point, filled by whichever worker
    /// runs it; the merge reads them back in request order, which is what
    /// makes the output independent of worker count and timing.
    slots: &'a [Mutex<Option<(RunResult, u64)>>],
    bench: AnyBench,
}

/// Processes one contiguous chunk of the sorted point order on `m`.
///
/// Flat mode restores the latest preceding spine snapshot for every
/// point. Tree mode restores once per chunk, then walks forward taking a
/// refinement leaf at the last step boundary before each point: the
/// armed replay is bounded by one step's writes, and consecutive points
/// share the advance work. Both modes run the same
/// [`Machine::step_thread`] loop as [`run`], so results are identical.
fn sweep_chunk(sh: &SweepShared<'_>, range: std::ops::Range<usize>, m: &mut Machine, worker: u64) {
    use asap_sim::obs::{events, metrics};
    let idxs = &sh.order[range];
    if idxs.is_empty() {
        return;
    }
    let spec = sh.spec;
    let mut bench = sh.bench;
    let state: SharedStates = Rc::new(RefCell::new(Vec::new()));
    // The chunk's refinement leaf: machine + driver state at the last
    // step boundary before the current point, re-snapshotted as the walk
    // advances (depth counts leaves taken since the spine snapshot).
    let mut cur: Option<(MachineSnapshot, Vec<ThreadState>)> = None;
    let mut depth = 0u64;
    if sh.cfg.refine {
        let limit = sh.marks.armed_base + sh.points[idxs[0]].max(1);
        let si = sh.spine_writes.partition_point(|&w| w < limit) - 1;
        let g = sh.spine[si].lock().unwrap();
        m.restore(&g.0);
        state.borrow_mut().clone_from(&g.1);
    }
    for (k, &i) in idxs.iter().enumerate() {
        let n = sh.points[i];
        let armed_abs = sh.marks.armed_base + n;
        // Fork from *before* the crashing write: the latest state
        // strictly below the armed count. (`n = 0` fires on the next
        // write exactly like `n = 1` — the arming check is `>=`.)
        let limit = sh.marks.armed_base + n.max(1);
        let snap_writes;
        if sh.cfg.refine {
            let b = sh.boundaries[sh.boundaries.partition_point(|&w| w < limit) - 1];
            if m.pm_write_ops() < b || cur.is_none() {
                if m.pm_write_ops() < b {
                    // Advance unarmed to the target boundary. Replay of a
                    // restored prefix is deterministic, so the write
                    // count lands on `b` exactly (it is a realized
                    // boundary of this very prefix).
                    let mut steps = shared_steps(bench, spec, &state);
                    m.begin_schedule();
                    while m.pm_write_ops() < b {
                        let Some(t) = m.next_runnable() else { break };
                        let out = m.step_thread(t, &mut steps[t]);
                        debug_assert_ne!(out, StepOutcome::Crashed, "the advance runs unarmed");
                    }
                }
                depth += 1;
                metrics::counter("snapshot.tree.leaves").inc();
                match &mut cur {
                    Some((s, st)) => {
                        *s = m.snapshot();
                        st.clone_from(&state.borrow());
                    }
                    None => cur = Some((m.snapshot(), state.borrow().clone())),
                }
            }
            snap_writes = m.pm_write_ops();
        } else {
            let si = sh.spine_writes.partition_point(|&w| w < limit) - 1;
            let g = sh.spine[si].lock().unwrap();
            m.restore(&g.0);
            state.borrow_mut().clone_from(&g.1);
            snap_writes = sh.spine_writes[si];
        }
        m.arm_crash_after_additional(armed_abs - m.pm_write_ops());
        metrics::counter("snapshot.forks").add(1);
        let mut steps = shared_steps(bench, spec, &state);
        let outcome = m.run(&mut steps);
        drop(steps);
        let replayed = m.pm_write_ops() - snap_writes;
        metrics::counter("snapshot.replayed_writes").add(replayed);
        if events::enabled() {
            events::Event::new("crash_fork")
                .field_str("bench", spec.bench.label())
                .field_str("scheme", &spec.scheme.to_string())
                .field_u64("crash_after", n)
                .field_u64("snap_writes", snap_writes - sh.marks.armed_base)
                .field_u64("replayed", replayed)
                .field_u64("tree_depth", if sh.cfg.refine { depth } else { 0 })
                .field_u64("worker", worker)
                .emit();
        }
        let fspec = spec.with_crash_after(n);
        let r = collect(m, &mut bench, &fspec, outcome, &sh.marks);
        *sh.slots[i].lock().unwrap() = Some((r, replayed));
        if sh.cfg.refine && k + 1 < idxs.len() {
            // Rewind to the leaf for the next point's advance.
            let (s, st) = cur.as_ref().expect("leaf exists after the first fork");
            m.restore(s);
            state.borrow_mut().clone_from(st);
        }
    }
}

/// [`run_sweep`] with an explicit [`SweepConfig`]: the adaptive snapshot
/// tree and the parallel fork engine.
///
/// The prefix simulates once (serially — it is one deterministic
/// simulation), recording spine snapshots at the budget-compacted cadence
/// plus every realized step-boundary write count. Forks then dispatch in
/// ascending point order across `cfg.jobs` scoped workers (self-scheduled
/// over contiguous chunks, each worker owning one scratch [`Machine`] —
/// snapshots are `Send`, so restoring them in a worker is ordinary data
/// movement), and results merge back in request order. Determinism
/// argument: a fork's result depends only on the restored snapshot and
/// the armed count, never on which worker ran it or when, so the merged
/// output is bit-identical to the serial sweep at any `cfg.jobs` — and to
/// the legacy one-run-per-point path.
///
/// # Panics
///
/// Panics if `spec.crash_after` is set (the sweep owns crash arming), or
/// if a scheme invariant or crash-consistency check fails in any fork.
pub fn run_sweep_with(spec: &WorkloadSpec, points: &[u64], cfg: &SweepConfig) -> SweepResult {
    use asap_sim::obs::metrics;
    assert!(
        spec.crash_after.is_none(),
        "sweep specs must not pre-arm a crash (the points are the sweep's)"
    );
    let snap_every = cfg.snap_every.max(1);
    let (mut m, mut bench, marks) = prepare(spec);
    let state = thread_states(spec);
    let mut steps = shared_steps(bench, spec, &state);

    // Prefix: one uninterrupted run, snapshotting machine + driver state
    // at step boundaries. The first snapshot (taken before any step, at
    // the armed origin) covers every crash point on its own; later ones
    // only shorten the replay distance.
    let mut spine: Vec<(MachineSnapshot, Vec<ThreadState>)> =
        vec![(m.snapshot(), state.borrow().clone())];
    let mut boundaries: Vec<u64> = vec![m.pm_write_ops()];
    let mut stride = snap_every;
    let mut next_mark = m.pm_write_ops().saturating_add(stride);
    m.begin_schedule();
    while let Some(t) = m.next_runnable() {
        let out = m.step_thread(t, &mut steps[t]);
        debug_assert_ne!(out, StepOutcome::Crashed, "the prefix runs unarmed");
        let w = m.pm_write_ops();
        if boundaries.last() != Some(&w) {
            boundaries.push(w);
        }
        if w >= next_mark {
            spine.push((m.snapshot(), state.borrow().clone()));
            if cfg.snap_budget > 0 && spine.len() > cfg.snap_budget {
                // Over budget: evict every other snapshot (even indices
                // survive, so the origin always does) and double the
                // cadence — logarithmic thinning keeps memory O(budget)
                // and flat replay distance O(prefix / budget).
                let mut idx = 0usize;
                spine.retain(|_| {
                    let keep = idx.is_multiple_of(2);
                    idx += 1;
                    keep
                });
                stride = stride.saturating_mul(2);
                metrics::counter("snapshot.spine.compactions").inc();
            }
            next_mark = w.saturating_add(stride);
        }
    }
    drop(steps);
    let prefix_writes = m.pm_write_ops() - marks.armed_base;
    for (snap, _) in &spine {
        metrics::counter("snapshot.bytes").add(snap.approx_image_bytes());
    }
    metrics::gauge("snapshot.spine.len").set_max(spine.len() as u64);
    let mut baseline = collect(&mut m, &mut bench, spec, RunOutcome::Completed, &marks);

    // Fork dispatch. Ascending point order keeps each chunk on one
    // stretch of the prefix; chunks are self-scheduled (the `run_grid`
    // pool pattern) so stragglers rebalance.
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by_key(|&i| (points[i], i));
    let jobs = cfg.jobs.max(1).min(points.len().max(1));
    let chunk_count = if jobs == 1 {
        1
    } else {
        (jobs * 4).min(points.len())
    };
    let chunks: Vec<std::ops::Range<usize>> = (0..chunk_count)
        .map(|c| (c * points.len() / chunk_count)..((c + 1) * points.len() / chunk_count))
        .collect();
    let spine_writes: Vec<u64> = spine.iter().map(|(s, _)| s.pm_write_ops()).collect();
    let spine: Vec<Mutex<(MachineSnapshot, Vec<ThreadState>)>> =
        spine.into_iter().map(Mutex::new).collect();
    let slots: Vec<Mutex<Option<(RunResult, u64)>>> =
        points.iter().map(|_| Mutex::new(None)).collect();
    let shared = SweepShared {
        spec,
        marks,
        cfg: *cfg,
        points,
        order: &order,
        boundaries: &boundaries,
        spine: &spine,
        spine_writes: &spine_writes,
        slots: &slots,
        bench,
    };
    if jobs == 1 {
        for r in &chunks {
            sweep_chunk(&shared, r.clone(), &mut m, 0);
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|sc| {
            for w in 0..jobs.min(chunk_count) {
                let shared = &shared;
                let chunks = &chunks;
                let next = &next;
                sc.spawn(move || {
                    let mut wm = machine_for(shared.spec);
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        let Some(r) = chunks.get(c) else { break };
                        sweep_chunk(shared, r.clone(), &mut wm, w as u64);
                    }
                });
            }
        });
    }

    // Merge in request order: output is a pure function of the slots.
    let mut forks = Vec::with_capacity(points.len());
    let mut replayed_writes = 0u64;
    for (i, slot) in slots.into_iter().enumerate() {
        let (r, replayed) = slot
            .into_inner()
            .expect("slot mutex poisoned")
            .expect("every point produces a fork");
        replayed_writes += replayed;
        baseline.crash_points.push(CrashPointOutcome {
            crash_after: points[i],
            crashed: r.outcome == RunOutcome::Crashed,
            uncommitted: r
                .recovery
                .as_ref()
                .map_or(0, |x| x.uncommitted.len() as u64),
            replayed: r.recovery.as_ref().map_or(0, |x| x.replayed.len() as u64),
            restored_lines: r.recovery.as_ref().map_or(0, |x| x.restored_lines),
            tx: r.tx,
        });
        forks.push(r);
    }
    SweepResult {
        baseline,
        forks,
        prefix_writes,
        replayed_writes,
    }
}

/// A lifecycle-guided crash plan: where a sweep should actually crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    /// Chosen crash points (post-setup persistent-write counts),
    /// ascending and deduplicated; at most `budget` of them.
    pub points: Vec<u64>,
    /// Distinct candidate points the lifecycle log yielded before
    /// budget sampling.
    pub candidates: usize,
    /// Post-setup persistent writes of the uninterrupted run (the upper
    /// end of the `crash_after` coordinate).
    pub prefix_writes: u64,
}

/// Enumerates crash points from the machine's persistence lifecycle
/// instead of a blind fixed stride: one recording pilot run notes the
/// persistent-write count at every WPQ acceptance, media persist, audited
/// commit, and region end, and each boundary contributes the write that
/// straddles it (`k` and `k + 1` — crashing just before and just after).
/// When the candidate set exceeds `budget` (0 = unbounded), it is sampled
/// at an even stride that keeps the first and last candidates, so the
/// plan stays deterministic for a given spec.
///
/// The returned points are ordinary `crash_after` coordinates: each fork
/// of the sweep still fingerprints as a legacy `crash_after` cell, so the
/// runcache dedupes them across sweeps and grids.
///
/// # Panics
///
/// Panics if `spec.crash_after` is set.
pub fn enumerate_crash_points(spec: &WorkloadSpec, budget: usize) -> CrashPlan {
    assert!(
        spec.crash_after.is_none(),
        "enumeration pilots must not pre-arm a crash"
    );
    let (mut m, bench, marks) = prepare(spec);
    m.record_crash_candidates(true);
    let state = thread_states(spec);
    let mut steps = shared_steps(bench, spec, &state);
    let outcome = m.run(&mut steps);
    drop(steps);
    debug_assert_eq!(outcome, RunOutcome::Completed, "the pilot runs unarmed");
    let raw = m.take_crash_candidates();
    let prefix_writes = m.pm_write_ops() - marks.armed_base;
    let mut points: Vec<u64> = raw
        .iter()
        .flat_map(|&abs| {
            let k = abs.saturating_sub(marks.armed_base);
            [k, k + 1]
        })
        .filter(|&k| k >= 1 && k <= prefix_writes)
        .collect();
    points.sort_unstable();
    points.dedup();
    let candidates = points.len();
    if budget > 0 && candidates > budget {
        points = (0..budget)
            .map(|j| points[j * (candidates - 1) / (budget - 1).max(1)])
            .collect();
        points.dedup();
    }
    CrashPlan {
        points,
        candidates,
        prefix_writes,
    }
}

/// Publishes the run's host-side data-structure statistics — page-index
/// and last-page-cache traffic, calendar-wheel scan fallbacks, the
/// store-forward slab high-water mark — to the process-global
/// observability registry ([`asap_sim::obs::metrics`]). These observe
/// the *host implementation*, never the simulated machine: figures and
/// cached results don't depend on them, which is why a cache-served cell
/// legitimately contributes nothing here. The counters are plain `Cell`
/// reads flushed once per run, so the simulated hot path pays nothing
/// atomic.
fn flush_host_metrics(m: &Machine) {
    use asap_sim::obs::metrics;
    let img = m.hw().image.access_stats();
    metrics::counter("pmem.image.lookups").add(img.lookups);
    metrics::counter("pmem.image.last_page_hits").add(img.last_page_hits);
    metrics::counter("pmem.image.index_probes").add(img.index_probes);
    metrics::counter("pmem.image.cow_copies").add(img.cow_copies);
    metrics::counter("sim.calendar.full_scans").add(m.hw().mem.calendar_full_scans());
    metrics::gauge("mem.fwd_slab.hwm").set_max(m.hw().mem.fwd_slab_hwm());
    // Domain-partitioned backend (DESIGN.md §12): per-channel event
    // volume, how often the parallel window engaged, cross-domain
    // out-event exchange, and host nanoseconds spent in the serial
    // replay merge (the "frontier stall" the partition pays for
    // exactness).
    let (per_domain, windows, exchange, stall_ns) = m.hw().mem.domain_metrics();
    for (ch, n) in per_domain.iter().enumerate() {
        metrics::counter(&format!("sim.domain.ch{ch}.events")).add(*n);
    }
    metrics::counter("sim.domain.par_windows").add(windows);
    metrics::counter("sim.domain.exchange.events").add(exchange);
    metrics::counter("sim.domain.merge_stall_ns").add(stall_ns);
    // Telemetry sampler health: whether long runs are still sampling at
    // useful resolution. The period doubles on every decimation, so
    // `/metrics` showing `telemetry.period` far above the configured one
    // (or a climbing `telemetry.decimations`) flags resolution loss.
    let ts = m.timeseries();
    if ts.enabled() {
        metrics::gauge("telemetry.series").set(ts.names().len() as u64);
        metrics::gauge("telemetry.samples").set(ts.len() as u64);
        metrics::gauge("telemetry.period").set(ts.period());
        metrics::gauge("telemetry.decimations").set(u64::from(ts.decimations()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BenchId;
    use asap_core::scheme::SchemeKind;

    fn small(bench: BenchId, scheme: SchemeKind) -> WorkloadSpec {
        WorkloadSpec::small(bench, scheme).with_ops(20)
    }

    #[test]
    fn every_benchmark_runs_under_np_and_asap() {
        for bench in BenchId::all() {
            for scheme in [SchemeKind::NoPersist, SchemeKind::Asap] {
                let r = run(&small(bench, scheme));
                assert_eq!(r.outcome, RunOutcome::Completed, "{bench}/{scheme}");
                assert_eq!(r.tx, 2 * 20, "{bench}/{scheme}");
                assert!(r.throughput > 0.0);
            }
        }
    }

    #[test]
    fn asap_outperforms_sw_on_a_tree() {
        let sw = run(&small(BenchId::Bn, SchemeKind::SwUndo));
        let asap = run(&small(BenchId::Bn, SchemeKind::Asap));
        assert!(
            asap.speedup_over(&sw) > 1.0,
            "ASAP {:.4} vs SW {:.4}",
            asap.throughput,
            sw.throughput
        );
    }

    #[test]
    fn results_are_deterministic() {
        let a = run(&small(BenchId::Hm, SchemeKind::Asap));
        let b = run(&small(BenchId::Hm, SchemeKind::Asap));
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.pm_writes, b.pm_writes);
        assert_eq!(a.tx, b.tx);
    }

    #[test]
    fn telemetry_run_exports_deterministic_series_and_lifecycle() {
        use asap_sim::TelemetrySettings;
        let spec = small(BenchId::Hm, SchemeKind::Asap)
            .with_telemetry(TelemetrySettings::enabled().with_period(64));
        let a = run(&spec);
        let b = run(&spec);
        let ts = a.timeseries.as_deref().expect("timeseries exported");
        let lc = a.lifecycle.as_deref().expect("lifecycle exported");
        let dot = a.lifecycle_dot.as_deref().expect("DOT exported");
        assert_eq!(a.timeseries, b.timeseries, "series must be deterministic");
        assert_eq!(a.lifecycle, b.lifecycle);
        assert_eq!(a.hot_lines, b.hot_lines);
        assert!(ts.contains("\"wpq.ch0\""), "series names present: {ts}");
        assert!(lc.contains("\"commits\""));
        assert!(dot.starts_with("digraph regions {"));
        assert!(!a.hot_lines.is_empty());
        // The composed per-run telemetry object parses with the in-tree
        // parser — the harness merge relies on that.
        let obj = a.telemetry_json().expect("telemetry object");
        let v = asap_sim::json::parse(&obj).expect("telemetry JSON parses");
        assert_eq!(v.get("bench").and_then(|b| b.as_str()), Some("HM"), "{obj}");
        // A telemetry-free run exports nothing.
        let off = run(&small(BenchId::Hm, SchemeKind::Asap));
        assert!(off.timeseries.is_none() && off.telemetry_json().is_none());
        assert!(off.hot_lines.is_empty());
    }

    #[test]
    fn stall_breakdown_sums_to_region_cycles() {
        // Table 2 configuration (acceptance criterion): the per-region
        // breakdown components must sum to the mean region duration within
        // one cycle per region.
        let r = run(&WorkloadSpec::new(BenchId::Hm, SchemeKind::Asap).with_ops(50));
        assert!(r.region_cycles_mean > 0.0);
        let diff = (r.stalls.total() - r.region_cycles_mean).abs();
        assert!(
            diff <= 1.0,
            "breakdown {:?} (total {:.2}) vs region.cycles mean {:.2}",
            r.stalls,
            r.stalls.total(),
            r.region_cycles_mean
        );
    }

    #[test]
    fn sync_schemes_attribute_commit_wait() {
        let r = run(&small(BenchId::Hm, SchemeKind::HwUndo));
        assert!(
            r.stalls.commit_wait > 0.0,
            "synchronous commit must show up as commit-wait: {:?}",
            r.stalls
        );
    }

    #[test]
    fn traces_are_deterministic_and_off_by_default() {
        use asap_sim::TraceSettings;
        let plain = run(&small(BenchId::Hm, SchemeKind::Asap));
        assert!(plain.chrome_trace.is_none() && plain.trace_dump.is_none());
        let spec = small(BenchId::Hm, SchemeKind::Asap).with_trace(TraceSettings::enabled());
        let a = run(&spec);
        let b = run(&spec);
        let dump = a.trace_dump.as_deref().expect("trace captured");
        assert!(!dump.is_empty());
        assert_eq!(
            a.trace_dump, b.trace_dump,
            "event streams must be byte-identical"
        );
        assert_eq!(a.chrome_trace, b.chrome_trace);
        assert!(dump.contains("RegionBegin") && dump.contains("WpqAccept"));
    }

    #[test]
    fn sweep_forks_match_legacy_crash_cells() {
        use crate::resultjson::results_identical;
        let spec = small(BenchId::Hm, SchemeKind::Asap).with_tracking();
        // Mixed coverage: early, mid, near-end, and one point beyond the
        // workload's writes (the fork completes instead of crashing).
        let points = [1u64, 7, 23, 40, 1_000_000];
        let sw = run_sweep(&spec, &points, 8);
        assert_eq!(sw.forks.len(), points.len());
        for (i, &n) in points.iter().enumerate() {
            let legacy = run(&spec.with_crash_after(n));
            assert!(
                results_identical(&sw.forks[i], &legacy),
                "fork {n} diverged from the legacy crash_after path"
            );
        }
        // The baseline is the plain uninterrupted run plus the summary.
        let plain = run(&spec);
        let mut stripped = sw.baseline.clone();
        stripped.crash_points.clear();
        assert!(results_identical(&stripped, &plain));
        let cps = &sw.baseline.crash_points;
        assert_eq!(cps.len(), points.len());
        assert!(cps[0].crashed && cps[0].crash_after == 1);
        assert!(!cps[4].crashed, "beyond-the-end point completes");
        assert_eq!(cps[4].tx, plain.tx);
    }

    #[test]
    fn tree_and_parallel_sweeps_match_flat_serial() {
        use crate::resultjson::results_identical;
        let spec = small(BenchId::Hm, SchemeKind::Asap).with_tracking();
        let points = [3u64, 1, 17, 17, 30, 1_000_000];
        let flat = run_sweep_with(&spec, &points, &SweepConfig::flat(8));
        for cfg in [
            SweepConfig::tree(8),
            SweepConfig::tree(8).with_budget(2),
            SweepConfig::flat(8).with_jobs(3),
            SweepConfig::tree(8).with_jobs(2),
            SweepConfig::tree(1).with_budget(1).with_jobs(4),
        ] {
            let sw = run_sweep_with(&spec, &points, &cfg);
            assert!(
                results_identical(&sw.baseline, &flat.baseline),
                "baseline diverged under {cfg:?}"
            );
            assert_eq!(sw.baseline.crash_points, flat.baseline.crash_points);
            assert_eq!(sw.prefix_writes, flat.prefix_writes);
            for (i, (a, b)) in sw.forks.iter().zip(&flat.forks).enumerate() {
                assert!(
                    results_identical(a, b),
                    "fork {} (point {}) diverged under {cfg:?}",
                    i,
                    points[i]
                );
            }
            if cfg.refine {
                assert!(
                    sw.replayed_writes < flat.replayed_writes,
                    "tree replays less: {} vs flat {} under {cfg:?}",
                    sw.replayed_writes,
                    flat.replayed_writes
                );
            }
        }
    }

    #[test]
    fn enumeration_is_deterministic_lifecycle_guided_and_budgeted() {
        let spec = small(BenchId::Hm, SchemeKind::Asap);
        let a = enumerate_crash_points(&spec, 0);
        let b = enumerate_crash_points(&spec, 0);
        assert_eq!(a, b, "plans must be deterministic");
        assert!(!a.points.is_empty());
        assert_eq!(a.candidates, a.points.len(), "budget 0 keeps everything");
        assert!(a.points.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        assert!(*a.points.first().unwrap() >= 1);
        assert!(*a.points.last().unwrap() <= a.prefix_writes);
        // Sampling keeps the envelope and respects the budget.
        let s = enumerate_crash_points(&spec, 5);
        assert!(s.points.len() <= 5);
        assert_eq!(s.candidates, a.candidates);
        assert_eq!(s.points.first(), a.points.first());
        assert_eq!(s.points.last(), a.points.last());
        assert_eq!(s.prefix_writes, a.prefix_writes);
        // The plan's points are ordinary crash_after coordinates: a
        // sweep over them behaves like any other sweep.
        let sw = run_sweep_with(&spec, &s.points, &SweepConfig::tree(8));
        assert!(sw.baseline.crash_points.iter().all(|p| p.crashed));
    }

    #[test]
    fn crash_run_recovers_consistently() {
        for scheme in [SchemeKind::Asap, SchemeKind::HwUndo] {
            let spec = small(BenchId::Hm, scheme)
                .with_tracking()
                .with_crash_after(40);
            let r = run(&spec);
            assert_eq!(r.outcome, RunOutcome::Crashed, "{scheme}");
            assert!(r.recovery.is_some());
        }
    }
}
