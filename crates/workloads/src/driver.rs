//! Turns a [`WorkloadSpec`] into a simulated run and its measurements.

use asap_core::machine::{Machine, MachineConfig, RunOutcome, StepFn, ThreadCtx};
use asap_core::scheme::RecoveryReport;
use asap_sim::Stats;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::spec::WorkloadSpec;
use crate::structures::{AnyBench, Benchmark};

/// Everything a figure needs from one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The spec that produced this result.
    pub spec: WorkloadSpec,
    /// Transactions completed.
    pub tx: u64,
    /// Execution makespan in cycles (excludes the post-run drain tail).
    pub exec_cycles: u64,
    /// Makespan after draining all asynchronous work.
    pub drained_cycles: u64,
    /// Transactions per kilocycle.
    pub throughput: f64,
    /// 64-byte writes that reached the PM media.
    pub pm_writes: u64,
    /// Mean cycles per atomic region (Fig. 8's metric).
    pub region_cycles_mean: f64,
    /// Full statistics registry.
    pub stats: Stats,
    /// Whether the run completed or crashed.
    pub outcome: RunOutcome,
    /// Recovery report when the run crashed and recovered.
    pub recovery: Option<RecoveryReport>,
}

impl RunResult {
    /// Throughput of `self` relative to `base`.
    pub fn speedup_over(&self, base: &RunResult) -> f64 {
        if base.throughput == 0.0 {
            0.0
        } else {
            self.throughput / base.throughput
        }
    }

    /// PM write traffic of `self` relative to `base`.
    pub fn traffic_ratio_to(&self, base: &RunResult) -> f64 {
        if base.pm_writes == 0 {
            0.0
        } else {
            self.pm_writes as f64 / base.pm_writes as f64
        }
    }
}

/// Builds the machine for a spec.
fn machine_for(spec: &WorkloadSpec) -> Machine {
    let mut cfg = MachineConfig::new(spec.scheme, spec.threads).with_system(spec.system);
    if spec.track {
        cfg = cfg.with_tracking();
    }
    Machine::new(cfg)
}

/// Runs a spec end to end: setup, timed run, drain, verification.
///
/// When the spec arms a crash, the run stops at the power failure and
/// recovery executes (with shadow verification if tracking is on); the
/// result then reports the crashed outcome and the recovery report.
///
/// # Examples
///
/// Compare ASAP against the software baseline on the hash-map benchmark:
///
/// ```
/// use asap_core::scheme::SchemeKind;
/// use asap_workloads::{run, BenchId, WorkloadSpec};
///
/// let sw = run(&WorkloadSpec::small(BenchId::Hm, SchemeKind::SwUndo).with_ops(10));
/// let asap = run(&WorkloadSpec::small(BenchId::Hm, SchemeKind::Asap).with_ops(10));
/// assert!(asap.speedup_over(&sw) > 1.0);
/// ```
///
/// # Panics
///
/// Panics if a structural invariant or crash-consistency check fails —
/// that is a bug in the scheme under test, which is the point.
pub fn run(spec: &WorkloadSpec) -> RunResult {
    let mut m = machine_for(spec);
    let mut bench = AnyBench::create(&mut m, spec);
    bench.setup(&mut m, spec);
    // Steady state starts here: drain setup persists, barrier the thread
    // clocks, and exclude setup from the per-region and traffic metrics.
    m.drain();
    m.sync_thread_clocks();
    m.reset_summary("region.cycles");
    let pm_writes_setup = m.pm_write_traffic();
    // Arm the crash counter only after setup so setup always survives.
    if let Some(n) = spec.crash_after {
        m.arm_crash_after_additional(n);
    }
    let setup_end = m.makespan();
    let mut steps: Vec<StepFn> = (0..spec.threads as usize)
        .map(|t| {
            let b = bench;
            let s = *spec;
            let mut rng = StdRng::seed_from_u64(s.seed ^ (t as u64).wrapping_mul(0x9e37));
            let mut remaining = s.ops_per_thread;
            Box::new(move |ctx: &mut ThreadCtx| {
                if remaining == 0 {
                    return false;
                }
                b.step(ctx, &mut rng, &s);
                ctx.complete_tx();
                remaining -= 1;
                remaining > 0
            }) as StepFn
        })
        .collect();
    let outcome = m.run(&mut steps);
    drop(steps);
    let (exec, drained, recovery) = match outcome {
        RunOutcome::Completed => {
            let exec = m.makespan();
            let drained = m.drain();
            bench.verify(&mut m).expect("structural invariants after run");
            (exec, drained, None)
        }
        RunOutcome::Crashed => {
            let exec = m.makespan();
            let report = m.recover(); // panics on a consistency violation
            // Atomic durability means structural invariants hold at region
            // boundaries — so they must hold in the recovered image too.
            bench.verify(&mut m).expect("structural invariants after recovery");
            (exec, exec, Some(report))
        }
    };
    let stats = m.stats();
    let tx = m.tx_count();
    let cycles = exec.raw().saturating_sub(setup_end.raw()).max(1);
    RunResult {
        spec: *spec,
        tx,
        exec_cycles: cycles,
        drained_cycles: drained.raw(),
        throughput: tx as f64 * 1000.0 / cycles as f64,
        pm_writes: stats.get("pm.write.total").saturating_sub(pm_writes_setup),
        region_cycles_mean: stats.summary("region.cycles").map_or(0.0, |s| s.mean()),
        stats,
        outcome,
        recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BenchId;
    use asap_core::scheme::SchemeKind;

    fn small(bench: BenchId, scheme: SchemeKind) -> WorkloadSpec {
        WorkloadSpec::small(bench, scheme).with_ops(20)
    }

    #[test]
    fn every_benchmark_runs_under_np_and_asap() {
        for bench in BenchId::all() {
            for scheme in [SchemeKind::NoPersist, SchemeKind::Asap] {
                let r = run(&small(bench, scheme));
                assert_eq!(r.outcome, RunOutcome::Completed, "{bench}/{scheme}");
                assert_eq!(r.tx, 2 * 20, "{bench}/{scheme}");
                assert!(r.throughput > 0.0);
            }
        }
    }

    #[test]
    fn asap_outperforms_sw_on_a_tree() {
        let sw = run(&small(BenchId::Bn, SchemeKind::SwUndo));
        let asap = run(&small(BenchId::Bn, SchemeKind::Asap));
        assert!(
            asap.speedup_over(&sw) > 1.0,
            "ASAP {:.4} vs SW {:.4}",
            asap.throughput,
            sw.throughput
        );
    }

    #[test]
    fn results_are_deterministic() {
        let a = run(&small(BenchId::Hm, SchemeKind::Asap));
        let b = run(&small(BenchId::Hm, SchemeKind::Asap));
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.pm_writes, b.pm_writes);
        assert_eq!(a.tx, b.tx);
    }

    #[test]
    fn crash_run_recovers_consistently() {
        for scheme in [SchemeKind::Asap, SchemeKind::HwUndo] {
            let spec = small(BenchId::Hm, scheme).with_tracking().with_crash_after(40);
            let r = run(&spec);
            assert_eq!(r.outcome, RunOutcome::Crashed, "{scheme}");
            assert!(r.recovery.is_some());
        }
    }
}
