//! The Table 3 benchmarks of the ASAP paper, over the simulated PM heap.
//!
//! | Id | Benchmark | Structure |
//! |----|-----------|-----------|
//! | BN | BinaryTree | unbalanced binary search tree |
//! | BT | B-Tree | B+tree, fanout 7 |
//! | CT | C-Tree | crit-bit (bitwise trie) |
//! | EO | Echo | versioned key-value store |
//! | HM | HashMap | chained hash table, per-bucket locks |
//! | Q  | Queue | linked FIFO queue |
//! | RB | RBTree | red-black tree |
//! | SS | StringSwap | random swaps in a string array |
//! | TPCC | TPC-C | New Order transaction |
//!
//! Every benchmark implements [`Benchmark`]: a `setup` phase populating
//! persistent state and per-thread `step` closures, each step being one
//! lock-guarded atomic region (insert/update of a `value_bytes` payload —
//! 64B or 2KB in the paper's Figs. 7/8). The [`driver`] turns a
//! [`WorkloadSpec`] into a [`RunResult`] with the throughput, cycles and
//! PM-traffic numbers the figures plot.

#![warn(missing_docs)]

pub mod driver;
pub mod pmops;
pub mod resultjson;
pub mod spec;
pub mod structures;

pub use driver::{
    enumerate_crash_points, run, run_sweep, run_sweep_with, CrashPlan, CrashPointOutcome,
    RunResult, StallBreakdown, SweepConfig, SweepResult,
};
pub use spec::{BenchId, WorkloadSpec};
pub use structures::Benchmark;
