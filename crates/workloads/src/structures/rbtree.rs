//! RB: a red-black tree with parent pointers.
//!
//! Insertion rebalancing (recolors and rotations) touches many lines per
//! region, making RB the most pointer-write-intensive tree of the suite.

use asap_core::machine::{Machine, ThreadCtx};
use asap_pmem::PmAddr;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::pmops::{as_ptr, debug_field, read_field, write_field, write_payload, NULL};
use crate::spec::WorkloadSpec;
use crate::structures::Benchmark;

// Node layout: key, value ptr, left, right, parent, color.
const KEY: u64 = 0;
const VAL: u64 = 1;
const LEFT: u64 = 2;
const RIGHT: u64 = 3;
const PARENT: u64 = 4;
const COLOR: u64 = 5;
const NODE_BYTES: u64 = 48;

const RED: u64 = 1;
const BLACK: u64 = 0;

/// The RB benchmark handle.
#[derive(Clone, Copy, Debug)]
pub struct RbTree {
    root_cell: PmAddr,
    lock: usize,
}

impl RbTree {
    /// Allocates the tree anchor.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn create(m: &mut Machine, _spec: &WorkloadSpec) -> Self {
        RbTree {
            root_cell: m.pm_alloc(8).expect("heap"),
            lock: 0,
        }
    }

    fn color(ctx: &mut ThreadCtx, node: u64) -> u64 {
        match as_ptr(node) {
            Some(n) => read_field(ctx, n, COLOR),
            None => BLACK, // nil nodes are black
        }
    }

    fn set_child(&self, ctx: &mut ThreadCtx, parent: u64, dir: u64, child: u64) {
        match as_ptr(parent) {
            Some(p) => write_field(ctx, p, dir, child),
            None => ctx.write_u64(self.root_cell, child),
        }
        if let Some(c) = as_ptr(child) {
            write_field(ctx, c, PARENT, parent);
        }
    }

    /// Rotates around `x` bringing its `dir`-side child up
    /// (`dir == RIGHT` is a left-rotation).
    fn rotate(&self, ctx: &mut ThreadCtx, x: PmAddr, dir: u64) {
        let other = if dir == RIGHT { LEFT } else { RIGHT };
        let y = PmAddr(read_field(ctx, x, dir));
        let beta = read_field(ctx, y, other);
        let xp = read_field(ctx, x, PARENT);
        write_field(ctx, x, dir, beta);
        if let Some(b) = as_ptr(beta) {
            write_field(ctx, b, PARENT, x.0);
        }
        // Hook y where x was.
        let x_dir = match as_ptr(xp) {
            Some(p) if read_field(ctx, p, LEFT) == x.0 => Some(LEFT),
            Some(_) => Some(RIGHT),
            None => None,
        };
        match x_dir {
            Some(d) => self.set_child(ctx, xp, d, y.0),
            None => self.set_child(ctx, NULL, LEFT, y.0),
        }
        write_field(ctx, y, other, x.0);
        write_field(ctx, x, PARENT, y.0);
    }

    fn fixup(&self, ctx: &mut ThreadCtx, mut z: PmAddr) {
        loop {
            let zp = read_field(ctx, z, PARENT);
            if Self::color(ctx, zp) == BLACK {
                break;
            }
            let p = PmAddr(zp);
            let g = PmAddr(read_field(ctx, p, PARENT)); // red parent ⇒ has grandparent
            let p_is_left = read_field(ctx, g, LEFT) == p.0;
            let (side, other) = if p_is_left {
                (LEFT, RIGHT)
            } else {
                (RIGHT, LEFT)
            };
            let uncle = read_field(ctx, g, other);
            if Self::color(ctx, uncle) == RED {
                write_field(ctx, p, COLOR, BLACK);
                write_field(ctx, PmAddr(uncle), COLOR, BLACK);
                write_field(ctx, g, COLOR, RED);
                z = g;
            } else {
                if read_field(ctx, p, other) == z.0 {
                    // Inner child: rotate parent outward first.
                    self.rotate(ctx, p, other);
                    z = p;
                }
                let p2 = PmAddr(read_field(ctx, z, PARENT));
                let g2 = PmAddr(read_field(ctx, p2, PARENT));
                write_field(ctx, p2, COLOR, BLACK);
                write_field(ctx, g2, COLOR, RED);
                self.rotate(ctx, g2, side);
                break;
            }
        }
        let root = ctx.read_u64(self.root_cell);
        write_field(ctx, PmAddr(root), COLOR, BLACK);
    }

    /// Inserts `key` or updates its value, inside the current region.
    pub fn put(&self, ctx: &mut ThreadCtx, key: u64, tag: u64, value_bytes: u64) {
        let mut parent = NULL;
        let mut dir = LEFT;
        let mut cur = ctx.read_u64(self.root_cell);
        while let Some(n) = as_ptr(cur) {
            let k = read_field(ctx, n, KEY);
            if k == key {
                let val = PmAddr(read_field(ctx, n, VAL));
                write_payload(ctx, val, key, tag, value_bytes as usize);
                return;
            }
            parent = cur;
            dir = if key < k { LEFT } else { RIGHT };
            cur = read_field(ctx, n, dir);
        }
        let node = ctx.pm_alloc(NODE_BYTES).expect("heap");
        let val = ctx.pm_alloc(value_bytes).expect("heap");
        write_payload(ctx, val, key, tag, value_bytes as usize);
        write_field(ctx, node, KEY, key);
        write_field(ctx, node, VAL, val.0);
        write_field(ctx, node, LEFT, NULL);
        write_field(ctx, node, RIGHT, NULL);
        write_field(ctx, node, COLOR, RED);
        write_field(ctx, node, PARENT, parent);
        self.set_child(ctx, parent, dir, node.0);
        self.fixup(ctx, node);
    }

    /// Looks `key` up.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64, value_bytes: u64) -> Option<Vec<u8>> {
        let mut cur = as_ptr(ctx.read_u64(self.root_cell))?;
        loop {
            let k = read_field(ctx, cur, KEY);
            if k == key {
                let mut buf = vec![0u8; value_bytes as usize];
                let val = read_field(ctx, cur, VAL);
                ctx.read_bytes(PmAddr(val), &mut buf);
                return Some(buf);
            }
            cur = as_ptr(read_field(ctx, cur, if key < k { LEFT } else { RIGHT }))?;
        }
    }

    /// Checks the red-black invariants, returning `(keys, black_height)`.
    fn check(m: &mut Machine, node: u64, keys: &mut Vec<u64>) -> Result<u64, String> {
        let Some(n) = as_ptr(node) else { return Ok(1) };
        let color = debug_field(m, n, COLOR);
        let left = debug_field(m, n, LEFT);
        let right = debug_field(m, n, RIGHT);
        if color == RED {
            for c in [left, right] {
                if let Some(cp) = as_ptr(c) {
                    if debug_field(m, cp, COLOR) == RED {
                        return Err(format!(
                            "red-red violation at key {}",
                            debug_field(m, n, KEY)
                        ));
                    }
                }
            }
        }
        let lh = Self::check(m, left, keys)?;
        keys.push(debug_field(m, n, KEY));
        let rh = Self::check(m, right, keys)?;
        if lh != rh {
            return Err(format!(
                "black-height mismatch at key {}: {lh} vs {rh}",
                debug_field(m, n, KEY)
            ));
        }
        Ok(lh + u64::from(color == BLACK))
    }

    /// In-order key walk.
    pub fn debug_keys(&self, m: &mut Machine) -> Vec<u64> {
        let root = m.debug_read_u64(self.root_cell);
        let mut keys = Vec::new();
        Self::check(m, root, &mut keys).expect("valid red-black tree");
        keys
    }
}

impl Benchmark for RbTree {
    fn setup(&mut self, m: &mut Machine, spec: &WorkloadSpec) {
        let tree = *self;
        let spec = *spec;
        let stride = (spec.keyspace / spec.setup_keys.max(1)).max(1);
        for start in (0..spec.setup_keys).step_by(8) {
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                for i in start..(start + 8).min(spec.setup_keys) {
                    tree.put(ctx, i * stride, 0, spec.value_bytes);
                }
                ctx.end_region();
            });
        }
    }

    fn step(&self, ctx: &mut ThreadCtx, rng: &mut StdRng, spec: &WorkloadSpec) {
        let key = rng.random_range(0..spec.keyspace);
        let tag = rng.random::<u64>();
        let tree = *self;
        ctx.compute(80);
        ctx.locked_region(tree.lock, |ctx| {
            tree.put(ctx, key, tag, spec.value_bytes);
        });
    }

    fn verify(&self, m: &mut Machine) -> Result<(), String> {
        let root = m.debug_read_u64(self.root_cell);
        if let Some(r) = as_ptr(root) {
            if debug_field(m, r, COLOR) != BLACK {
                return Err("red root".into());
            }
        }
        let mut keys = Vec::new();
        Self::check(m, root, &mut keys)?;
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err("red-black tree keys not strictly sorted".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmops::payload;
    use asap_core::machine::MachineConfig;
    use asap_core::scheme::SchemeKind;
    use rand::SeedableRng;

    fn harness() -> (Machine, RbTree, WorkloadSpec) {
        let spec = WorkloadSpec::small(crate::BenchId::Rb, SchemeKind::NoPersist);
        let mut m = Machine::new(MachineConfig::small(spec.scheme, spec.threads));
        let t = RbTree::create(&mut m, &spec);
        (m, t, spec)
    }

    #[test]
    fn ascending_inserts_stay_balanced() {
        let (mut m, t, _s) = harness();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            for k in 0..64u64 {
                t.put(ctx, k, k, 64);
            }
            ctx.end_region();
        });
        assert_eq!(t.debug_keys(&mut m), (0..64).collect::<Vec<_>>());
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn descending_inserts_stay_balanced() {
        let (mut m, t, _s) = harness();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            for k in (0..64u64).rev() {
                t.put(ctx, k, k, 64);
            }
            ctx.end_region();
        });
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn model_check_against_btreemap() {
        let (mut m, t, _s) = harness();
        let mut model = std::collections::BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(12);
        for i in 0..150u64 {
            let key = rng.random_range(0..80u64);
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                t.put(ctx, key, i, 64);
                ctx.end_region();
            });
            model.insert(key, i);
        }
        assert_eq!(
            t.debug_keys(&mut m),
            model.keys().copied().collect::<Vec<_>>()
        );
        for (k, tag) in model {
            m.run_thread(0, |ctx| {
                assert_eq!(t.get(ctx, k, 64).unwrap(), payload(k, tag, 64), "key {k}");
            });
        }
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn random_steps_keep_invariants() {
        let (mut m, mut t, spec) = harness();
        t.setup(&mut m, &spec);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..80 {
            m.run_thread(0, |ctx| t.step(ctx, &mut rng, &spec));
        }
        m.drain();
        t.verify(&mut m).unwrap();
    }
}
