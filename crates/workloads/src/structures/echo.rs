//! EO: Echo, a scalable versioned key-value store for PM.
//!
//! Modeled after the Echo store used by the paper's benchmark suite: a
//! hash index whose entries carry a monotonically increasing version; a
//! put installs a freshly allocated value snapshot and bumps the version
//! (out-of-place value update, in-place index update).

use asap_core::machine::{Machine, ThreadCtx};
use asap_pmem::PmAddr;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::pmops::{as_ptr, debug_field, read_field, write_field, write_payload};
use crate::spec::WorkloadSpec;
use crate::structures::Benchmark;

// Entry layout: key, version, value ptr, next.
const KEY: u64 = 0;
const VER: u64 = 1;
const VAL: u64 = 2;
const NEXT: u64 = 3;
const ENTRY_BYTES: u64 = 32;

/// Number of index buckets.
pub const BUCKETS: u64 = 256;

/// The EO benchmark handle.
#[derive(Clone, Copy, Debug)]
pub struct Echo {
    buckets: PmAddr,
    num_locks: u64,
}

impl Echo {
    /// Allocates the index.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn create(m: &mut Machine, _spec: &WorkloadSpec) -> Self {
        Echo {
            buckets: m.pm_alloc(BUCKETS * 8).expect("heap"),
            num_locks: m.config().num_locks as u64,
        }
    }

    fn bucket(&self, key: u64) -> u64 {
        (key.wrapping_mul(0xff51_afd7_ed55_8ccd) >> 33) % BUCKETS
    }

    /// The lock guarding `key`'s bucket.
    pub fn lock_for(&self, key: u64) -> usize {
        (self.bucket(key) % self.num_locks) as usize
    }

    /// Stores a new version of `key`, inside the current region.
    pub fn put(&self, ctx: &mut ThreadCtx, key: u64, tag: u64, value_bytes: u64) {
        let head_cell = self.buckets.offset(self.bucket(key) * 8);
        let mut cur = as_ptr(ctx.read_u64(head_cell));
        while let Some(e) = cur {
            if read_field(ctx, e, KEY) == key {
                // Out-of-place update: new snapshot, bump version, swing
                // the pointer, retire the old snapshot.
                let old = PmAddr(read_field(ctx, e, VAL));
                let new = ctx.pm_alloc(value_bytes).expect("heap");
                write_payload(ctx, new, key, tag, value_bytes as usize);
                let ver = read_field(ctx, e, VER);
                write_field(ctx, e, VAL, new.0);
                write_field(ctx, e, VER, ver + 1);
                ctx.pm_free(old).expect("old snapshot allocated");
                return;
            }
            cur = as_ptr(read_field(ctx, e, NEXT));
        }
        let entry = ctx.pm_alloc(ENTRY_BYTES).expect("heap");
        let val = ctx.pm_alloc(value_bytes).expect("heap");
        write_payload(ctx, val, key, tag, value_bytes as usize);
        write_field(ctx, entry, KEY, key);
        write_field(ctx, entry, VER, 1);
        write_field(ctx, entry, VAL, val.0);
        let head = ctx.read_u64(head_cell);
        write_field(ctx, entry, NEXT, head);
        ctx.write_u64(head_cell, entry.0);
    }

    /// Reads `key`'s latest version: `(version, bytes)`.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64, value_bytes: u64) -> Option<(u64, Vec<u8>)> {
        let head_cell = self.buckets.offset(self.bucket(key) * 8);
        let mut cur = as_ptr(ctx.read_u64(head_cell));
        while let Some(e) = cur {
            if read_field(ctx, e, KEY) == key {
                let ver = read_field(ctx, e, VER);
                let mut buf = vec![0u8; value_bytes as usize];
                let val = read_field(ctx, e, VAL);
                ctx.read_bytes(PmAddr(val), &mut buf);
                return Some((ver, buf));
            }
            cur = as_ptr(read_field(ctx, e, NEXT));
        }
        None
    }

    /// `(key, version)` pairs by debug walk.
    pub fn debug_entries(&self, m: &mut Machine) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for b in 0..BUCKETS {
            let mut cur = m.debug_read_u64(self.buckets.offset(b * 8));
            while let Some(e) = as_ptr(cur) {
                out.push((debug_field(m, e, KEY), debug_field(m, e, VER)));
                cur = debug_field(m, e, NEXT);
            }
        }
        out
    }
}

impl Benchmark for Echo {
    fn setup(&mut self, m: &mut Machine, spec: &WorkloadSpec) {
        let store = *self;
        let spec = *spec;
        let stride = (spec.keyspace / spec.setup_keys.max(1)).max(1);
        for start in (0..spec.setup_keys).step_by(8) {
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                for i in start..(start + 8).min(spec.setup_keys) {
                    store.put(ctx, i * stride, 0, spec.value_bytes);
                }
                ctx.end_region();
            });
        }
    }

    fn step(&self, ctx: &mut ThreadCtx, rng: &mut StdRng, spec: &WorkloadSpec) {
        let key = rng.random_range(0..spec.keyspace);
        let tag = rng.random::<u64>();
        let store = *self;
        ctx.compute(50);
        ctx.locked_region(store.lock_for(key), |ctx| {
            store.put(ctx, key, tag, spec.value_bytes);
        });
    }

    fn verify(&self, m: &mut Machine) -> Result<(), String> {
        let entries = self.debug_entries(m);
        let mut keys: Vec<u64> = entries.iter().map(|(k, _)| *k).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        if keys.len() != n {
            return Err("echo index has duplicate keys".into());
        }
        if entries.iter().any(|(_, v)| *v == 0) {
            return Err("echo entry with version 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmops::payload;
    use asap_core::machine::MachineConfig;
    use asap_core::scheme::SchemeKind;
    use rand::SeedableRng;

    fn harness() -> (Machine, Echo, WorkloadSpec) {
        let spec = WorkloadSpec::small(crate::BenchId::Eo, SchemeKind::NoPersist);
        let mut m = Machine::new(MachineConfig::small(spec.scheme, spec.threads));
        let t = Echo::create(&mut m, &spec);
        (m, t, spec)
    }

    #[test]
    fn versions_increment_per_put() {
        let (mut m, t, _s) = harness();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            t.put(ctx, 10, 1, 64);
            t.put(ctx, 10, 2, 64);
            t.put(ctx, 10, 3, 64);
            ctx.end_region();
            let (ver, bytes) = t.get(ctx, 10, 64).unwrap();
            assert_eq!(ver, 3);
            assert_eq!(bytes, payload(10, 3, 64));
            assert_eq!(t.get(ctx, 11, 64), None);
        });
    }

    #[test]
    fn old_snapshots_are_reclaimed() {
        let (mut m, t, _s) = harness();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            t.put(ctx, 5, 1, 64);
            ctx.end_region();
        });
        let after_insert = m.hw().heap.live_bytes();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            t.put(ctx, 5, 2, 64);
            ctx.end_region();
        });
        assert_eq!(
            m.hw().heap.live_bytes(),
            after_insert,
            "update is allocation-neutral"
        );
    }

    #[test]
    fn random_steps_keep_invariants() {
        let (mut m, mut t, spec) = harness();
        t.setup(&mut m, &spec);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..60 {
            m.run_thread(0, |ctx| t.step(ctx, &mut rng, &spec));
        }
        m.drain();
        t.verify(&mut m).unwrap();
        assert!(t.debug_entries(&mut m).len() >= spec.setup_keys as usize);
    }
}
