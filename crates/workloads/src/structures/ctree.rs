//! CT: a crit-bit tree (bitwise trie), the "c-tree" of WHISPER.
//!
//! Internal nodes test one bit of the key (most-significant differing bit
//! first); leaves hold a key and an out-of-line value. Pointers are tagged
//! in their LSB to distinguish leaves (all allocations are 64-byte
//! aligned, so the bit is free).

use asap_core::machine::{Machine, ThreadCtx};
use asap_pmem::PmAddr;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::pmops::{debug_field, read_field, write_field, write_payload, NULL};
use crate::spec::WorkloadSpec;
use crate::structures::Benchmark;

// Leaf layout: key, value ptr.
const LKEY: u64 = 0;
const LVAL: u64 = 1;
// Internal layout: bit index, left, right.
const IBIT: u64 = 0;
const ILEFT: u64 = 1;
const IRIGHT: u64 = 2;

const LEAF_TAG: u64 = 1;

fn is_leaf(p: u64) -> bool {
    p & LEAF_TAG != 0
}

fn untag(p: u64) -> PmAddr {
    PmAddr(p & !LEAF_TAG)
}

/// The CT benchmark handle.
#[derive(Clone, Copy, Debug)]
pub struct CritBitTree {
    root_cell: PmAddr,
    lock: usize,
}

impl CritBitTree {
    /// Allocates the tree anchor.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn create(m: &mut Machine, _spec: &WorkloadSpec) -> Self {
        CritBitTree {
            root_cell: m.pm_alloc(8).expect("heap"),
            lock: 0,
        }
    }

    fn new_leaf(ctx: &mut ThreadCtx, key: u64, tag: u64, value_bytes: u64) -> u64 {
        let leaf = ctx.pm_alloc(16).expect("heap");
        let val = ctx.pm_alloc(value_bytes).expect("heap");
        write_payload(ctx, val, key, tag, value_bytes as usize);
        write_field(ctx, leaf, LKEY, key);
        write_field(ctx, leaf, LVAL, val.0);
        leaf.0 | LEAF_TAG
    }

    /// Inserts `key` or updates its value, inside the current region.
    pub fn put(&self, ctx: &mut ThreadCtx, key: u64, tag: u64, value_bytes: u64) {
        let root = ctx.read_u64(self.root_cell);
        if root == NULL {
            let leaf = Self::new_leaf(ctx, key, tag, value_bytes);
            ctx.write_u64(self.root_cell, leaf);
            return;
        }
        // Walk to the best-matching leaf.
        let mut p = root;
        while !is_leaf(p) {
            let bit = read_field(ctx, untag(p), IBIT);
            let dir = if (key >> bit) & 1 == 1 { IRIGHT } else { ILEFT };
            p = read_field(ctx, untag(p), dir);
        }
        let found_key = read_field(ctx, untag(p), LKEY);
        if found_key == key {
            let val = PmAddr(read_field(ctx, untag(p), LVAL));
            write_payload(ctx, val, key, tag, value_bytes as usize);
            return;
        }
        // Most-significant differing bit decides the new node's position.
        let crit = 63 - (key ^ found_key).leading_zeros() as u64;
        // Re-descend to the first edge whose subtree tests a less
        // significant bit than `crit` (or a leaf).
        let mut parent_cell = self.root_cell;
        let mut cur = ctx.read_u64(parent_cell);
        while !is_leaf(cur) {
            let node = untag(cur);
            let bit = read_field(ctx, node, IBIT);
            if bit < crit {
                break;
            }
            let dir = if (key >> bit) & 1 == 1 { IRIGHT } else { ILEFT };
            parent_cell = node.offset(8 * dir);
            cur = ctx.read_u64(parent_cell);
        }
        let leaf = Self::new_leaf(ctx, key, tag, value_bytes);
        let inner = ctx.pm_alloc(24).expect("heap");
        write_field(ctx, inner, IBIT, crit);
        if (key >> crit) & 1 == 1 {
            write_field(ctx, inner, IRIGHT, leaf);
            write_field(ctx, inner, ILEFT, cur);
        } else {
            write_field(ctx, inner, ILEFT, leaf);
            write_field(ctx, inner, IRIGHT, cur);
        }
        ctx.write_u64(parent_cell, inner.0);
    }

    /// Looks `key` up.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64, value_bytes: u64) -> Option<Vec<u8>> {
        let mut p = ctx.read_u64(self.root_cell);
        if p == NULL {
            return None;
        }
        while !is_leaf(p) {
            let bit = read_field(ctx, untag(p), IBIT);
            let dir = if (key >> bit) & 1 == 1 { IRIGHT } else { ILEFT };
            p = read_field(ctx, untag(p), dir);
        }
        if read_field(ctx, untag(p), LKEY) != key {
            return None;
        }
        let mut buf = vec![0u8; value_bytes as usize];
        let val = read_field(ctx, untag(p), LVAL);
        ctx.read_bytes(PmAddr(val), &mut buf);
        Some(buf)
    }

    fn debug_walk(m: &mut Machine, p: u64, bound: u64, out: &mut Vec<u64>) -> Result<(), String> {
        if p == NULL {
            return Ok(());
        }
        if is_leaf(p) {
            out.push(debug_field(m, untag(p), LKEY));
            return Ok(());
        }
        let bit = debug_field(m, untag(p), IBIT);
        if bit >= bound {
            return Err(format!(
                "crit-bit order violated: bit {bit} under bound {bound}"
            ));
        }
        let l = debug_field(m, untag(p), ILEFT);
        let r = debug_field(m, untag(p), IRIGHT);
        Self::debug_walk(m, l, bit, out)?;
        Self::debug_walk(m, r, bit, out)
    }

    /// In-order key walk.
    pub fn debug_keys(&self, m: &mut Machine) -> Vec<u64> {
        let root = m.debug_read_u64(self.root_cell);
        let mut out = Vec::new();
        Self::debug_walk(m, root, 64, &mut out).expect("valid trie");
        out
    }
}

impl Benchmark for CritBitTree {
    fn setup(&mut self, m: &mut Machine, spec: &WorkloadSpec) {
        let tree = *self;
        let spec = *spec;
        let stride = (spec.keyspace / spec.setup_keys.max(1)).max(1);
        for start in (0..spec.setup_keys).step_by(8) {
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                for i in start..(start + 8).min(spec.setup_keys) {
                    tree.put(ctx, i * stride, 0, spec.value_bytes);
                }
                ctx.end_region();
            });
        }
    }

    fn step(&self, ctx: &mut ThreadCtx, rng: &mut StdRng, spec: &WorkloadSpec) {
        let key = rng.random_range(0..spec.keyspace);
        let tag = rng.random::<u64>();
        let tree = *self;
        ctx.compute(50);
        ctx.locked_region(tree.lock, |ctx| {
            tree.put(ctx, key, tag, spec.value_bytes);
        });
    }

    fn verify(&self, m: &mut Machine) -> Result<(), String> {
        let root = m.debug_read_u64(self.root_cell);
        let mut keys = Vec::new();
        Self::debug_walk(m, root, 64, &mut keys)?;
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err("crit-bit in-order keys not strictly sorted".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmops::payload;
    use asap_core::machine::MachineConfig;
    use asap_core::scheme::SchemeKind;
    use rand::SeedableRng;

    fn harness() -> (Machine, CritBitTree, WorkloadSpec) {
        let spec = WorkloadSpec::small(crate::BenchId::Ct, SchemeKind::NoPersist);
        let mut m = Machine::new(MachineConfig::small(spec.scheme, spec.threads));
        let t = CritBitTree::create(&mut m, &spec);
        (m, t, spec)
    }

    #[test]
    fn put_get_update() {
        let (mut m, t, _s) = harness();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            t.put(ctx, 0b1010, 1, 64);
            t.put(ctx, 0b1000, 2, 64);
            t.put(ctx, 0b0001, 3, 64);
            t.put(ctx, 0b1010, 4, 64); // update
            ctx.end_region();
            assert_eq!(t.get(ctx, 0b1010, 64).unwrap(), payload(0b1010, 4, 64));
            assert_eq!(t.get(ctx, 0b1000, 64).unwrap(), payload(0b1000, 2, 64));
            assert_eq!(t.get(ctx, 0b0001, 64).unwrap(), payload(0b0001, 3, 64));
            assert_eq!(t.get(ctx, 0b1111, 64), None);
        });
        assert_eq!(t.debug_keys(&mut m), vec![0b0001, 0b1000, 0b1010]);
    }

    #[test]
    fn model_check_against_btreemap() {
        let (mut m, t, _s) = harness();
        let mut model = std::collections::BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..120u64 {
            let key = rng.random_range(0..200u64);
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                t.put(ctx, key, i, 64);
                ctx.end_region();
            });
            model.insert(key, i);
        }
        assert_eq!(
            t.debug_keys(&mut m),
            model.keys().copied().collect::<Vec<_>>()
        );
        for (k, tag) in model {
            m.run_thread(0, |ctx| {
                assert_eq!(t.get(ctx, k, 64).unwrap(), payload(k, tag, 64));
            });
        }
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn random_steps_keep_invariants() {
        let (mut m, mut t, spec) = harness();
        t.setup(&mut m, &spec);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..60 {
            m.run_thread(0, |ctx| t.step(ctx, &mut rng, &spec));
        }
        m.drain();
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn zero_key_works() {
        let (mut m, t, _s) = harness();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            t.put(ctx, 0, 7, 64);
            t.put(ctx, u32::MAX as u64, 8, 64);
            ctx.end_region();
            assert_eq!(t.get(ctx, 0, 64).unwrap(), payload(0, 7, 64));
        });
        t.verify(&mut m).unwrap();
    }
}
