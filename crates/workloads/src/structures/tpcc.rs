//! TPCC: the TPC-C New Order transaction (Table 3).
//!
//! A trimmed in-memory TPC-C: one warehouse, [`DISTRICTS`] districts,
//! [`ITEMS`] stock rows, and per-district order / order-line rings. Each
//! transaction picks a district, takes its lock, and inside one atomic
//! region allocates the next order id, inserts the order row, and for 5-15
//! items decrements stock and appends an order line. For the paper's 2KB
//! region-size variant, an order-info blob of `value_bytes` is written too.

use asap_core::machine::{Machine, ThreadCtx};
use asap_pmem::PmAddr;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::pmops::{read_field, write_field, write_payload};
use crate::spec::WorkloadSpec;
use crate::structures::Benchmark;

/// Districts per warehouse.
pub const DISTRICTS: u64 = 8;
/// Stock items.
pub const ITEMS: u64 = 128;
/// Order ring capacity per district.
pub const ORDERS_PER_DISTRICT: u64 = 256;
/// Maximum order lines per order.
pub const MAX_LINES: u64 = 15;
/// Initial stock quantity.
pub const INIT_QTY: u64 = 1_000_000;
/// First order id.
pub const FIRST_O_ID: u64 = 3001;

// District row: next_o_id, ytd.
const D_NEXT_O_ID: u64 = 0;
const D_YTD: u64 = 1;
// Stock row: qty, ytd, order_cnt.
const S_QTY: u64 = 0;
const S_YTD: u64 = 1;
const S_ORDER_CNT: u64 = 2;
// Order row: o_id, d_id, ol_cnt, c_id.
const O_ID: u64 = 0;
const O_DID: u64 = 1;
const O_OL_CNT: u64 = 2;
const O_CID: u64 = 3;
// Order line row: o_id, ol_num, item, qty, amount.
const OL_OID: u64 = 0;
const OL_NUM: u64 = 1;
const OL_ITEM: u64 = 2;
const OL_QTY: u64 = 3;
const OL_AMOUNT: u64 = 4;

const ROW: u64 = 64; // one cache line per row

/// The TPCC benchmark handle.
#[derive(Clone, Copy, Debug)]
pub struct Tpcc {
    districts: PmAddr,
    stock: PmAddr,
    orders: PmAddr,
    order_lines: PmAddr,
    order_info: PmAddr,
    info_bytes: u64,
}

impl Tpcc {
    /// Allocates all tables.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn create(m: &mut Machine, spec: &WorkloadSpec) -> Self {
        let info_bytes = if spec.value_bytes > 64 {
            spec.value_bytes.div_ceil(64) * 64
        } else {
            0
        };
        Tpcc {
            districts: m.pm_alloc(DISTRICTS * ROW).expect("heap"),
            stock: m.pm_alloc(ITEMS * ROW).expect("heap"),
            orders: m
                .pm_alloc(DISTRICTS * ORDERS_PER_DISTRICT * ROW)
                .expect("heap"),
            order_lines: m
                .pm_alloc(DISTRICTS * ORDERS_PER_DISTRICT * MAX_LINES * ROW)
                .expect("heap"),
            order_info: if info_bytes > 0 {
                m.pm_alloc(DISTRICTS * ORDERS_PER_DISTRICT * info_bytes)
                    .expect("heap")
            } else {
                PmAddr(0)
            },
            info_bytes,
        }
    }

    fn district_row(&self, d: u64) -> PmAddr {
        self.districts.offset(d * ROW)
    }

    fn stock_row(&self, item: u64) -> PmAddr {
        self.stock.offset(item * ROW)
    }

    fn order_row(&self, d: u64, slot: u64) -> PmAddr {
        self.orders.offset((d * ORDERS_PER_DISTRICT + slot) * ROW)
    }

    fn line_row(&self, d: u64, slot: u64, l: u64) -> PmAddr {
        self.order_lines
            .offset(((d * ORDERS_PER_DISTRICT + slot) * MAX_LINES + l) * ROW)
    }

    /// Executes one New Order transaction body inside the current region.
    pub fn new_order(&self, ctx: &mut ThreadCtx, d: u64, rng: &mut StdRng) {
        let drow = self.district_row(d);
        let o_id = read_field(ctx, drow, D_NEXT_O_ID);
        write_field(ctx, drow, D_NEXT_O_ID, o_id + 1);
        let slot = o_id % ORDERS_PER_DISTRICT;
        let ol_cnt = rng.random_range(5..=MAX_LINES);
        let c_id = rng.random_range(0..3000u64);
        let orow = self.order_row(d, slot);
        write_field(ctx, orow, O_ID, o_id);
        write_field(ctx, orow, O_DID, d);
        write_field(ctx, orow, O_OL_CNT, ol_cnt);
        write_field(ctx, orow, O_CID, c_id);
        let mut total = 0u64;
        for l in 0..ol_cnt {
            let item = rng.random_range(0..ITEMS);
            let srow = self.stock_row(item);
            let qty = read_field(ctx, srow, S_QTY);
            let ytd = read_field(ctx, srow, S_YTD);
            let cnt = read_field(ctx, srow, S_ORDER_CNT);
            write_field(ctx, srow, S_QTY, qty - 1);
            write_field(ctx, srow, S_YTD, ytd + 1);
            write_field(ctx, srow, S_ORDER_CNT, cnt + 1);
            let amount = (item + 1) * 7;
            total += amount;
            let lrow = self.line_row(d, slot, l);
            write_field(ctx, lrow, OL_OID, o_id);
            write_field(ctx, lrow, OL_NUM, l);
            write_field(ctx, lrow, OL_ITEM, item);
            write_field(ctx, lrow, OL_QTY, 1);
            write_field(ctx, lrow, OL_AMOUNT, amount);
        }
        let ytd = read_field(ctx, drow, D_YTD);
        write_field(ctx, drow, D_YTD, ytd + total);
        if self.info_bytes > 0 {
            let blob = self
                .order_info
                .offset((d * ORDERS_PER_DISTRICT + slot) * self.info_bytes);
            write_payload(ctx, blob, o_id, d, self.info_bytes as usize);
        }
    }

    /// Orders committed to district `d` so far (debug).
    pub fn debug_orders(&self, m: &mut Machine, d: u64) -> u64 {
        m.debug_read_u64(self.district_row(d).offset(8 * D_NEXT_O_ID)) - FIRST_O_ID
    }
}

impl Benchmark for Tpcc {
    fn setup(&mut self, m: &mut Machine, _spec: &WorkloadSpec) {
        let t = *self;
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            for d in 0..DISTRICTS {
                write_field(ctx, t.district_row(d), D_NEXT_O_ID, FIRST_O_ID);
                write_field(ctx, t.district_row(d), D_YTD, 0);
            }
            ctx.end_region();
        });
        for start in (0..ITEMS).step_by(16) {
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                for i in start..(start + 16).min(ITEMS) {
                    write_field(ctx, t.stock_row(i), S_QTY, INIT_QTY);
                    write_field(ctx, t.stock_row(i), S_YTD, 0);
                    write_field(ctx, t.stock_row(i), S_ORDER_CNT, 0);
                }
                ctx.end_region();
            });
        }
    }

    fn step(&self, ctx: &mut ThreadCtx, rng: &mut StdRng, _spec: &WorkloadSpec) {
        let t = *self;
        let d = rng.random_range(0..DISTRICTS);
        ctx.compute(120); // item lookups, pricing
        ctx.locked_region(d as usize, |ctx| {
            t.new_order(ctx, d, rng);
        });
    }

    fn verify(&self, m: &mut Machine) -> Result<(), String> {
        // Stock conservation: qty + order_cnt is constant per item.
        for i in 0..ITEMS {
            let qty = m.debug_read_u64(self.stock_row(i).offset(8 * S_QTY));
            let cnt = m.debug_read_u64(self.stock_row(i).offset(8 * S_ORDER_CNT));
            if qty + cnt != INIT_QTY {
                return Err(format!(
                    "stock row {i}: qty {qty} + cnt {cnt} != {INIT_QTY}"
                ));
            }
            let ytd = m.debug_read_u64(self.stock_row(i).offset(8 * S_YTD));
            if ytd != cnt {
                return Err(format!("stock row {i}: ytd {ytd} != order_cnt {cnt}"));
            }
        }
        // Order ids are dense per district; the last ring entries match.
        for d in 0..DISTRICTS {
            let n = self.debug_orders(m, d);
            let checked = n.min(ORDERS_PER_DISTRICT);
            for k in 0..checked {
                let o_id = FIRST_O_ID + n - 1 - k;
                let slot = o_id % ORDERS_PER_DISTRICT;
                let row = self.order_row(d, slot);
                let got = m.debug_read_u64(row.offset(8 * O_ID));
                if got != o_id {
                    return Err(format!("district {d} slot {slot}: o_id {got} != {o_id}"));
                }
                let ol_cnt = m.debug_read_u64(row.offset(8 * O_OL_CNT));
                if !(5..=MAX_LINES).contains(&ol_cnt) {
                    return Err(format!("district {d} order {o_id}: bad ol_cnt {ol_cnt}"));
                }
                // Spot-check the first order line.
                let l0 = self.line_row(d, slot, 0);
                if m.debug_read_u64(l0.offset(8 * OL_OID)) != o_id {
                    return Err(format!("district {d} order {o_id}: line 0 mismatch"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::machine::MachineConfig;
    use asap_core::scheme::SchemeKind;
    use rand::SeedableRng;

    fn harness(value_bytes: u64) -> (Machine, Tpcc, WorkloadSpec) {
        let spec = WorkloadSpec::small(crate::BenchId::Tpcc, SchemeKind::NoPersist)
            .with_value_bytes(value_bytes);
        let mut m = Machine::new(MachineConfig::small(spec.scheme, spec.threads));
        let mut t = Tpcc::create(&mut m, &spec);
        t.setup(&mut m, &spec);
        (m, t, spec)
    }

    #[test]
    fn one_new_order_updates_everything() {
        let (mut m, t, spec) = harness(64);
        let mut rng = StdRng::seed_from_u64(30);
        m.run_thread(0, |ctx| t.step(ctx, &mut rng, &spec));
        m.drain();
        let total: u64 = (0..DISTRICTS).map(|d| t.debug_orders(&mut m, d)).sum();
        assert_eq!(total, 1);
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn many_orders_conserve_stock() {
        let (mut m, t, spec) = harness(64);
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..40 {
            m.run_thread(0, |ctx| t.step(ctx, &mut rng, &spec));
        }
        m.drain();
        let total: u64 = (0..DISTRICTS).map(|d| t.debug_orders(&mut m, d)).sum();
        assert_eq!(total, 40);
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn big_variant_writes_order_info_blob() {
        let (mut m, t, spec) = harness(2048);
        assert_eq!(t.info_bytes, 2048);
        let mut rng = StdRng::seed_from_u64(32);
        m.run_thread(0, |ctx| t.step(ctx, &mut rng, &spec));
        m.drain();
        t.verify(&mut m).unwrap();
    }
}
