//! Persistent data structures implementing the Table 3 benchmarks.
//!
//! Each structure is a small `Copy` handle (root pointers, array bases)
//! onto state that lives entirely in the simulated persistent heap; all
//! mutation flows through [`ThreadCtx`] so every access is timed, logged
//! and crash-consistent per the active scheme.

pub mod bintree;
pub mod btree;
pub mod ctree;
pub mod echo;
pub mod hashmap;
pub mod queue;
pub mod rbtree;
pub mod stringswap;
pub mod tpcc;

use asap_core::machine::{Machine, ThreadCtx};
use rand::rngs::StdRng;

use crate::spec::{BenchId, WorkloadSpec};

/// A runnable benchmark: setup, per-transaction step, verification.
pub trait Benchmark {
    /// Populates persistent state (runs setup regions on thread 0).
    fn setup(&mut self, m: &mut Machine, spec: &WorkloadSpec);

    /// Executes one transaction (one lock-guarded atomic region).
    fn step(&self, ctx: &mut ThreadCtx, rng: &mut StdRng, spec: &WorkloadSpec);

    /// Checks structural invariants on a drained machine.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    fn verify(&self, m: &mut Machine) -> Result<(), String>;
}

/// A clonable handle to any benchmark (handles are `Copy` so per-thread
/// step closures can own one).
#[derive(Clone, Copy, Debug)]
pub enum AnyBench {
    /// BN.
    Bn(bintree::BinTree),
    /// BT.
    Bt(btree::BTree),
    /// CT.
    Ct(ctree::CritBitTree),
    /// EO.
    Eo(echo::Echo),
    /// HM.
    Hm(hashmap::HashTable),
    /// Q.
    Q(queue::Queue),
    /// RB.
    Rb(rbtree::RbTree),
    /// SS.
    Ss(stringswap::StringSwap),
    /// TPCC.
    Tpcc(tpcc::Tpcc),
}

impl AnyBench {
    /// Allocates the benchmark's anchors for `spec` on `m`.
    ///
    /// # Panics
    ///
    /// Panics if the persistent heap is exhausted.
    pub fn create(m: &mut Machine, spec: &WorkloadSpec) -> Self {
        match spec.bench {
            BenchId::Bn => AnyBench::Bn(bintree::BinTree::create(m, spec)),
            BenchId::Bt => AnyBench::Bt(btree::BTree::create(m, spec)),
            BenchId::Ct => AnyBench::Ct(ctree::CritBitTree::create(m, spec)),
            BenchId::Eo => AnyBench::Eo(echo::Echo::create(m, spec)),
            BenchId::Hm => AnyBench::Hm(hashmap::HashTable::create(m, spec)),
            BenchId::Q => AnyBench::Q(queue::Queue::create(m, spec)),
            BenchId::Rb => AnyBench::Rb(rbtree::RbTree::create(m, spec)),
            BenchId::Ss => AnyBench::Ss(stringswap::StringSwap::create(m, spec)),
            BenchId::Tpcc => AnyBench::Tpcc(tpcc::Tpcc::create(m, spec)),
        }
    }
}

impl Benchmark for AnyBench {
    fn setup(&mut self, m: &mut Machine, spec: &WorkloadSpec) {
        match self {
            AnyBench::Bn(b) => b.setup(m, spec),
            AnyBench::Bt(b) => b.setup(m, spec),
            AnyBench::Ct(b) => b.setup(m, spec),
            AnyBench::Eo(b) => b.setup(m, spec),
            AnyBench::Hm(b) => b.setup(m, spec),
            AnyBench::Q(b) => b.setup(m, spec),
            AnyBench::Rb(b) => b.setup(m, spec),
            AnyBench::Ss(b) => b.setup(m, spec),
            AnyBench::Tpcc(b) => b.setup(m, spec),
        }
    }

    fn step(&self, ctx: &mut ThreadCtx, rng: &mut StdRng, spec: &WorkloadSpec) {
        match self {
            AnyBench::Bn(b) => b.step(ctx, rng, spec),
            AnyBench::Bt(b) => b.step(ctx, rng, spec),
            AnyBench::Ct(b) => b.step(ctx, rng, spec),
            AnyBench::Eo(b) => b.step(ctx, rng, spec),
            AnyBench::Hm(b) => b.step(ctx, rng, spec),
            AnyBench::Q(b) => b.step(ctx, rng, spec),
            AnyBench::Rb(b) => b.step(ctx, rng, spec),
            AnyBench::Ss(b) => b.step(ctx, rng, spec),
            AnyBench::Tpcc(b) => b.step(ctx, rng, spec),
        }
    }

    fn verify(&self, m: &mut Machine) -> Result<(), String> {
        match self {
            AnyBench::Bn(b) => b.verify(m),
            AnyBench::Bt(b) => b.verify(m),
            AnyBench::Ct(b) => b.verify(m),
            AnyBench::Eo(b) => b.verify(m),
            AnyBench::Hm(b) => b.verify(m),
            AnyBench::Q(b) => b.verify(m),
            AnyBench::Rb(b) => b.verify(m),
            AnyBench::Ss(b) => b.verify(m),
            AnyBench::Tpcc(b) => b.verify(m),
        }
    }
}
