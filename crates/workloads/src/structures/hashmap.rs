//! HM: a chained hash table with per-bucket locks.

use asap_core::machine::{Machine, ThreadCtx};
use asap_pmem::PmAddr;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::pmops::{as_ptr, debug_field, read_field, write_field, write_payload};
use crate::spec::WorkloadSpec;
use crate::structures::Benchmark;

// Entry layout: key, value ptr, next.
const KEY: u64 = 0;
const VAL: u64 = 1;
const NEXT: u64 = 2;
const ENTRY_BYTES: u64 = 24;

/// Number of hash buckets.
pub const BUCKETS: u64 = 256;

/// The HM benchmark handle.
#[derive(Clone, Copy, Debug)]
pub struct HashTable {
    buckets: PmAddr,
    num_locks: u64,
}

impl HashTable {
    /// Allocates the bucket array.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn create(m: &mut Machine, _spec: &WorkloadSpec) -> Self {
        HashTable {
            buckets: m.pm_alloc(BUCKETS * 8).expect("heap"),
            num_locks: m.config().num_locks as u64,
        }
    }

    fn bucket(&self, key: u64) -> u64 {
        // Fibonacci hashing keeps adjacent keys in different buckets.
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % BUCKETS
    }

    /// The lock guarding `key`'s bucket.
    pub fn lock_for(&self, key: u64) -> usize {
        (self.bucket(key) % self.num_locks) as usize
    }

    /// Inserts or updates `key`, inside the current region.
    pub fn put(&self, ctx: &mut ThreadCtx, key: u64, tag: u64, value_bytes: u64) {
        let head_cell = self.buckets.offset(self.bucket(key) * 8);
        let mut cur = as_ptr(ctx.read_u64(head_cell));
        while let Some(e) = cur {
            if read_field(ctx, e, KEY) == key {
                let val = PmAddr(read_field(ctx, e, VAL));
                write_payload(ctx, val, key, tag, value_bytes as usize);
                return;
            }
            cur = as_ptr(read_field(ctx, e, NEXT));
        }
        let entry = ctx.pm_alloc(ENTRY_BYTES).expect("heap");
        let val = ctx.pm_alloc(value_bytes).expect("heap");
        write_payload(ctx, val, key, tag, value_bytes as usize);
        write_field(ctx, entry, KEY, key);
        write_field(ctx, entry, VAL, val.0);
        let head = ctx.read_u64(head_cell);
        write_field(ctx, entry, NEXT, head);
        ctx.write_u64(head_cell, entry.0);
    }

    /// Looks `key` up.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64, value_bytes: u64) -> Option<Vec<u8>> {
        let head_cell = self.buckets.offset(self.bucket(key) * 8);
        let mut cur = as_ptr(ctx.read_u64(head_cell));
        while let Some(e) = cur {
            if read_field(ctx, e, KEY) == key {
                let mut buf = vec![0u8; value_bytes as usize];
                let val = read_field(ctx, e, VAL);
                ctx.read_bytes(PmAddr(val), &mut buf);
                return Some(buf);
            }
            cur = as_ptr(read_field(ctx, e, NEXT));
        }
        None
    }

    /// All keys, by debug walk.
    pub fn debug_keys(&self, m: &mut Machine) -> Vec<u64> {
        let mut out = Vec::new();
        for b in 0..BUCKETS {
            let mut cur = m.debug_read_u64(self.buckets.offset(b * 8));
            while let Some(e) = as_ptr(cur) {
                out.push(debug_field(m, e, KEY));
                cur = debug_field(m, e, NEXT);
            }
        }
        out
    }
}

impl Benchmark for HashTable {
    fn setup(&mut self, m: &mut Machine, spec: &WorkloadSpec) {
        let table = *self;
        let spec = *spec;
        let stride = (spec.keyspace / spec.setup_keys.max(1)).max(1);
        for chunk_start in (0..spec.setup_keys).step_by(8) {
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                for i in chunk_start..(chunk_start + 8).min(spec.setup_keys) {
                    table.put(ctx, i * stride, 0, spec.value_bytes);
                }
                ctx.end_region();
            });
        }
    }

    fn step(&self, ctx: &mut ThreadCtx, rng: &mut StdRng, spec: &WorkloadSpec) {
        let key = rng.random_range(0..spec.keyspace);
        let tag = rng.random::<u64>();
        let table = *self;
        ctx.compute(40);
        ctx.locked_region(table.lock_for(key), |ctx| {
            table.put(ctx, key, tag, spec.value_bytes);
        });
    }

    fn verify(&self, m: &mut Machine) -> Result<(), String> {
        let mut keys = self.debug_keys(m);
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        if keys.len() != n {
            return Err("hash table contains duplicate keys".into());
        }
        // Every key must live in its home bucket.
        for b in 0..BUCKETS {
            let mut cur = m.debug_read_u64(self.buckets.offset(b * 8));
            while let Some(e) = as_ptr(cur) {
                let k = debug_field(m, e, KEY);
                if self.bucket(k) != b {
                    return Err(format!("key {k} found in wrong bucket {b}"));
                }
                cur = debug_field(m, e, NEXT);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmops::payload;
    use asap_core::machine::MachineConfig;
    use asap_core::scheme::SchemeKind;
    use rand::SeedableRng;

    fn harness() -> (Machine, HashTable, WorkloadSpec) {
        let spec = WorkloadSpec::small(crate::BenchId::Hm, SchemeKind::NoPersist);
        let mut m = Machine::new(MachineConfig::small(spec.scheme, spec.threads));
        let t = HashTable::create(&mut m, &spec);
        (m, t, spec)
    }

    #[test]
    fn put_get_update() {
        let (mut m, t, _s) = harness();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            t.put(ctx, 1, 1, 64);
            t.put(ctx, 257, 2, 64); // may or may not collide; both must work
            t.put(ctx, 1, 3, 64);
            ctx.end_region();
            assert_eq!(t.get(ctx, 1, 64).unwrap(), payload(1, 3, 64));
            assert_eq!(t.get(ctx, 257, 64).unwrap(), payload(257, 2, 64));
            assert_eq!(t.get(ctx, 2, 64), None);
        });
    }

    #[test]
    fn chains_handle_forced_collisions() {
        let (mut m, t, _s) = harness();
        // Find three keys in the same bucket.
        let b0 = t.bucket(0);
        let same: Vec<u64> = (0..100_000u64)
            .filter(|k| t.bucket(*k) == b0)
            .take(3)
            .collect();
        assert_eq!(same.len(), 3);
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            for (i, k) in same.iter().enumerate() {
                t.put(ctx, *k, i as u64, 64);
            }
            ctx.end_region();
            for (i, k) in same.iter().enumerate() {
                assert_eq!(t.get(ctx, *k, 64).unwrap(), payload(*k, i as u64, 64));
            }
        });
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn setup_and_steps_keep_invariants() {
        let (mut m, mut t, spec) = harness();
        t.setup(&mut m, &spec);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            m.run_thread(0, |ctx| t.step(ctx, &mut rng, &spec));
        }
        m.drain();
        t.verify(&mut m).unwrap();
        assert!(t.debug_keys(&mut m).len() >= spec.setup_keys as usize);
    }

    #[test]
    fn per_bucket_locks_differ() {
        let (_m, t, _s) = harness();
        let l: std::collections::BTreeSet<usize> = (0..64).map(|k| t.lock_for(k)).collect();
        assert!(l.len() > 1, "keys should spread across locks");
    }
}
