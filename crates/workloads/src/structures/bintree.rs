//! BN: an unbalanced binary search tree with out-of-line values.

use asap_core::machine::{Machine, ThreadCtx};
use asap_pmem::PmAddr;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::pmops::{as_ptr, debug_field, read_field, write_field, write_payload, NULL};
use crate::spec::WorkloadSpec;
use crate::structures::Benchmark;

// Node layout (8-byte fields): key, value ptr, left, right.
const KEY: u64 = 0;
const VAL: u64 = 1;
const LEFT: u64 = 2;
const RIGHT: u64 = 3;
const NODE_BYTES: u64 = 32;

/// The BN benchmark handle.
#[derive(Clone, Copy, Debug)]
pub struct BinTree {
    root_cell: PmAddr,
    lock: usize,
}

impl BinTree {
    /// Allocates the tree anchor.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn create(m: &mut Machine, _spec: &WorkloadSpec) -> Self {
        BinTree {
            root_cell: m.pm_alloc(8).expect("heap"),
            lock: 0,
        }
    }

    fn alloc_node(ctx: &mut ThreadCtx, key: u64, tag: u64, value_bytes: u64) -> PmAddr {
        let node = ctx.pm_alloc(NODE_BYTES).expect("heap");
        let val = ctx.pm_alloc(value_bytes).expect("heap");
        write_field(ctx, node, KEY, key);
        write_field(ctx, node, VAL, val.0);
        write_field(ctx, node, LEFT, NULL);
        write_field(ctx, node, RIGHT, NULL);
        write_payload(ctx, val, key, tag, value_bytes as usize);
        node
    }

    /// Inserts `key` or updates its value, inside the current region.
    pub fn put(&self, ctx: &mut ThreadCtx, key: u64, tag: u64, value_bytes: u64) {
        let root = ctx.read_u64(self.root_cell);
        let Some(mut cur) = as_ptr(root) else {
            let node = Self::alloc_node(ctx, key, tag, value_bytes);
            ctx.write_u64(self.root_cell, node.0);
            return;
        };
        loop {
            let k = read_field(ctx, cur, KEY);
            if k == key {
                let val = PmAddr(read_field(ctx, cur, VAL));
                write_payload(ctx, val, key, tag, value_bytes as usize);
                return;
            }
            let dir = if key < k { LEFT } else { RIGHT };
            match as_ptr(read_field(ctx, cur, dir)) {
                Some(next) => cur = next,
                None => {
                    let node = Self::alloc_node(ctx, key, tag, value_bytes);
                    write_field(ctx, cur, dir, node.0);
                    return;
                }
            }
        }
    }

    /// Looks `key` up, returning its value bytes.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64, value_bytes: u64) -> Option<Vec<u8>> {
        let mut cur = as_ptr(ctx.read_u64(self.root_cell))?;
        loop {
            let k = read_field(ctx, cur, KEY);
            if k == key {
                let mut buf = vec![0u8; value_bytes as usize];
                let val = read_field(ctx, cur, VAL);
                ctx.read_bytes(PmAddr(val), &mut buf);
                return Some(buf);
            }
            cur = as_ptr(read_field(ctx, cur, if key < k { LEFT } else { RIGHT }))?;
        }
    }

    /// In-order key walk via debug reads.
    pub fn debug_keys(&self, m: &mut Machine) -> Vec<u64> {
        fn walk(m: &mut Machine, node: u64, out: &mut Vec<u64>) {
            let Some(n) = as_ptr(node) else { return };
            let left = debug_field(m, n, LEFT);
            walk(m, left, out);
            out.push(debug_field(m, n, KEY));
            let right = debug_field(m, n, RIGHT);
            walk(m, right, out);
        }
        let root = m.debug_read_u64(self.root_cell);
        let mut out = Vec::new();
        walk(m, root, &mut out);
        out
    }
}

impl Benchmark for BinTree {
    fn setup(&mut self, m: &mut Machine, spec: &WorkloadSpec) {
        let tree = *self;
        let spec = *spec;
        // Populate with a mid-first insertion order for rough balance.
        let mut keys: Vec<u64> = Vec::new();
        let mut ranges = vec![(0, spec.setup_keys)];
        while let Some((lo, hi)) = ranges.pop() {
            if lo >= hi {
                continue;
            }
            let mid = (lo + hi) / 2;
            keys.push(mid * spec.keyspace / spec.setup_keys.max(1));
            ranges.push((lo, mid));
            ranges.push((mid + 1, hi));
        }
        for chunk in keys.chunks(8) {
            let chunk = chunk.to_vec();
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                for k in chunk {
                    tree.put(ctx, k, 0, spec.value_bytes);
                }
                ctx.end_region();
            });
        }
    }

    fn step(&self, ctx: &mut ThreadCtx, rng: &mut StdRng, spec: &WorkloadSpec) {
        let key = rng.random_range(0..spec.keyspace);
        let tag = rng.random::<u64>();
        let tree = *self;
        ctx.compute(60); // key generation / hashing work
        ctx.locked_region(tree.lock, |ctx| {
            tree.put(ctx, key, tag, spec.value_bytes);
        });
    }

    fn verify(&self, m: &mut Machine) -> Result<(), String> {
        let keys = self.debug_keys(m);
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err("binary tree keys not strictly sorted in-order".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmops::payload;
    use asap_core::machine::MachineConfig;
    use asap_core::scheme::SchemeKind;
    use rand::SeedableRng;

    fn harness() -> (Machine, BinTree, WorkloadSpec) {
        let spec = WorkloadSpec::small(crate::BenchId::Bn, SchemeKind::NoPersist);
        let mut m = Machine::new(MachineConfig::small(spec.scheme, spec.threads));
        let t = BinTree::create(&mut m, &spec);
        (m, t, spec)
    }

    #[test]
    fn put_get_roundtrip() {
        let (mut m, t, _spec) = harness();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            t.put(ctx, 5, 1, 64);
            t.put(ctx, 3, 2, 64);
            t.put(ctx, 8, 3, 64);
            ctx.end_region();
            assert_eq!(t.get(ctx, 5, 64).unwrap(), payload(5, 1, 64));
            assert_eq!(t.get(ctx, 3, 64).unwrap(), payload(3, 2, 64));
            assert_eq!(t.get(ctx, 9, 64), None);
        });
    }

    #[test]
    fn update_overwrites_value() {
        let (mut m, t, _spec) = harness();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            t.put(ctx, 7, 1, 64);
            t.put(ctx, 7, 2, 64);
            ctx.end_region();
            assert_eq!(t.get(ctx, 7, 64).unwrap(), payload(7, 2, 64));
        });
        assert_eq!(t.debug_keys(&mut m), vec![7]);
    }

    #[test]
    fn inorder_is_sorted_after_random_ops() {
        let (mut m, mut t, spec) = harness();
        t.setup(&mut m, &spec);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..40 {
            m.run_thread(0, |ctx| t.step(ctx, &mut rng, &spec));
        }
        m.drain();
        t.verify(&mut m).unwrap();
        assert!(!t.debug_keys(&mut m).is_empty());
    }

    #[test]
    fn model_check_against_btreemap() {
        let (mut m, t, _spec) = harness();
        let mut model = std::collections::BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..60u64 {
            let key = rng.random_range(0..32u64);
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                t.put(ctx, key, i, 64);
                ctx.end_region();
            });
            model.insert(key, i);
        }
        for (k, tag) in model {
            m.run_thread(0, |ctx| {
                assert_eq!(t.get(ctx, k, 64).unwrap(), payload(k, tag, 64));
            });
        }
    }
}
