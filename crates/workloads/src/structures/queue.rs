//! Q: a linked FIFO queue.
//!
//! The queue's head/tail anchor lines are touched by every transaction,
//! which gives Q the highest rate of cross-region data dependencies of the
//! suite — the paper singles it out as the benchmark where DPO dropping is
//! most effective (§7.2).

use asap_core::machine::{Machine, ThreadCtx};
use asap_pmem::PmAddr;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::pmops::{as_ptr, debug_field, read_field, write_field, write_payload, NULL};
use crate::spec::WorkloadSpec;
use crate::structures::Benchmark;

// Anchor layout: head, tail, length.
const HEAD: u64 = 0;
const TAIL: u64 = 1;
const LEN: u64 = 2;
// Node layout: value ptr, next, key (for verification).
const VAL: u64 = 0;
const NEXT: u64 = 1;
const NKEY: u64 = 2;
const NODE_BYTES: u64 = 24;

/// The Q benchmark handle.
#[derive(Clone, Copy, Debug)]
pub struct Queue {
    anchor: PmAddr,
    lock: usize,
}

impl Queue {
    /// Allocates the queue anchor.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn create(m: &mut Machine, _spec: &WorkloadSpec) -> Self {
        Queue {
            anchor: m.pm_alloc(24).expect("heap"),
            lock: 0,
        }
    }

    /// Appends `key` with a fresh payload, inside the current region.
    pub fn enqueue(&self, ctx: &mut ThreadCtx, key: u64, tag: u64, value_bytes: u64) {
        let node = ctx.pm_alloc(NODE_BYTES).expect("heap");
        let val = ctx.pm_alloc(value_bytes).expect("heap");
        write_payload(ctx, val, key, tag, value_bytes as usize);
        write_field(ctx, node, VAL, val.0);
        write_field(ctx, node, NEXT, NULL);
        write_field(ctx, node, NKEY, key);
        match as_ptr(read_field(ctx, self.anchor, TAIL)) {
            Some(tail) => write_field(ctx, tail, NEXT, node.0),
            None => write_field(ctx, self.anchor, HEAD, node.0),
        }
        write_field(ctx, self.anchor, TAIL, node.0);
        let len = read_field(ctx, self.anchor, LEN);
        write_field(ctx, self.anchor, LEN, len + 1);
    }

    /// Pops the oldest element, returning its key. Inside the current
    /// region.
    pub fn dequeue(&self, ctx: &mut ThreadCtx) -> Option<u64> {
        let head = as_ptr(read_field(ctx, self.anchor, HEAD))?;
        let key = read_field(ctx, head, NKEY);
        let next = read_field(ctx, head, NEXT);
        write_field(ctx, self.anchor, HEAD, next);
        if next == NULL {
            write_field(ctx, self.anchor, TAIL, NULL);
        }
        let len = read_field(ctx, self.anchor, LEN);
        write_field(ctx, self.anchor, LEN, len - 1);
        let val = PmAddr(read_field(ctx, head, VAL));
        ctx.pm_free(val).expect("queue value allocated");
        ctx.pm_free(head).expect("queue node allocated");
        Some(key)
    }

    /// Queue length per the anchor.
    pub fn debug_len(&self, m: &mut Machine) -> u64 {
        debug_field(m, self.anchor, LEN)
    }

    /// Keys front-to-back, by debug walk.
    pub fn debug_keys(&self, m: &mut Machine) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = debug_field(m, self.anchor, HEAD);
        while let Some(n) = as_ptr(cur) {
            out.push(debug_field(m, n, NKEY));
            cur = debug_field(m, n, NEXT);
        }
        out
    }
}

impl Benchmark for Queue {
    fn setup(&mut self, m: &mut Machine, spec: &WorkloadSpec) {
        let q = *self;
        let spec = *spec;
        for start in (0..spec.setup_keys).step_by(8) {
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                for k in start..(start + 8).min(spec.setup_keys) {
                    q.enqueue(ctx, k, 0, spec.value_bytes);
                }
                ctx.end_region();
            });
        }
    }

    fn step(&self, ctx: &mut ThreadCtx, rng: &mut StdRng, spec: &WorkloadSpec) {
        let q = *self;
        let key = rng.random_range(0..spec.keyspace);
        let tag = rng.random::<u64>();
        let do_dequeue = rng.random_bool(0.5);
        ctx.compute(30);
        ctx.locked_region(q.lock, |ctx| {
            if do_dequeue {
                if q.dequeue(ctx).is_none() {
                    q.enqueue(ctx, key, tag, spec.value_bytes);
                }
            } else {
                q.enqueue(ctx, key, tag, spec.value_bytes);
            }
        });
    }

    fn verify(&self, m: &mut Machine) -> Result<(), String> {
        let walked = self.debug_keys(m).len() as u64;
        let len = self.debug_len(m);
        if walked != len {
            return Err(format!("queue length field {len} != walked nodes {walked}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::machine::MachineConfig;
    use asap_core::scheme::SchemeKind;
    use rand::SeedableRng;

    fn harness() -> (Machine, Queue, WorkloadSpec) {
        let spec = WorkloadSpec::small(crate::BenchId::Q, SchemeKind::NoPersist);
        let mut m = Machine::new(MachineConfig::small(spec.scheme, spec.threads));
        let q = Queue::create(&mut m, &spec);
        (m, q, spec)
    }

    #[test]
    fn fifo_order() {
        let (mut m, q, _s) = harness();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            for k in [3u64, 1, 4, 1, 5] {
                q.enqueue(ctx, k, 0, 64);
            }
            ctx.end_region();
            ctx.begin_region();
            assert_eq!(q.dequeue(ctx), Some(3));
            assert_eq!(q.dequeue(ctx), Some(1));
            ctx.end_region();
        });
        assert_eq!(q.debug_keys(&mut m), vec![4, 1, 5]);
        assert_eq!(q.debug_len(&mut m), 3);
    }

    #[test]
    fn drain_to_empty_and_refill() {
        let (mut m, q, _s) = harness();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            q.enqueue(ctx, 1, 0, 64);
            assert_eq!(q.dequeue(ctx), Some(1));
            assert_eq!(q.dequeue(ctx), None);
            q.enqueue(ctx, 2, 0, 64);
            ctx.end_region();
        });
        assert_eq!(q.debug_keys(&mut m), vec![2]);
        q.verify(&mut m).unwrap();
    }

    #[test]
    fn random_steps_keep_len_consistent() {
        let (mut m, mut q, spec) = harness();
        q.setup(&mut m, &spec);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..60 {
            m.run_thread(0, |ctx| q.step(ctx, &mut rng, &spec));
        }
        m.drain();
        q.verify(&mut m).unwrap();
    }

    #[test]
    fn freed_nodes_are_reusable() {
        let (mut m, q, _s) = harness();
        let before = m.hw().heap.live_bytes();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            q.enqueue(ctx, 9, 0, 64);
            q.dequeue(ctx);
            ctx.end_region();
        });
        assert_eq!(
            m.hw().heap.live_bytes(),
            before,
            "enqueue+dequeue is balanced"
        );
    }
}
