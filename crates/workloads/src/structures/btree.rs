//! BT: a B-tree with fanout 8 (up to 7 keys per node).

use asap_core::machine::{Machine, ThreadCtx};
use asap_pmem::PmAddr;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::pmops::{as_ptr, debug_field, read_field, write_field, write_payload};
use crate::spec::WorkloadSpec;
use crate::structures::Benchmark;

// Node layout (24 × 8B = 192B): leaf flag, key count, 7 keys, 7 value
// pointers, 8 children.
const LEAF: u64 = 0;
const N: u64 = 1;
const KEYS: u64 = 2;
const VALS: u64 = 9;
const CHILD: u64 = 16;
const MAX_KEYS: u64 = 7;
const NODE_BYTES: u64 = 192;

/// The BT benchmark handle.
#[derive(Clone, Copy, Debug)]
pub struct BTree {
    root_cell: PmAddr,
    lock: usize,
}

impl BTree {
    /// Allocates the tree anchor with an empty leaf root.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn create(m: &mut Machine, _spec: &WorkloadSpec) -> Self {
        let root_cell = m.pm_alloc(8).expect("heap");
        BTree { root_cell, lock: 0 }
    }

    fn new_node(ctx: &mut ThreadCtx, leaf: bool) -> PmAddr {
        let node = ctx.pm_alloc(NODE_BYTES).expect("heap");
        write_field(ctx, node, LEAF, u64::from(leaf));
        write_field(ctx, node, N, 0);
        node
    }

    fn new_value(ctx: &mut ThreadCtx, key: u64, tag: u64, value_bytes: u64) -> u64 {
        let val = ctx.pm_alloc(value_bytes).expect("heap");
        write_payload(ctx, val, key, tag, value_bytes as usize);
        val.0
    }

    /// Splits the full `i`-th child of `parent` (preemptive split).
    fn split_child(ctx: &mut ThreadCtx, parent: PmAddr, i: u64) {
        let child = PmAddr(read_field(ctx, parent, CHILD + i));
        let leaf = read_field(ctx, child, LEAF) != 0;
        let right = Self::new_node(ctx, leaf);
        // Left keeps keys 0..3, key 3 moves up, right takes keys 4..7.
        for j in 0..3 {
            let k = read_field(ctx, child, KEYS + 4 + j);
            let v = read_field(ctx, child, VALS + 4 + j);
            write_field(ctx, right, KEYS + j, k);
            write_field(ctx, right, VALS + j, v);
        }
        if !leaf {
            for j in 0..4 {
                let c = read_field(ctx, child, CHILD + 4 + j);
                write_field(ctx, right, CHILD + j, c);
            }
        }
        write_field(ctx, right, N, 3);
        let mid_key = read_field(ctx, child, KEYS + 3);
        let mid_val = read_field(ctx, child, VALS + 3);
        write_field(ctx, child, N, 3);
        // Shift the parent's keys/children right of slot i.
        let pn = read_field(ctx, parent, N);
        let mut j = pn;
        while j > i {
            let k = read_field(ctx, parent, KEYS + j - 1);
            let v = read_field(ctx, parent, VALS + j - 1);
            write_field(ctx, parent, KEYS + j, k);
            write_field(ctx, parent, VALS + j, v);
            let c = read_field(ctx, parent, CHILD + j);
            write_field(ctx, parent, CHILD + j + 1, c);
            j -= 1;
        }
        write_field(ctx, parent, KEYS + i, mid_key);
        write_field(ctx, parent, VALS + i, mid_val);
        write_field(ctx, parent, CHILD + i + 1, right.0);
        write_field(ctx, parent, N, pn + 1);
    }

    /// Inserts `key` or updates its value, inside the current region.
    pub fn put(&self, ctx: &mut ThreadCtx, key: u64, tag: u64, value_bytes: u64) {
        let mut root = match as_ptr(ctx.read_u64(self.root_cell)) {
            Some(r) => r,
            None => {
                let r = Self::new_node(ctx, true);
                ctx.write_u64(self.root_cell, r.0);
                r
            }
        };
        if read_field(ctx, root, N) == MAX_KEYS {
            let new_root = Self::new_node(ctx, false);
            write_field(ctx, new_root, CHILD, root.0);
            Self::split_child(ctx, new_root, 0);
            ctx.write_u64(self.root_cell, new_root.0);
            root = new_root;
        }
        let mut node = root;
        loop {
            let n = read_field(ctx, node, N);
            // Exact-match scan: update in place.
            let mut idx = n;
            for i in 0..n {
                let k = read_field(ctx, node, KEYS + i);
                if k == key {
                    let val = PmAddr(read_field(ctx, node, VALS + i));
                    write_payload(ctx, val, key, tag, value_bytes as usize);
                    return;
                }
                if key < k && idx == n {
                    idx = i;
                }
            }
            if read_field(ctx, node, LEAF) != 0 {
                // Shift and insert.
                let mut j = n;
                while j > idx {
                    let k = read_field(ctx, node, KEYS + j - 1);
                    let v = read_field(ctx, node, VALS + j - 1);
                    write_field(ctx, node, KEYS + j, k);
                    write_field(ctx, node, VALS + j, v);
                    j -= 1;
                }
                write_field(ctx, node, KEYS + idx, key);
                let val = Self::new_value(ctx, key, tag, value_bytes);
                write_field(ctx, node, VALS + idx, val);
                write_field(ctx, node, N, n + 1);
                return;
            }
            let child = PmAddr(read_field(ctx, node, CHILD + idx));
            if read_field(ctx, child, N) == MAX_KEYS {
                Self::split_child(ctx, node, idx);
                let up = read_field(ctx, node, KEYS + idx);
                if up == key {
                    let val = PmAddr(read_field(ctx, node, VALS + idx));
                    write_payload(ctx, val, key, tag, value_bytes as usize);
                    return;
                }
                let idx2 = if key > up { idx + 1 } else { idx };
                node = PmAddr(read_field(ctx, node, CHILD + idx2));
            } else {
                node = child;
            }
        }
    }

    /// Looks `key` up.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64, value_bytes: u64) -> Option<Vec<u8>> {
        let mut node = as_ptr(ctx.read_u64(self.root_cell))?;
        loop {
            let n = read_field(ctx, node, N);
            let mut idx = n;
            for i in 0..n {
                let k = read_field(ctx, node, KEYS + i);
                if k == key {
                    let mut buf = vec![0u8; value_bytes as usize];
                    let val = read_field(ctx, node, VALS + i);
                    ctx.read_bytes(PmAddr(val), &mut buf);
                    return Some(buf);
                }
                if key < k && idx == n {
                    idx = i;
                }
            }
            if read_field(ctx, node, LEAF) != 0 {
                return None;
            }
            node = PmAddr(read_field(ctx, node, CHILD + idx));
        }
    }

    fn debug_walk(
        m: &mut Machine,
        node: u64,
        depth: u64,
        out: &mut Vec<u64>,
        leaf_depths: &mut Vec<u64>,
    ) {
        let Some(n) = as_ptr(node) else { return };
        let count = debug_field(m, n, N);
        let leaf = debug_field(m, n, LEAF) != 0;
        if leaf {
            leaf_depths.push(depth);
            for i in 0..count {
                out.push(debug_field(m, n, KEYS + i));
            }
            return;
        }
        for i in 0..count {
            let child = debug_field(m, n, CHILD + i);
            Self::debug_walk(m, child, depth + 1, out, leaf_depths);
            out.push(debug_field(m, n, KEYS + i));
        }
        let last = debug_field(m, n, CHILD + count);
        Self::debug_walk(m, last, depth + 1, out, leaf_depths);
    }

    /// In-order key walk.
    pub fn debug_keys(&self, m: &mut Machine) -> Vec<u64> {
        let root = m.debug_read_u64(self.root_cell);
        let mut keys = Vec::new();
        let mut depths = Vec::new();
        Self::debug_walk(m, root, 0, &mut keys, &mut depths);
        keys
    }
}

impl Benchmark for BTree {
    fn setup(&mut self, m: &mut Machine, spec: &WorkloadSpec) {
        let tree = *self;
        let spec = *spec;
        let stride = (spec.keyspace / spec.setup_keys.max(1)).max(1);
        for start in (0..spec.setup_keys).step_by(8) {
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                for i in start..(start + 8).min(spec.setup_keys) {
                    tree.put(ctx, i * stride, 0, spec.value_bytes);
                }
                ctx.end_region();
            });
        }
    }

    fn step(&self, ctx: &mut ThreadCtx, rng: &mut StdRng, spec: &WorkloadSpec) {
        let key = rng.random_range(0..spec.keyspace);
        let tag = rng.random::<u64>();
        let tree = *self;
        ctx.compute(80);
        ctx.locked_region(tree.lock, |ctx| {
            tree.put(ctx, key, tag, spec.value_bytes);
        });
    }

    fn verify(&self, m: &mut Machine) -> Result<(), String> {
        let root = m.debug_read_u64(self.root_cell);
        let mut keys = Vec::new();
        let mut depths = Vec::new();
        Self::debug_walk(m, root, 0, &mut keys, &mut depths);
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err("B-tree keys not strictly sorted in-order".into());
        }
        depths.dedup();
        if depths.len() > 1 {
            return Err(format!("B-tree leaves at unequal depths: {depths:?}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmops::payload;
    use asap_core::machine::MachineConfig;
    use asap_core::scheme::SchemeKind;
    use rand::SeedableRng;

    fn harness() -> (Machine, BTree, WorkloadSpec) {
        let spec = WorkloadSpec::small(crate::BenchId::Bt, SchemeKind::NoPersist);
        let mut m = Machine::new(MachineConfig::small(spec.scheme, spec.threads));
        let t = BTree::create(&mut m, &spec);
        (m, t, spec)
    }

    #[test]
    fn sequential_inserts_split_and_stay_sorted() {
        let (mut m, t, _s) = harness();
        m.run_thread(0, |ctx| {
            for k in 0..40u64 {
                ctx.begin_region();
                t.put(ctx, k, k, 64);
                ctx.end_region();
            }
        });
        assert_eq!(t.debug_keys(&mut m), (0..40).collect::<Vec<_>>());
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn reverse_and_shuffled_inserts() {
        let (mut m, t, _s) = harness();
        let keys: Vec<u64> = (0..60).map(|i| (i * 37) % 61).collect();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            for &k in &keys {
                t.put(ctx, k, k, 64);
            }
            ctx.end_region();
        });
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(t.debug_keys(&mut m), sorted);
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn update_hits_keys_in_internal_nodes() {
        let (mut m, t, _s) = harness();
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            for k in 0..20u64 {
                t.put(ctx, k, 1, 64);
            }
            // Every key updated, including ones promoted to internals.
            for k in 0..20u64 {
                t.put(ctx, k, 2, 64);
            }
            ctx.end_region();
            for k in 0..20u64 {
                assert_eq!(t.get(ctx, k, 64).unwrap(), payload(k, 2, 64), "key {k}");
            }
            assert_eq!(t.get(ctx, 99, 64), None);
        });
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn model_check_against_btreemap() {
        let (mut m, t, _s) = harness();
        let mut model = std::collections::BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..150u64 {
            let key = rng.random_range(0..64u64);
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                t.put(ctx, key, i, 64);
                ctx.end_region();
            });
            model.insert(key, i);
        }
        assert_eq!(
            t.debug_keys(&mut m),
            model.keys().copied().collect::<Vec<_>>()
        );
        for (k, tag) in model {
            m.run_thread(0, |ctx| {
                assert_eq!(t.get(ctx, k, 64).unwrap(), payload(k, tag, 64));
            });
        }
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn random_steps_keep_invariants() {
        let (mut m, mut t, spec) = harness();
        t.setup(&mut m, &spec);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..80 {
            m.run_thread(0, |ctx| t.step(ctx, &mut rng, &spec));
        }
        m.drain();
        t.verify(&mut m).unwrap();
    }
}
