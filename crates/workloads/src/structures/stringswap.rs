//! SS: random swaps in an array of fixed-size strings.
//!
//! Each transaction reads two random slots and writes them back swapped —
//! the whole payload moves, so region size tracks `value_bytes` exactly
//! (64B or 2KB in the paper). Slots are tagged with their original key in
//! the first 8 bytes, so verification checks that swapping preserved the
//! multiset of strings.

use asap_core::machine::{Machine, ThreadCtx};
use asap_pmem::PmAddr;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::pmops::payload;
use crate::spec::WorkloadSpec;
use crate::structures::Benchmark;

/// Number of string slots.
pub const SLOTS: u64 = 256;

/// The SS benchmark handle.
#[derive(Clone, Copy, Debug)]
pub struct StringSwap {
    base: PmAddr,
    slot_bytes: u64,
    num_locks: u64,
}

impl StringSwap {
    /// Allocates the string array.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn create(m: &mut Machine, spec: &WorkloadSpec) -> Self {
        let slot_bytes = spec.value_bytes.max(8).div_ceil(64) * 64;
        StringSwap {
            base: m.pm_alloc(SLOTS * slot_bytes).expect("heap"),
            slot_bytes,
            num_locks: m.config().num_locks as u64,
        }
    }

    fn slot(&self, i: u64) -> PmAddr {
        self.base.offset(i * self.slot_bytes)
    }

    /// The lock guarding slot `i`.
    pub fn lock_for(&self, i: u64) -> usize {
        (i % self.num_locks) as usize
    }

    /// The deterministic initial string for slot key `k`.
    pub fn string_for(&self, k: u64, value_bytes: u64) -> Vec<u8> {
        let mut s = payload(k, 0xD00D, value_bytes as usize);
        s[..8].copy_from_slice(&k.to_le_bytes());
        s
    }

    /// Swaps slots `i` and `j`, inside the current region.
    pub fn swap(&self, ctx: &mut ThreadCtx, i: u64, j: u64, value_bytes: u64) {
        if i == j {
            return;
        }
        let n = value_bytes as usize;
        let mut a = vec![0u8; n];
        let mut b = vec![0u8; n];
        ctx.read_bytes(self.slot(i), &mut a);
        ctx.read_bytes(self.slot(j), &mut b);
        ctx.write_bytes(self.slot(i), &b);
        ctx.write_bytes(self.slot(j), &a);
    }

    /// Keys currently in each slot, by debug reads.
    pub fn debug_slot_keys(&self, m: &mut Machine) -> Vec<u64> {
        (0..SLOTS).map(|i| m.debug_read_u64(self.slot(i))).collect()
    }
}

impl Benchmark for StringSwap {
    fn setup(&mut self, m: &mut Machine, spec: &WorkloadSpec) {
        let ss = *self;
        let spec = *spec;
        for start in (0..SLOTS).step_by(8) {
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                for k in start..(start + 8).min(SLOTS) {
                    let s = ss.string_for(k, spec.value_bytes);
                    ctx.write_bytes(ss.slot(k), &s);
                }
                ctx.end_region();
            });
        }
    }

    fn step(&self, ctx: &mut ThreadCtx, rng: &mut StdRng, spec: &WorkloadSpec) {
        let ss = *self;
        let i = rng.random_range(0..SLOTS);
        let j = rng.random_range(0..SLOTS);
        ctx.compute(30);
        // Take both slot locks in index order (virtual locks cannot
        // deadlock in the serialized executor, but order them anyway).
        let (la, lb) = (ss.lock_for(i.min(j)), ss.lock_for(i.max(j)));
        if ss.num_locks > 1 && la != lb {
            if spec.scheme.commits_asynchronously() {
                ctx.lock(la);
                ctx.lock(lb);
                ctx.begin_region();
                ss.swap(ctx, i, j, spec.value_bytes);
                ctx.unlock(lb);
                ctx.unlock(la);
                ctx.end_region();
            } else {
                ctx.lock(la);
                ctx.lock(lb);
                ctx.begin_region();
                ss.swap(ctx, i, j, spec.value_bytes);
                ctx.end_region();
                ctx.unlock(lb);
                ctx.unlock(la);
            }
        } else {
            ctx.locked_region(la, |ctx| ss.swap(ctx, i, j, spec.value_bytes));
        }
    }

    fn verify(&self, m: &mut Machine) -> Result<(), String> {
        let mut keys = self.debug_slot_keys(m);
        keys.sort_unstable();
        let expect: Vec<u64> = (0..SLOTS).collect();
        if keys != expect {
            return Err("string multiset not preserved by swaps".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::machine::MachineConfig;
    use asap_core::scheme::SchemeKind;
    use rand::SeedableRng;

    fn harness(value_bytes: u64) -> (Machine, StringSwap, WorkloadSpec) {
        let spec = WorkloadSpec::small(crate::BenchId::Ss, SchemeKind::NoPersist)
            .with_value_bytes(value_bytes);
        let mut m = Machine::new(MachineConfig::small(spec.scheme, spec.threads));
        let mut t = StringSwap::create(&mut m, &spec);
        t.setup(&mut m, &spec);
        (m, t, spec)
    }

    #[test]
    fn setup_fills_identity() {
        let (mut m, t, _s) = harness(64);
        assert_eq!(t.debug_slot_keys(&mut m), (0..SLOTS).collect::<Vec<_>>());
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn one_swap_exchanges_whole_strings() {
        let (mut m, t, spec) = harness(64);
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            t.swap(ctx, 3, 7, spec.value_bytes);
            ctx.end_region();
        });
        let keys = t.debug_slot_keys(&mut m);
        assert_eq!(keys[3], 7);
        assert_eq!(keys[7], 3);
        // The full string moved, not just the key prefix.
        let mut buf = vec![0u8; 64];
        m.debug_read(t.slot(3), &mut buf);
        assert_eq!(buf, t.string_for(7, 64));
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn swap_with_self_is_noop() {
        let (mut m, t, spec) = harness(64);
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            t.swap(ctx, 5, 5, spec.value_bytes);
            ctx.end_region();
        });
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn large_strings_span_many_lines() {
        let (mut m, t, spec) = harness(2048);
        assert_eq!(t.slot_bytes, 2048);
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            t.swap(ctx, 0, 1, spec.value_bytes);
            ctx.end_region();
        });
        let mut buf = vec![0u8; 2048];
        m.debug_read(t.slot(0), &mut buf);
        assert_eq!(buf, t.string_for(1, 2048));
        t.verify(&mut m).unwrap();
    }

    #[test]
    fn random_steps_preserve_multiset() {
        let (mut m, t, spec) = harness(64);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..80 {
            m.run_thread(0, |ctx| t.step(ctx, &mut rng, &spec));
        }
        m.drain();
        t.verify(&mut m).unwrap();
    }
}
