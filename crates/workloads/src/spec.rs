//! Workload specifications: which benchmark, scheme and parameters to run.

use std::fmt;

use asap_core::scheme::SchemeKind;
use asap_sim::fingerprint::{
    canon_system_config, canon_telemetry_settings, canon_trace_settings, Canon, Fingerprint,
};
use asap_sim::{SystemConfig, TelemetrySettings, TraceSettings};

/// The nine benchmarks of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BenchId {
    /// BN — binary search tree insert/update.
    Bn,
    /// BT — B+tree insert/update.
    Bt,
    /// CT — crit-bit tree insert/update.
    Ct,
    /// EO — Echo versioned key-value store.
    Eo,
    /// HM — chained hash table insert/update.
    Hm,
    /// Q — FIFO queue enqueue/dequeue.
    Q,
    /// RB — red-black tree insert/update.
    Rb,
    /// SS — random swaps in an array of strings.
    Ss,
    /// TPCC — TPC-C New Order transactions.
    Tpcc,
}

impl BenchId {
    /// All benchmarks, in the paper's figure order.
    pub fn all() -> [BenchId; 9] {
        [
            BenchId::Bn,
            BenchId::Bt,
            BenchId::Ct,
            BenchId::Eo,
            BenchId::Hm,
            BenchId::Q,
            BenchId::Rb,
            BenchId::Ss,
            BenchId::Tpcc,
        ]
    }

    /// The eight benchmarks used in Fig. 1 (no TPCC).
    pub fn fig1() -> [BenchId; 8] {
        [
            BenchId::Bn,
            BenchId::Bt,
            BenchId::Ct,
            BenchId::Eo,
            BenchId::Hm,
            BenchId::Q,
            BenchId::Rb,
            BenchId::Ss,
        ]
    }

    /// The paper's short label.
    pub fn label(self) -> &'static str {
        match self {
            BenchId::Bn => "BN",
            BenchId::Bt => "BT",
            BenchId::Ct => "CT",
            BenchId::Eo => "EO",
            BenchId::Hm => "HM",
            BenchId::Q => "Q",
            BenchId::Rb => "RB",
            BenchId::Ss => "SS",
            BenchId::Tpcc => "TPCC",
        }
    }
}

impl fmt::Display for BenchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A complete workload configuration.
///
/// # Examples
///
/// ```
/// use asap_core::scheme::SchemeKind;
/// use asap_workloads::{BenchId, WorkloadSpec};
///
/// let spec = WorkloadSpec::new(BenchId::Q, SchemeKind::Asap)
///     .with_threads(8)
///     .with_value_bytes(2048)
///     .with_tracking();
/// assert_eq!(spec.threads, 8);
/// assert!(spec.track);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Which benchmark.
    pub bench: BenchId,
    /// Which persistence scheme.
    pub scheme: SchemeKind,
    /// Simulated system.
    pub system: SystemConfig,
    /// Thread count.
    pub threads: u32,
    /// Transactions per thread.
    pub ops_per_thread: u64,
    /// Payload bytes written per region (the paper uses 64B and 2KB).
    pub value_bytes: u64,
    /// Key universe size.
    pub keyspace: u64,
    /// Keys inserted by the setup phase.
    pub setup_keys: u64,
    /// Deterministic seed.
    pub seed: u64,
    /// Enable the crash-consistency shadow.
    pub track: bool,
    /// Arm a power failure at the N-th persistent write.
    pub crash_after: Option<u64>,
    /// Event-trace settings (off by default; `ASAP_TRACE` via
    /// [`TraceSettings::from_env`]).
    pub trace: TraceSettings,
    /// Telemetry sampler settings (off by default; `ASAP_TELEMETRY` via
    /// [`TelemetrySettings::from_env`]).
    pub telemetry: TelemetrySettings,
}

impl WorkloadSpec {
    /// A default spec on the full Table 2 system.
    pub fn new(bench: BenchId, scheme: SchemeKind) -> Self {
        WorkloadSpec {
            bench,
            scheme,
            system: SystemConfig::table2(),
            threads: 4,
            ops_per_thread: 200,
            value_bytes: 64,
            keyspace: 2048,
            setup_keys: 512,
            seed: 0xA5A5_0001,
            track: false,
            crash_after: None,
            trace: TraceSettings::disabled(),
            telemetry: TelemetrySettings::disabled(),
        }
    }

    /// A fast spec on the small test system.
    pub fn small(bench: BenchId, scheme: SchemeKind) -> Self {
        let mut s = Self::new(bench, scheme);
        s.system = SystemConfig::small();
        s.threads = 2;
        s.ops_per_thread = 50;
        s.keyspace = 256;
        s.setup_keys = 64;
        s
    }

    /// Sets the per-region payload size (64 or 2048 in the paper).
    pub fn with_value_bytes(mut self, bytes: u64) -> Self {
        self.value_bytes = bytes;
        self
    }

    /// Sets the thread count.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Sets ops per thread.
    pub fn with_ops(mut self, ops: u64) -> Self {
        self.ops_per_thread = ops;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the verification shadow.
    pub fn with_tracking(mut self) -> Self {
        self.track = true;
        self
    }

    /// Arms a crash.
    pub fn with_crash_after(mut self, writes: u64) -> Self {
        self.crash_after = Some(writes);
        self
    }

    /// Replaces the system configuration.
    pub fn with_system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }

    /// Enables event tracing for the run.
    pub fn with_trace(mut self, trace: TraceSettings) -> Self {
        self.trace = trace;
        self
    }

    /// Returns this spec with telemetry sampling configured (e.g.
    /// [`TelemetrySettings::from_env`] for the `ASAP_TELEMETRY` knobs).
    pub fn with_telemetry(mut self, telemetry: TelemetrySettings) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The spec's content fingerprint: a stable 128-bit hash of a
    /// canonical serialization of *every* field — benchmark, scheme
    /// (including ablation opt subsets), the full system configuration,
    /// scale parameters, seed, crash arming, and the trace/telemetry
    /// settings (those change the exported artifacts, so a cached result
    /// must be keyed on them too).
    ///
    /// Because a run is a pure function of its spec and the binary, this
    /// fingerprint plus [`asap_sim::fingerprint::build_fingerprint`] is a
    /// complete cache key for a [`RunResult`](crate::RunResult): equal
    /// fingerprints (same binary) imply bit-identical results. The
    /// fingerprint suite in `tests/prop_resultjson.rs` holds the
    /// "every field" claim by mutating each one and asserting the hash
    /// moves.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut c = Canon::new();
        // Format tag: a cheap guard against ever feeding a differently
        // shaped encoding to the same hash.
        c.str("asap-cell-v1");
        c.str(self.bench.label());
        canon_scheme(&mut c, self.scheme);
        canon_system_config(&mut c, &self.system);
        c.u32(self.threads)
            .u64(self.ops_per_thread)
            .u64(self.value_bytes)
            .u64(self.keyspace)
            .u64(self.setup_keys)
            .u64(self.seed)
            .bool(self.track)
            .opt_u64(self.crash_after);
        canon_trace_settings(&mut c, &self.trace);
        canon_telemetry_settings(&mut c, &self.telemetry);
        c.fingerprint()
    }
}

/// Canonically encodes a scheme, including the ablation opt subset.
/// `Asap` and `AsapWith(AsapOpts::all())` encode differently — they
/// simulate identically today, but conflating distinct spec values in a
/// cache key is never worth the risk.
fn canon_scheme(c: &mut Canon, scheme: SchemeKind) {
    match scheme {
        SchemeKind::NoPersist => c.u32(0),
        SchemeKind::SwUndo => c.u32(1),
        SchemeKind::SwDpoOnly => c.u32(2),
        SchemeKind::HwUndo => c.u32(3),
        SchemeKind::HwRedo => c.u32(4),
        SchemeKind::Asap => c.u32(5),
        SchemeKind::AsapWith(opts) => c
            .u32(6)
            .bool(opts.dpo_coalescing)
            .bool(opts.lpo_dropping)
            .bool(opts.dpo_dropping),
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_nine_in_figure_order() {
        let all = BenchId::all();
        assert_eq!(all.len(), 9);
        assert_eq!(all[0].label(), "BN");
        assert_eq!(all[8].label(), "TPCC");
        assert_eq!(BenchId::fig1().len(), 8);
        assert!(!BenchId::fig1().contains(&BenchId::Tpcc));
    }

    #[test]
    fn display_uses_labels() {
        assert_eq!(BenchId::Q.to_string(), "Q");
        assert_eq!(BenchId::Ss.to_string(), "SS");
    }

    #[test]
    fn fingerprint_is_deterministic_and_field_sensitive() {
        use asap_core::scheme::AsapOpts;
        let base = WorkloadSpec::new(BenchId::Hm, SchemeKind::Asap);
        assert_eq!(base.fingerprint(), base.fingerprint());
        let variants = [
            WorkloadSpec::new(BenchId::Q, SchemeKind::Asap),
            WorkloadSpec::new(BenchId::Hm, SchemeKind::SwUndo),
            WorkloadSpec::new(BenchId::Hm, SchemeKind::AsapWith(AsapOpts::all())),
            base.with_threads(5),
            base.with_ops(201),
            base.with_value_bytes(2048),
            base.with_seed(1),
            base.with_tracking(),
            base.with_crash_after(0),
            base.with_system(SystemConfig::small()),
            base.with_trace(TraceSettings::enabled()),
            base.with_telemetry(TelemetrySettings::enabled()),
        ];
        for v in &variants {
            assert_ne!(v.fingerprint(), base.fingerprint(), "{v:?}");
        }
    }

    #[test]
    fn fingerprint_distinguishes_asap_opt_subsets() {
        use asap_core::scheme::AsapOpts;
        let spec = |o| WorkloadSpec::new(BenchId::Q, SchemeKind::AsapWith(o)).fingerprint();
        let fps = [
            spec(AsapOpts::none()),
            spec(AsapOpts::coalescing_only()),
            spec(AsapOpts::coalescing_and_lpo()),
            spec(AsapOpts::all()),
            WorkloadSpec::new(BenchId::Q, SchemeKind::Asap).fingerprint(),
        ];
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn builders_compose() {
        let s = WorkloadSpec::small(BenchId::Hm, SchemeKind::Asap)
            .with_value_bytes(2048)
            .with_threads(3)
            .with_ops(10)
            .with_seed(7)
            .with_tracking()
            .with_crash_after(100);
        assert_eq!(s.value_bytes, 2048);
        assert_eq!(s.threads, 3);
        assert_eq!(s.ops_per_thread, 10);
        assert_eq!(s.seed, 7);
        assert!(s.track);
        assert_eq!(s.crash_after, Some(100));
    }
}
