//! Lossless JSON round-trip for [`RunResult`].
//!
//! The persistent run cache (`asap_bench::runcache`) stores finished
//! results on disk and must hand back a result *bit-identical* to a
//! fresh simulation — figure stdout is formatted from these fields, and
//! the equivalence suite compares it byte for byte. "Mostly right" JSON
//! is therefore useless here; this module's contract is exact:
//!
//! - every integer survives via [`asap_sim::json`]'s exact-integer
//!   parsing (`Value::Int`), including full-range `u64` counters;
//! - the `u128` sums inside [`Stats`] travel as decimal strings
//!   ([`Stats::to_exact_json`]);
//! - floats are emitted in Rust's shortest-round-trip form, with
//!   explicit spellings for the cases that would lose bits as bare
//!   literals (`-0.0`) or are not JSON numbers at all (`inf`, `-inf`,
//!   `nan` travel as tagged strings);
//! - serialization is canonical — equal results serialize to identical
//!   bytes, so cache files can be compared directly.
//!
//! The property suite in `tests/prop_resultjson.rs` drives randomized
//! results through [`to_json`] → [`from_json`] and asserts field-exact
//! equality.

use asap_core::machine::RunOutcome;
use asap_core::scheme::{AsapOpts, RecoveryReport, SchemeKind};
use asap_mem::Rid;
use asap_sim::json::{self, Value};
use asap_sim::{CacheConfig, MemConfig, Stats, SystemConfig, TelemetrySettings, TraceSettings};

use crate::driver::{CrashPointOutcome, RunResult, StallBreakdown};
use crate::spec::{BenchId, WorkloadSpec};

/// Serializes a result to its canonical cache JSON (one line, no frills).
pub fn to_json(r: &RunResult) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"spec\":");
    spec_to_json(&mut out, &r.spec);
    out.push_str(&format!(
        ",\"tx\":{},\"exec_cycles\":{},\"drained_cycles\":{},\"throughput\":{},\
         \"pm_writes\":{},\"region_cycles_mean\":{}",
        r.tx,
        r.exec_cycles,
        r.drained_cycles,
        float(r.throughput),
        r.pm_writes,
        float(r.region_cycles_mean),
    ));
    out.push_str(&format!(
        ",\"stalls\":{{\"compute\":{},\"log_full\":{},\"wpq_backpressure\":{},\
         \"dependency_wait\":{},\"commit_wait\":{}}}",
        float(r.stalls.compute),
        float(r.stalls.log_full),
        float(r.stalls.wpq_backpressure),
        float(r.stalls.dependency_wait),
        float(r.stalls.commit_wait),
    ));
    out.push_str(",\"stats\":");
    out.push_str(&r.stats.to_exact_json());
    for (name, text) in [
        ("chrome_trace", &r.chrome_trace),
        ("trace_dump", &r.trace_dump),
        ("timeseries", &r.timeseries),
        ("lifecycle", &r.lifecycle),
        ("lifecycle_dot", &r.lifecycle_dot),
    ] {
        out.push_str(&format!(",\"{name}\":"));
        match text {
            // The artifacts are themselves JSON/text blobs; they travel
            // as strings so the round trip is byte-exact whatever their
            // internal formatting.
            Some(t) => out.push_str(&format!("\"{}\"", json::escape(t))),
            None => out.push_str("null"),
        }
    }
    out.push_str(",\"hot_lines\":[");
    for (i, (line, n)) in r.hot_lines.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{line},{n}]"));
    }
    out.push_str("],\"outcome\":");
    out.push_str(match r.outcome {
        RunOutcome::Completed => "\"completed\"",
        RunOutcome::Crashed => "\"crashed\"",
    });
    out.push_str(",\"recovery\":");
    match &r.recovery {
        None => out.push_str("null"),
        Some(rep) => {
            out.push_str("{\"uncommitted\":");
            rids_to_json(&mut out, &rep.uncommitted);
            out.push_str(",\"replayed\":");
            rids_to_json(&mut out, &rep.replayed);
            out.push_str(&format!(",\"restored_lines\":{}}}", rep.restored_lines));
        }
    }
    out.push_str(",\"crash_points\":[");
    for (i, c) in r.crash_points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"crash_after\":{},\"crashed\":{},\"uncommitted\":{},\"replayed\":{},\
             \"restored_lines\":{},\"tx\":{}}}",
            c.crash_after, c.crashed, c.uncommitted, c.replayed, c.restored_lines, c.tx,
        ));
    }
    out.push(']');
    out.push('}');
    out
}

/// Deserializes a result from [`to_json`] output.
///
/// # Errors
///
/// Returns a description of the first missing, ill-typed, or
/// out-of-range field. A cache treats any error as a miss.
pub fn from_json(text: &str) -> Result<RunResult, String> {
    let v = json::parse(text).map_err(|e| format!("result: {e}"))?;
    let spec = spec_from_json(v.get("spec").ok_or("result: missing spec")?)?;
    let stats = Stats::from_exact_json(v.get("stats").ok_or("result: missing stats")?)?;
    let stalls = {
        let s = v.get("stalls").ok_or("result: missing stalls")?;
        StallBreakdown {
            compute: float_field(s, "compute")?,
            log_full: float_field(s, "log_full")?,
            wpq_backpressure: float_field(s, "wpq_backpressure")?,
            dependency_wait: float_field(s, "dependency_wait")?,
            commit_wait: float_field(s, "commit_wait")?,
        }
    };
    let hot_lines = v
        .get("hot_lines")
        .and_then(Value::as_array)
        .ok_or("result: missing hot_lines")?
        .iter()
        .map(|pair| {
            let p = pair.as_array().filter(|p| p.len() == 2);
            match p {
                Some(p) => Ok((
                    p[0].as_u64().ok_or("result: hot line addr not a u64")?,
                    p[1].as_u64().ok_or("result: hot line count not a u64")?,
                )),
                None => Err("result: hot_lines entry not a pair".to_string()),
            }
        })
        .collect::<Result<Vec<(u64, u64)>, String>>()?;
    let outcome = match v.get("outcome").and_then(Value::as_str) {
        Some("completed") => RunOutcome::Completed,
        Some("crashed") => RunOutcome::Crashed,
        _ => return Err("result: bad outcome".into()),
    };
    let recovery = match v.get("recovery").ok_or("result: missing recovery")? {
        Value::Null => None,
        rep => Some(RecoveryReport {
            uncommitted: rids_from_json(rep.get("uncommitted"))?,
            replayed: rids_from_json(rep.get("replayed"))?,
            restored_lines: u64_field(rep, "restored_lines")?,
        }),
    };
    // Absent in pre-sweep cache files: decode as the empty summary.
    let crash_points = match v.get("crash_points").and_then(Value::as_array) {
        None => Vec::new(),
        Some(list) => list
            .iter()
            .map(|c| {
                Ok(CrashPointOutcome {
                    crash_after: u64_field(c, "crash_after")?,
                    crashed: bool_field(c, "crashed")?,
                    uncommitted: u64_field(c, "uncommitted")?,
                    replayed: u64_field(c, "replayed")?,
                    restored_lines: u64_field(c, "restored_lines")?,
                    tx: u64_field(c, "tx")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
    };
    Ok(RunResult {
        spec,
        tx: u64_field(&v, "tx")?,
        exec_cycles: u64_field(&v, "exec_cycles")?,
        drained_cycles: u64_field(&v, "drained_cycles")?,
        throughput: float_field(&v, "throughput")?,
        pm_writes: u64_field(&v, "pm_writes")?,
        region_cycles_mean: float_field(&v, "region_cycles_mean")?,
        stalls,
        stats,
        chrome_trace: opt_str_field(&v, "chrome_trace")?,
        trace_dump: opt_str_field(&v, "trace_dump")?,
        timeseries: opt_str_field(&v, "timeseries")?,
        lifecycle: opt_str_field(&v, "lifecycle")?,
        lifecycle_dot: opt_str_field(&v, "lifecycle_dot")?,
        hot_lines,
        outcome,
        recovery,
        crash_points,
    })
}

/// Emits an `f64` so that parsing recovers the exact bit pattern:
/// shortest-round-trip decimal for ordinary values, an explicit `-0.0`
/// (a bare `-0` would parse as integer zero and drop the sign), and
/// tagged strings for the non-finite values JSON cannot spell.
fn float(v: f64) -> String {
    if v.is_nan() {
        "\"nan\"".into()
    } else if v == f64::INFINITY {
        "\"inf\"".into()
    } else if v == f64::NEG_INFINITY {
        "\"-inf\"".into()
    } else if v == 0.0 && v.is_sign_negative() {
        "-0.0".into()
    } else {
        format!("{v}")
    }
}

fn float_field(v: &Value, k: &str) -> Result<f64, String> {
    match v.get(k) {
        Some(Value::Str(s)) => match s.as_str() {
            "nan" => Ok(f64::NAN),
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            _ => Err(format!("result: {k} bad float string")),
        },
        Some(n) => n
            .as_f64()
            .ok_or_else(|| format!("result: {k} not a number")),
        None => Err(format!("result: missing {k}")),
    }
}

fn u64_field(v: &Value, k: &str) -> Result<u64, String> {
    v.get(k)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("result: {k} not a u64"))
}

fn u32_field(v: &Value, k: &str) -> Result<u32, String> {
    u64_field(v, k)?
        .try_into()
        .map_err(|_| format!("result: {k} out of u32 range"))
}

fn bool_field(v: &Value, k: &str) -> Result<bool, String> {
    match v.get(k) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(format!("result: {k} not a bool")),
    }
}

fn opt_str_field(v: &Value, k: &str) -> Result<Option<String>, String> {
    match v.get(k) {
        Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        _ => Err(format!("result: {k} not a string or null")),
    }
}

fn rids_to_json(out: &mut String, rids: &[Rid]) {
    out.push('[');
    for (i, r) in rids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{},{}]", r.thread(), r.local()));
    }
    out.push(']');
}

fn rids_from_json(v: Option<&Value>) -> Result<Vec<Rid>, String> {
    v.and_then(Value::as_array)
        .ok_or("result: missing rid list")?
        .iter()
        .map(|pair| {
            let p = pair.as_array().filter(|p| p.len() == 2);
            match p {
                Some(p) => {
                    let thread = p[0]
                        .as_u64()
                        .and_then(|t| u32::try_from(t).ok())
                        .ok_or("result: rid thread not a u32")?;
                    let local = p[1].as_u64().ok_or("result: rid local not a u64")?;
                    Ok(Rid::new(thread, local))
                }
                None => Err("result: rid entry not a pair".to_string()),
            }
        })
        .collect()
}

fn spec_to_json(out: &mut String, s: &WorkloadSpec) {
    out.push_str(&format!("{{\"bench\":\"{}\",\"scheme\":", s.bench.label()));
    match s.scheme {
        SchemeKind::NoPersist => out.push_str("{\"kind\":\"np\"}"),
        SchemeKind::SwUndo => out.push_str("{\"kind\":\"sw\"}"),
        SchemeKind::SwDpoOnly => out.push_str("{\"kind\":\"sw_dpo_only\"}"),
        SchemeKind::HwUndo => out.push_str("{\"kind\":\"hw_undo\"}"),
        SchemeKind::HwRedo => out.push_str("{\"kind\":\"hw_redo\"}"),
        SchemeKind::Asap => out.push_str("{\"kind\":\"asap\"}"),
        SchemeKind::AsapWith(o) => out.push_str(&format!(
            "{{\"kind\":\"asap_with\",\"dpo_coalescing\":{},\"lpo_dropping\":{},\
             \"dpo_dropping\":{}}}",
            o.dpo_coalescing, o.lpo_dropping, o.dpo_dropping
        )),
    }
    out.push_str(",\"system\":");
    system_to_json(out, &s.system);
    out.push_str(&format!(
        ",\"threads\":{},\"ops_per_thread\":{},\"value_bytes\":{},\"keyspace\":{},\
         \"setup_keys\":{},\"seed\":{},\"track\":{}",
        s.threads, s.ops_per_thread, s.value_bytes, s.keyspace, s.setup_keys, s.seed, s.track,
    ));
    match s.crash_after {
        Some(n) => out.push_str(&format!(",\"crash_after\":{n}")),
        None => out.push_str(",\"crash_after\":null"),
    }
    out.push_str(&format!(
        ",\"trace\":{{\"enabled\":{},\"cap\":{}}},\
         \"telemetry\":{{\"enabled\":{},\"period\":{},\"cap\":{}}}}}",
        s.trace.enabled, s.trace.cap, s.telemetry.enabled, s.telemetry.period, s.telemetry.cap,
    ));
}

fn system_to_json(out: &mut String, sys: &SystemConfig) {
    let cache = |c: &CacheConfig| {
        format!(
            "{{\"size_bytes\":{},\"ways\":{},\"latency\":{}}}",
            c.size_bytes, c.ways, c.latency
        )
    };
    out.push_str(&format!(
        "{{\"cores\":{},\"l1\":{},\"l2\":{},\"llc\":{},\"mem\":{{\"controllers\":{},\
         \"channels_per_mc\":{},\"wpq_entries\":{},\"dram_latency\":{},\
         \"dram_write_service\":{},\"pm_latency_mult\":{},\"mc_hop_latency\":{},\
         \"wpq_residency\":{},\"wpq_drain_watermark\":{}}},\"asap\":{{\
         \"cl_list_entries\":{},\"clptr_slots\":{},\"dep_list_entries\":{},\
         \"dep_slots\":{},\"lh_wpq_entries\":{},\"bloom_bits\":{},\"dpo_distance\":{},\
         \"log_entries_per_record\":{},\"numa_broadcast_filter\":{}}},\
         \"compute_cost\":{},\"store_cost\":{},\"lock_cost\":{}}}",
        sys.cores,
        cache(&sys.l1),
        cache(&sys.l2),
        cache(&sys.llc),
        sys.mem.controllers,
        sys.mem.channels_per_mc,
        sys.mem.wpq_entries,
        sys.mem.dram_latency,
        sys.mem.dram_write_service,
        sys.mem.pm_latency_mult,
        sys.mem.mc_hop_latency,
        sys.mem.wpq_residency,
        sys.mem.wpq_drain_watermark,
        sys.asap.cl_list_entries,
        sys.asap.clptr_slots,
        sys.asap.dep_list_entries,
        sys.asap.dep_slots,
        sys.asap.lh_wpq_entries,
        sys.asap.bloom_bits,
        sys.asap.dpo_distance,
        sys.asap.log_entries_per_record,
        sys.asap.numa_broadcast_filter,
        sys.compute_cost,
        sys.store_cost,
        sys.lock_cost,
    ));
}

fn bench_from_label(label: &str) -> Result<BenchId, String> {
    BenchId::all()
        .into_iter()
        .find(|b| b.label() == label)
        .ok_or_else(|| format!("result: unknown bench {label}"))
}

fn cache_from_json(v: &Value) -> Result<CacheConfig, String> {
    Ok(CacheConfig {
        size_bytes: u64_field(v, "size_bytes")?,
        ways: u32_field(v, "ways")?,
        latency: u64_field(v, "latency")?,
    })
}

fn system_from_json(v: &Value) -> Result<SystemConfig, String> {
    let m = v.get("mem").ok_or("result: missing mem config")?;
    let a = v.get("asap").ok_or("result: missing asap config")?;
    Ok(SystemConfig {
        cores: u32_field(v, "cores")?,
        l1: cache_from_json(v.get("l1").ok_or("result: missing l1")?)?,
        l2: cache_from_json(v.get("l2").ok_or("result: missing l2")?)?,
        llc: cache_from_json(v.get("llc").ok_or("result: missing llc")?)?,
        mem: MemConfig {
            controllers: u32_field(m, "controllers")?,
            channels_per_mc: u32_field(m, "channels_per_mc")?,
            wpq_entries: u32_field(m, "wpq_entries")?,
            dram_latency: u64_field(m, "dram_latency")?,
            dram_write_service: u64_field(m, "dram_write_service")?,
            pm_latency_mult: u64_field(m, "pm_latency_mult")?,
            mc_hop_latency: u64_field(m, "mc_hop_latency")?,
            wpq_residency: u64_field(m, "wpq_residency")?,
            wpq_drain_watermark: u32_field(m, "wpq_drain_watermark")?,
        },
        asap: asap_sim::AsapConfig {
            cl_list_entries: u32_field(a, "cl_list_entries")?,
            clptr_slots: u32_field(a, "clptr_slots")?,
            dep_list_entries: u32_field(a, "dep_list_entries")?,
            dep_slots: u32_field(a, "dep_slots")?,
            lh_wpq_entries: u32_field(a, "lh_wpq_entries")?,
            bloom_bits: u32_field(a, "bloom_bits")?,
            dpo_distance: u32_field(a, "dpo_distance")?,
            log_entries_per_record: u32_field(a, "log_entries_per_record")?,
            numa_broadcast_filter: bool_field(a, "numa_broadcast_filter")?,
        },
        compute_cost: u64_field(v, "compute_cost")?,
        store_cost: u64_field(v, "store_cost")?,
        lock_cost: u64_field(v, "lock_cost")?,
    })
}

fn spec_from_json(v: &Value) -> Result<WorkloadSpec, String> {
    let bench = bench_from_label(
        v.get("bench")
            .and_then(Value::as_str)
            .ok_or("result: missing bench")?,
    )?;
    let sch = v.get("scheme").ok_or("result: missing scheme")?;
    let scheme = match sch.get("kind").and_then(Value::as_str) {
        Some("np") => SchemeKind::NoPersist,
        Some("sw") => SchemeKind::SwUndo,
        Some("sw_dpo_only") => SchemeKind::SwDpoOnly,
        Some("hw_undo") => SchemeKind::HwUndo,
        Some("hw_redo") => SchemeKind::HwRedo,
        Some("asap") => SchemeKind::Asap,
        Some("asap_with") => SchemeKind::AsapWith(AsapOpts {
            dpo_coalescing: bool_field(sch, "dpo_coalescing")?,
            lpo_dropping: bool_field(sch, "lpo_dropping")?,
            dpo_dropping: bool_field(sch, "dpo_dropping")?,
        }),
        _ => return Err("result: unknown scheme kind".into()),
    };
    let crash_after = match v.get("crash_after") {
        Some(Value::Null) => None,
        Some(n) => Some(n.as_u64().ok_or("result: crash_after not a u64")?),
        None => return Err("result: missing crash_after".into()),
    };
    let tr = v.get("trace").ok_or("result: missing trace settings")?;
    let trace = TraceSettings {
        enabled: bool_field(tr, "enabled")?,
        cap: u64_field(tr, "cap")? as usize,
    };
    let tl = v
        .get("telemetry")
        .ok_or("result: missing telemetry settings")?;
    let telemetry = TelemetrySettings {
        enabled: bool_field(tl, "enabled")?,
        period: u64_field(tl, "period")?,
        cap: u64_field(tl, "cap")? as usize,
    };
    Ok(WorkloadSpec {
        bench,
        scheme,
        system: system_from_json(v.get("system").ok_or("result: missing system")?)?,
        threads: u32_field(v, "threads")?,
        ops_per_thread: u64_field(v, "ops_per_thread")?,
        value_bytes: u64_field(v, "value_bytes")?,
        keyspace: u64_field(v, "keyspace")?,
        setup_keys: u64_field(v, "setup_keys")?,
        seed: u64_field(v, "seed")?,
        track: bool_field(v, "track")?,
        crash_after,
        trace,
        telemetry,
    })
}

/// Field-exact equality of two results (floats compared by bit pattern,
/// the stats registry structurally). `RunResult` deliberately does not
/// implement `PartialEq` — float fields make a derived `==` misleading —
/// but the cache and its tests need an exactness oracle.
pub fn results_identical(a: &RunResult, b: &RunResult) -> bool {
    let spec_eq = {
        let (sa, sb) = (&a.spec, &b.spec);
        let mut x = String::new();
        let mut y = String::new();
        spec_to_json(&mut x, sa);
        spec_to_json(&mut y, sb);
        x == y
    };
    spec_eq
        && a.tx == b.tx
        && a.exec_cycles == b.exec_cycles
        && a.drained_cycles == b.drained_cycles
        && a.throughput.to_bits() == b.throughput.to_bits()
        && a.pm_writes == b.pm_writes
        && a.region_cycles_mean.to_bits() == b.region_cycles_mean.to_bits()
        && stall_bits(&a.stalls) == stall_bits(&b.stalls)
        && a.stats == b.stats
        && a.chrome_trace == b.chrome_trace
        && a.trace_dump == b.trace_dump
        && a.timeseries == b.timeseries
        && a.lifecycle == b.lifecycle
        && a.lifecycle_dot == b.lifecycle_dot
        && a.hot_lines == b.hot_lines
        && a.outcome == b.outcome
        && a.recovery == b.recovery
        && a.crash_points == b.crash_points
}

fn stall_bits(s: &StallBreakdown) -> [u64; 5] {
    [
        s.compute.to_bits(),
        s.log_full.to_bits(),
        s.wpq_backpressure.to_bits(),
        s.dependency_wait.to_bits(),
        s.commit_wait.to_bits(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run;

    #[test]
    fn real_run_round_trips_exactly() {
        let spec = WorkloadSpec::small(BenchId::Hm, SchemeKind::Asap)
            .with_ops(15)
            .with_telemetry(TelemetrySettings::enabled().with_period(64));
        let r = run(&spec);
        let text = to_json(&r);
        let back = from_json(&text).expect("decodes");
        assert!(results_identical(&r, &back));
        // Canonical: serialization of the reconstruction is byte-equal.
        assert_eq!(to_json(&back), text);
    }

    #[test]
    fn crashed_run_round_trips_recovery_report() {
        let spec = WorkloadSpec::small(BenchId::Q, SchemeKind::HwUndo)
            .with_ops(30)
            .with_tracking()
            .with_crash_after(25);
        let r = run(&spec);
        assert_eq!(r.outcome, RunOutcome::Crashed);
        let back = from_json(&to_json(&r)).expect("decodes");
        assert!(results_identical(&r, &back));
        assert_eq!(back.recovery, r.recovery);
    }

    #[test]
    fn float_spellings_round_trip() {
        for v in [
            0.0,
            -0.0,
            1.5,
            -2.75e-3,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            f64::MIN_POSITIVE,
            1e100,
        ] {
            let doc = format!("{{\"x\":{}}}", float(v));
            let parsed = json::parse(&doc).expect("parses");
            let back = float_field(&parsed, "x").expect("decodes");
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        // NaN: any NaN in, canonical NaN out.
        let doc = format!("{{\"x\":{}}}", float(f64::NAN));
        assert!(float_field(&json::parse(&doc).unwrap(), "x")
            .unwrap()
            .is_nan());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(from_json("").is_err());
        assert!(from_json("{}").is_err());
        assert!(from_json("[1,2]").is_err());
        // A valid document with one field clobbered.
        let r = run(&WorkloadSpec::small(BenchId::Q, SchemeKind::NoPersist).with_ops(5));
        let good = to_json(&r);
        let bad = good.replace("\"outcome\":\"completed\"", "\"outcome\":\"maybe\"");
        assert!(from_json(&bad).is_err());
    }
}
