//! Deep/large structure tests: multi-level B-tree splits, big red-black
//! trees, multi-threaded TPC-C, large-value string swaps.

use asap_core::machine::{Machine, MachineConfig, StepFn, ThreadCtx};
use asap_core::scheme::SchemeKind;
use asap_workloads::structures::{
    btree::BTree, rbtree::RbTree, stringswap::StringSwap, tpcc, tpcc::Tpcc, Benchmark,
};
use asap_workloads::{BenchId, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn machine(threads: u32) -> Machine {
    let mut cfg = MachineConfig::small(SchemeKind::NoPersist, threads);
    cfg.heap_bytes = 64 << 20;
    Machine::new(cfg)
}

#[test]
fn btree_grows_three_levels_and_stays_balanced() {
    let spec = WorkloadSpec::small(BenchId::Bt, SchemeKind::NoPersist);
    let mut m = machine(1);
    let t = BTree::create(&mut m, &spec);
    // 7 keys/node, fanout 8: ~400 keys guarantee depth ≥ 3.
    m.run_thread(0, |ctx| {
        for k in 0..400u64 {
            ctx.begin_region();
            // Insertion order designed to hit both leaf-split directions.
            let key = (k * 193) % 1009;
            t.put(ctx, key, k, 64);
            ctx.end_region();
        }
    });
    t.verify(&mut m).unwrap();
    let keys = t.debug_keys(&mut m);
    assert!(keys.len() > 350, "distinct keys inserted: {}", keys.len());
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn rbtree_thousand_sequential_keys() {
    let spec = WorkloadSpec::small(BenchId::Rb, SchemeKind::NoPersist);
    let mut m = machine(1);
    let t = RbTree::create(&mut m, &spec);
    m.run_thread(0, |ctx| {
        ctx.begin_region();
        for k in 0..1000u64 {
            t.put(ctx, k, k, 64);
        }
        ctx.end_region();
    });
    // Red-black properties bound the height; `verify` checks them all.
    t.verify(&mut m).unwrap();
    assert_eq!(t.debug_keys(&mut m).len(), 1000);
}

#[test]
fn tpcc_four_threads_full_ring_wraparound() {
    let spec = WorkloadSpec::small(BenchId::Tpcc, SchemeKind::NoPersist);
    let mut m = machine(4);
    let mut t = Tpcc::create(&mut m, &spec);
    t.setup(&mut m, &spec);
    // Enough orders to wrap a district's order ring (256 per district).
    let per_thread = 160u64;
    let mut steps: Vec<StepFn> = (0..4usize)
        .map(|tid| {
            let bench = t;
            let mut rng = StdRng::seed_from_u64(tid as u64);
            let mut left = per_thread;
            Box::new(move |ctx: &mut ThreadCtx| {
                if left == 0 {
                    return false;
                }
                left -= 1;
                bench.step(ctx, &mut rng, &spec);
                left > 0
            }) as StepFn
        })
        .collect();
    m.run(&mut steps);
    drop(steps);
    m.drain();
    t.verify(&mut m).unwrap();
    let total: u64 = (0..tpcc::DISTRICTS)
        .map(|d| t.debug_orders(&mut m, d))
        .sum();
    assert_eq!(total, 4 * per_thread);
}

#[test]
fn stringswap_2kb_under_asap_with_crash() {
    let spec = WorkloadSpec::small(BenchId::Ss, SchemeKind::Asap).with_value_bytes(2048);
    let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 2).with_tracking());
    let mut t = StringSwap::create(&mut m, &spec);
    t.setup(&mut m, &spec);
    m.drain();
    m.sync_thread_clocks();
    m.arm_crash_after_additional(300);
    let mut rng0 = StdRng::seed_from_u64(1);
    let mut rng1 = StdRng::seed_from_u64(2);
    let mut crashed = false;
    for _ in 0..40 {
        for (tid, rng) in [(0usize, &mut rng0), (1, &mut rng1)] {
            let o = m.run_thread(tid, |ctx| t.step(ctx, rng, &spec));
            if o == asap_core::machine::RunOutcome::Crashed {
                crashed = true;
                break;
            }
        }
        if crashed {
            break;
        }
    }
    assert!(crashed, "2KB swaps write plenty");
    m.recover();
    // Swaps are atomic: the multiset of 2KB strings is intact.
    t.verify(&mut m).unwrap();
}
