//! Property suite for the run cache's two foundations:
//!
//! 1. the cell JSON of `asap_workloads::resultjson` is *lossless* —
//!    any `RunResult`, including adversarial float/string/extreme-integer
//!    content no real simulation would produce, survives
//!    `to_json` → `from_json` field-exact and re-serializes to identical
//!    bytes;
//! 2. the spec fingerprint is *complete* — changing any single field of
//!    a random `WorkloadSpec` moves the fingerprint, so no two distinct
//!    cells can ever share a cache key.

use asap_core::machine::RunOutcome;
use asap_core::scheme::{AsapOpts, RecoveryReport, SchemeKind};
use asap_mem::Rid;
use asap_sim::{Stats, SystemConfig, TelemetrySettings, TraceSettings};
use asap_workloads::resultjson::{from_json, results_identical, to_json};
use asap_workloads::{BenchId, RunResult, StallBreakdown, WorkloadSpec};
use proptest::prelude::*;
use proptest::strategy::FnGen;
use proptest::test_runner::TestRng;

/// An adversarial `f64`: signed zeros, infinities, NaN, huge/tiny magnitudes
/// and arbitrary finite bit patterns. NaN payloads are canonicalized (the
/// codec stores every NaN as the string `"nan"`), so only canonical NaN is
/// generated.
fn arb_f64(rng: &mut TestRng) -> f64 {
    match rng.below(8) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => 0.0,
        5 => {
            let v = f64::from_bits(rng.next_u64());
            if v.is_nan() {
                f64::NAN
            } else {
                v
            }
        }
        6 => rng.unit_f64() * 1e18,
        _ => -rng.unit_f64() / 1e9,
    }
}

/// A u64 biased toward the edges the float-based JSON path would mangle.
fn arb_u64(rng: &mut TestRng) -> u64 {
    match rng.below(4) {
        0 => u64::MAX - rng.below(3),
        1 => (1 << 53) + rng.below(16), // beyond f64's exact-integer range
        2 => rng.next_u64(),
        _ => rng.below(100),
    }
}

/// A string exercising every escape class the JSON writer handles.
fn arb_string(rng: &mut TestRng) -> String {
    const PIECES: [&str; 8] = [
        "plain",
        "quote\"backslash\\",
        "control\u{1}\u{1f}",
        "newline\n\ttab",
        "unicode é→😀",
        "",
        "{\"nested\":\"json\"}",
        "trailing space ",
    ];
    let n = rng.below(4);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(PIECES[rng.below(PIECES.len() as u64) as usize]);
    }
    s
}

fn arb_opt_string(rng: &mut TestRng) -> Option<String> {
    if rng.below(3) == 0 {
        None
    } else {
        Some(arb_string(rng))
    }
}

fn arb_scheme(rng: &mut TestRng) -> SchemeKind {
    match rng.below(7) {
        0 => SchemeKind::NoPersist,
        1 => SchemeKind::SwUndo,
        2 => SchemeKind::SwDpoOnly,
        3 => SchemeKind::HwUndo,
        4 => SchemeKind::HwRedo,
        5 => SchemeKind::Asap,
        _ => SchemeKind::AsapWith(AsapOpts {
            dpo_coalescing: rng.below(2) == 0,
            lpo_dropping: rng.below(2) == 0,
            dpo_dropping: rng.below(2) == 0,
        }),
    }
}

fn arb_spec(rng: &mut TestRng) -> WorkloadSpec {
    let bench = BenchId::all()[rng.below(9) as usize];
    let mut s = WorkloadSpec::new(bench, arb_scheme(rng));
    if rng.below(2) == 0 {
        s.system = SystemConfig::small();
    }
    s.system.cores = 1 + rng.below(64) as u32;
    s.system.mem.wpq_residency = arb_u64(rng);
    s.threads = 1 + rng.below(16) as u32;
    s.ops_per_thread = arb_u64(rng);
    s.value_bytes = arb_u64(rng);
    s.keyspace = arb_u64(rng);
    s.setup_keys = arb_u64(rng);
    s.seed = arb_u64(rng);
    s.track = rng.below(2) == 0;
    s.crash_after = if rng.below(2) == 0 {
        Some(arb_u64(rng))
    } else {
        None
    };
    s.trace = TraceSettings {
        enabled: rng.below(2) == 0,
        cap: rng.below(1 << 21) as usize,
    };
    s.telemetry = TelemetrySettings {
        enabled: rng.below(2) == 0,
        period: 1 + rng.below(4096),
        cap: rng.below(1 << 16) as usize,
    };
    s
}

fn arb_stats(rng: &mut TestRng) -> Stats {
    let mut st = Stats::new();
    for _ in 0..rng.below(4) {
        st.add(&arb_string(rng), arb_u64(rng) / 2);
    }
    for _ in 0..rng.below(3) {
        let name = arb_string(rng);
        for _ in 0..1 + rng.below(20) {
            st.sample(&name, arb_u64(rng));
        }
    }
    st
}

fn arb_result(rng: &mut TestRng) -> RunResult {
    let crashed = rng.below(3) == 0;
    RunResult {
        spec: arb_spec(rng),
        tx: arb_u64(rng),
        exec_cycles: arb_u64(rng),
        drained_cycles: arb_u64(rng),
        throughput: arb_f64(rng),
        pm_writes: arb_u64(rng),
        region_cycles_mean: arb_f64(rng),
        stalls: StallBreakdown {
            compute: arb_f64(rng),
            log_full: arb_f64(rng),
            wpq_backpressure: arb_f64(rng),
            dependency_wait: arb_f64(rng),
            commit_wait: arb_f64(rng),
        },
        stats: arb_stats(rng),
        chrome_trace: arb_opt_string(rng),
        trace_dump: arb_opt_string(rng),
        timeseries: arb_opt_string(rng),
        lifecycle: arb_opt_string(rng),
        lifecycle_dot: arb_opt_string(rng),
        hot_lines: (0..rng.below(6))
            .map(|_| (arb_u64(rng), arb_u64(rng)))
            .collect(),
        outcome: if crashed {
            RunOutcome::Crashed
        } else {
            RunOutcome::Completed
        },
        recovery: if crashed {
            Some(RecoveryReport {
                uncommitted: (0..rng.below(5))
                    .map(|_| Rid::new(rng.below(u64::from(u32::MAX)) as u32, arb_u64(rng)))
                    .collect(),
                replayed: (0..rng.below(5))
                    .map(|_| Rid::new(rng.below(16) as u32, rng.below(1000)))
                    .collect(),
                restored_lines: arb_u64(rng),
            })
        } else {
            None
        },
        crash_points: (0..rng.below(4))
            .map(|_| asap_workloads::CrashPointOutcome {
                crash_after: arb_u64(rng),
                crashed: rng.below(2) == 0,
                uncommitted: arb_u64(rng),
                replayed: arb_u64(rng),
                restored_lines: arb_u64(rng),
                tx: arb_u64(rng),
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn result_json_round_trip_is_lossless(r in FnGen::new(arb_result)) {
        let text = to_json(&r);
        let back = from_json(&text).expect("canonical JSON must decode");
        prop_assert!(results_identical(&r, &back), "decode changed a field");
        // Canonical form: serializing the reconstruction is byte-equal,
        // so cache files can be compared/deduplicated as raw bytes.
        prop_assert_eq!(to_json(&back), text);
    }

    #[test]
    fn fingerprint_moves_when_any_single_field_changes(
        spec in FnGen::new(arb_spec),
        which in 0u64..13,
    ) {
        let base = spec.fingerprint();
        let mut m = spec;
        match which {
            0 => {
                m.bench = if m.bench == BenchId::Q { BenchId::Hm } else { BenchId::Q };
            }
            1 => {
                m.scheme = match m.scheme {
                    SchemeKind::NoPersist => SchemeKind::Asap,
                    _ => SchemeKind::NoPersist,
                };
            }
            2 => m.system.cores += 1,
            3 => m.threads += 1,
            4 => m.ops_per_thread = m.ops_per_thread.wrapping_add(1),
            5 => m.value_bytes = m.value_bytes.wrapping_add(1),
            6 => m.keyspace = m.keyspace.wrapping_add(1),
            7 => m.setup_keys = m.setup_keys.wrapping_add(1),
            8 => m.seed = m.seed.wrapping_add(1),
            9 => m.track = !m.track,
            10 => {
                m.crash_after = match m.crash_after {
                    None => Some(0),
                    Some(n) => Some(n.wrapping_add(1)),
                };
            }
            11 => m.trace.enabled = !m.trace.enabled,
            _ => m.telemetry.period += 1,
        }
        prop_assert_ne!(m.fingerprint(), base, "mutation {} not keyed", which);
        // And the mutation is reversible evidence, not hash instability:
        prop_assert_eq!(spec.fingerprint(), base);
    }
}
