//! Property-based model checking of the persistent structures.
//!
//! Random insert/update sequences are applied both to the PM structure
//! (running on a NoPersist machine for speed) and to `BTreeMap` as the
//! reference model; lookups, in-order walks and structural invariants
//! must agree. Every op runs inside an atomic region, as the benchmarks
//! do.

use asap_core::machine::{Machine, MachineConfig};
use asap_core::scheme::SchemeKind;
use asap_workloads::pmops::payload;
use asap_workloads::structures::{
    bintree::BinTree, btree::BTree, ctree::CritBitTree, echo::Echo, hashmap::HashTable,
    queue::Queue, rbtree::RbTree, Benchmark,
};
use asap_workloads::{BenchId, WorkloadSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn harness(bench: BenchId) -> (Machine, WorkloadSpec) {
    let spec = WorkloadSpec::small(bench, SchemeKind::NoPersist);
    let m = Machine::new(MachineConfig::small(spec.scheme, 1));
    (m, spec)
}

fn ops_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..96, 1u64..u64::MAX), 1..120)
}

macro_rules! tree_model_check {
    ($name:ident, $ty:ident, $bench:expr, $sorted_walk:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
            #[test]
            fn $name(ops in ops_strategy()) {
                let (mut m, spec) = harness($bench);
                let t = $ty::create(&mut m, &spec);
                let mut model: BTreeMap<u64, u64> = BTreeMap::new();
                for (key, tag) in &ops {
                    m.run_thread(0, |ctx| {
                        ctx.begin_region();
                        t.put(ctx, *key, *tag, 64);
                        ctx.end_region();
                    });
                    model.insert(*key, *tag);
                }
                // Structural invariants.
                t.verify(&mut m).unwrap();
                // Key set (in order for trees).
                if $sorted_walk {
                    prop_assert_eq!(
                        t.debug_keys(&mut m),
                        model.keys().copied().collect::<Vec<_>>()
                    );
                }
                // Every key's payload matches the model's latest tag, plus
                // a few misses.
                for (k, tag) in &model {
                    let (k, tag) = (*k, *tag);
                    m.run_thread(0, |ctx| {
                        assert_eq!(t.get(ctx, k, 64).unwrap(), payload(k, tag, 64));
                    });
                }
                for miss in [1000u64, 5000] {
                    m.run_thread(0, |ctx| {
                        assert_eq!(t.get(ctx, miss, 64), None);
                    });
                }
            }
        }
    };
}

tree_model_check!(bintree_matches_model, BinTree, BenchId::Bn, true);
tree_model_check!(btree_matches_model, BTree, BenchId::Bt, true);
tree_model_check!(ctree_matches_model, CritBitTree, BenchId::Ct, true);
tree_model_check!(rbtree_matches_model, RbTree, BenchId::Rb, true);

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn hashmap_matches_model(ops in ops_strategy()) {
        let (mut m, spec) = harness(BenchId::Hm);
        let t = HashTable::create(&mut m, &spec);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (key, tag) in &ops {
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                t.put(ctx, *key, *tag, 64);
                ctx.end_region();
            });
            model.insert(*key, *tag);
        }
        t.verify(&mut m).unwrap();
        let mut keys = t.debug_keys(&mut m);
        keys.sort_unstable();
        prop_assert_eq!(keys, model.keys().copied().collect::<Vec<_>>());
        for (k, tag) in &model {
            let (k, tag) = (*k, *tag);
            m.run_thread(0, |ctx| {
                assert_eq!(t.get(ctx, k, 64).unwrap(), payload(k, tag, 64));
            });
        }
    }

    #[test]
    fn echo_versions_match_model(ops in ops_strategy()) {
        let (mut m, spec) = harness(BenchId::Eo);
        let t = Echo::create(&mut m, &spec);
        let mut model: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // key -> (ver, tag)
        for (key, tag) in &ops {
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                t.put(ctx, *key, *tag, 64);
                ctx.end_region();
            });
            let e = model.entry(*key).or_insert((0, 0));
            *e = (e.0 + 1, *tag);
        }
        t.verify(&mut m).unwrap();
        for (k, (ver, tag)) in &model {
            let (k, ver, tag) = (*k, *ver, *tag);
            m.run_thread(0, |ctx| {
                let (v, bytes) = t.get(ctx, k, 64).unwrap();
                assert_eq!(v, ver, "version of key {k}");
                assert_eq!(bytes, payload(k, tag, 64));
            });
        }
    }

    #[test]
    fn queue_matches_vecdeque(ops in proptest::collection::vec((any::<bool>(), 0u64..64), 1..100)) {
        let (mut m, spec) = harness(BenchId::Q);
        let q = Queue::create(&mut m, &spec);
        let mut model = std::collections::VecDeque::new();
        for (deq, key) in &ops {
            if *deq {
                let expect = model.pop_front();
                m.run_thread(0, |ctx| {
                    ctx.begin_region();
                    assert_eq!(q.dequeue(ctx), expect);
                    ctx.end_region();
                });
            } else {
                model.push_back(*key);
                m.run_thread(0, |ctx| {
                    ctx.begin_region();
                    q.enqueue(ctx, *key, 7, 64);
                    ctx.end_region();
                });
            }
        }
        q.verify(&mut m).unwrap();
        prop_assert_eq!(q.debug_keys(&mut m), model.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(q.debug_len(&mut m), model.len() as u64);
    }
}
