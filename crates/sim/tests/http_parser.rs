//! Property suite for the observability server's request parser
//! (`asap_sim::obs::http::parse_request_line`): arbitrary bytes — raw
//! garbage, mutated valid requests, oversized lines — must always yield
//! a typed verdict, never a panic, and well-formed `GET` lines must
//! round-trip their path with the query string stripped.

use asap_sim::obs::http::{parse_request_line, ParseError, MAX_REQUEST_LINE};
use proptest::prelude::*;
use proptest::strategy::FnGen;
use proptest::test_runner::TestRng;

/// Arbitrary request-line bytes, biased toward the interesting
/// neighborhoods: near-valid HTTP, binary junk, pathological sizes.
fn arb_line(rng: &mut TestRng) -> Vec<u8> {
    match rng.below(6) {
        // Pure binary garbage.
        0 => {
            let n = rng.below(64) as usize;
            (0..n).map(|_| rng.next_u64() as u8).collect()
        }
        // A valid line, possibly mutated at one position.
        1 | 2 => {
            let mut line = valid_line(rng);
            if rng.below(2) == 0 && !line.is_empty() {
                let i = rng.below(line.len() as u64) as usize;
                line[i] = rng.next_u64() as u8;
            }
            line
        }
        // Valid pieces glued with the wrong separators.
        3 => {
            let seps = [b' ', b'\t', b'\0', b' '];
            let s = seps[rng.below(4) as usize];
            let mut v = b"GET".to_vec();
            v.push(s);
            v.extend_from_slice(b"/path");
            v.push(s);
            v.extend_from_slice(b"HTTP/1.1");
            v
        }
        // Oversized: valid shape, enormous target.
        4 => {
            let mut v = b"GET /".to_vec();
            v.extend(std::iter::repeat_n(
                b'a',
                MAX_REQUEST_LINE + rng.below(64) as usize,
            ));
            v.extend_from_slice(b" HTTP/1.1");
            v
        }
        // Truncated valid prefix.
        _ => {
            let line = valid_line(rng);
            let cut = rng.below(line.len() as u64 + 1) as usize;
            line[..cut].to_vec()
        }
    }
}

/// A well-formed `GET` request line over a small path/query alphabet.
fn valid_line(rng: &mut TestRng) -> Vec<u8> {
    const PATHS: [&str; 5] = ["/", "/metrics", "/metrics.json", "/events", "/progress"];
    const QUERIES: [&str; 4] = ["", "?x=1", "?tail=5&y=z", "#frag"];
    let version = if rng.below(4) == 0 {
        "HTTP/1.0"
    } else {
        "HTTP/1.1"
    };
    format!(
        "GET {}{} {version}{}",
        PATHS[rng.below(5) as usize],
        QUERIES[rng.below(4) as usize],
        if rng.below(2) == 0 { "\r" } else { "" },
    )
    .into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Total function: every input classifies, no input panics, and the
    /// verdicts map onto exactly the documented status codes.
    #[test]
    fn parser_never_panics_and_verdicts_are_typed(line in FnGen::new(arb_line)) {
        match parse_request_line(&line) {
            Ok(path) => {
                // Parsed paths are always absolute and control-free.
                prop_assert!(path.starts_with('/'));
                prop_assert!(!path.contains(['?', '#']));
                prop_assert!(!path.chars().any(|c| c.is_ascii_control()));
            }
            Err(e) => {
                prop_assert!(matches!(e.status(), 400 | 405 | 431));
            }
        }
    }

    /// Well-formed GET lines always parse, to the query-stripped path.
    #[test]
    fn valid_get_lines_round_trip(line in FnGen::new(valid_line)) {
        let path = parse_request_line(&line).expect("valid line parses");
        let text = String::from_utf8(line).unwrap();
        let target = text.split(' ').nth(1).unwrap();
        prop_assert_eq!(path, target.split(['?', '#']).next().unwrap());
    }

    /// Anything longer than the cap is TooLarge (431), regardless of
    /// content — the server must bound memory before validating syntax.
    #[test]
    fn oversized_lines_are_431(pad in 0usize..512) {
        let mut line = b"GET /".to_vec();
        line.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + pad));
        line.extend_from_slice(b" HTTP/1.1");
        prop_assert_eq!(parse_request_line(&line), Err(ParseError::TooLarge));
    }
}
