//! Leveled stderr logging for the host-side harnesses.
//!
//! Two levels plus off, configured once per process by `ASAP_LOG`:
//!
//! - `off` — silence everything (events and metrics still work);
//! - `warn` — only warnings (quiet CI runs without losing error
//!   reporting);
//! - `note` (default) — status notes and warnings.
//!
//! Use through the [`obs::note!`](crate::obs_note) and
//! [`obs::warn!`](crate::obs_warn) macros, which format exactly like
//! `eprintln!` but consult [`enabled`] first. Both write to stderr only —
//! bench stdout stays byte-identical at every level.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Verbosity of one message (or of the process filter).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is printed.
    Off,
    /// Problems worth surfacing even in quiet runs.
    Warn,
    /// Routine status notes (cache summaries, file-written confirmations).
    Note,
}

impl Level {
    /// Parses an `ASAP_LOG` value. Unknown strings fall back to `Note`
    /// (consistent with the other knobs: a typo must not silently mute
    /// error reporting — and the env registry warns about it anyway).
    pub fn from_env_str(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Level::Off,
            "warn" | "warning" => Level::Warn,
            _ => Level::Note,
        }
    }
}

/// The process log level, read from `ASAP_LOG` once (default [`Level::Note`]).
pub fn level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL
        .get_or_init(|| std::env::var("ASAP_LOG").map_or(Level::Note, |v| Level::from_env_str(&v)))
}

/// Whether a message of `at` verbosity should print under the process
/// level.
#[inline]
pub fn enabled(at: Level) -> bool {
    at <= level()
}

/// Whether a `\r`-style status line (the `ASAP_PROGRESS` ticker) is
/// currently occupying the terminal's last stderr line.
static STATUS_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Marks a transient `\r` status line as present (`true`) or gone
/// (`false`) on stderr. While present, [`clear_status_line`] — called by
/// the `note!`/`warn!` macros before printing — erases it so a full log
/// line never lands on top of stale progress text.
pub fn status_line_active(active: bool) {
    STATUS_ACTIVE.store(active, Ordering::Release);
}

/// Erases the current status line (carriage return + erase-to-EOL) if
/// one is active. Cheap no-op otherwise; safe from any thread.
pub fn clear_status_line() {
    if STATUS_ACTIVE.swap(false, Ordering::AcqRel) {
        let mut err = std::io::stderr().lock();
        let _ = err.write_all(b"\r\x1b[K");
        let _ = err.flush();
    }
}

/// A status note, printed to stderr when `ASAP_LOG` is `note` (the
/// default). Formats like `eprintln!`.
#[macro_export]
macro_rules! obs_note {
    ($($arg:tt)*) => {
        if $crate::obs::log::enabled($crate::obs::log::Level::Note) {
            $crate::obs::log::clear_status_line();
            eprintln!($($arg)*);
        }
    };
}

/// A warning, printed to stderr unless `ASAP_LOG=off`. Formats like
/// `eprintln!`.
#[macro_export]
macro_rules! obs_warn {
    ($($arg:tt)*) => {
        if $crate::obs::log::enabled($crate::obs::log::Level::Warn) {
            $crate::obs::log::clear_status_line();
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::from_env_str("off"), Level::Off);
        assert_eq!(Level::from_env_str("0"), Level::Off);
        assert_eq!(Level::from_env_str("NONE"), Level::Off);
        assert_eq!(Level::from_env_str("warn"), Level::Warn);
        assert_eq!(Level::from_env_str(" Warning "), Level::Warn);
        assert_eq!(Level::from_env_str("note"), Level::Note);
        assert_eq!(Level::from_env_str(""), Level::Note);
        assert_eq!(Level::from_env_str("typo"), Level::Note);
    }

    #[test]
    fn level_ordering_gates_messages() {
        // note-level filter lets everything through; warn only warnings.
        assert!(Level::Warn <= Level::Note);
        assert!(Level::Note <= Level::Note);
        assert!(Level::Note > Level::Warn);
        assert!(Level::Warn > Level::Off);
    }

    #[test]
    fn status_line_flag_clears_once() {
        status_line_active(true);
        clear_status_line(); // swaps the flag off and erases
        assert!(!STATUS_ACTIVE.load(Ordering::Acquire));
        clear_status_line(); // idempotent no-op
        assert!(!STATUS_ACTIVE.load(Ordering::Acquire));
    }

    #[test]
    fn macros_compile_and_respect_default() {
        // Default level is Note unless the environment overrides it; the
        // macros must at minimum compile with format arguments.
        crate::obs_note!("test note {} {}", 1, "x");
        crate::obs_warn!("test warn {:?}", (1, 2));
        if std::env::var("ASAP_LOG").is_err() {
            assert_eq!(level(), Level::Note);
            assert!(enabled(Level::Warn));
            assert!(enabled(Level::Note));
        }
    }
}
