//! Scoped host-phase timers for the figure harness.
//!
//! A grid run spends its wall clock in four places: fingerprinting
//! specs, probing the run cache, simulating cells, and exporting
//! artifacts (wall-clock records, telemetry, reports). Each gets a
//! process-cumulative microsecond total and call count, accumulated by
//! RAII [`scope`] guards — cheap enough to wrap every cell, and additive
//! across worker threads because the totals are atomics.
//!
//! Totals are *host* time and therefore nondeterministic; they are
//! exported to places that already carry host time (the `phases` object
//! of `BENCH_WALLCLOCK.json` records, the HTML run report) and never
//! into figure stdout. Totals accumulate across grids; each wall-clock
//! record *takes* them ([`take_snapshot_json`]), so consecutive records
//! in one process report disjoint intervals instead of repeating earlier
//! records' totals (a figure that runs several grids before emitting
//! still reports their sum — the interval spans records, not grids).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One host-side phase of a figure run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Canonicalizing and hashing specs into content fingerprints.
    Fingerprint,
    /// Run-cache lookups (both tiers), including fan-out of duplicates.
    CacheProbe,
    /// Actual simulation of cells the cache could not serve.
    Simulate,
    /// Writing wall-clock records, telemetry, event streams, reports.
    Export,
}

/// All phases, in export order.
pub const PHASES: [Phase; 4] = [
    Phase::Fingerprint,
    Phase::CacheProbe,
    Phase::Simulate,
    Phase::Export,
];

impl Phase {
    /// The snake_case name used in JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Fingerprint => "fingerprint",
            Phase::CacheProbe => "cache_probe",
            Phase::Simulate => "simulate",
            Phase::Export => "export",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Fingerprint => 0,
            Phase::CacheProbe => 1,
            Phase::Simulate => 2,
            Phase::Export => 3,
        }
    }
}

static TOTAL_US: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static COUNT: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Times a region: the returned guard adds its elapsed microseconds to
/// `phase`'s total when dropped.
pub fn scope(phase: Phase) -> PhaseGuard {
    PhaseGuard {
        phase,
        start: Instant::now(),
    }
}

/// RAII guard from [`scope`].
pub struct PhaseGuard {
    phase: Phase,
    start: Instant,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_micros() as u64;
        let i = self.phase.index();
        TOTAL_US[i].fetch_add(us, Ordering::Relaxed);
        COUNT[i].fetch_add(1, Ordering::Relaxed);
    }
}

/// Cumulative `(microseconds, scopes)` for `phase`.
pub fn totals(phase: Phase) -> (u64, u64) {
    let i = phase.index();
    (
        TOTAL_US[i].load(Ordering::Relaxed),
        COUNT[i].load(Ordering::Relaxed),
    )
}

/// The `phases` JSON object embedded in wall-clock records:
/// `{"fingerprint_us":…,"cache_probe_us":…,"simulate_us":…,"export_us":…,
/// "cells_timed":…}` — parseable by [`crate::json::parse`].
pub fn snapshot_json() -> String {
    let mut out = String::from("{");
    for (i, p) in PHASES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}_us\":{}", p.name(), totals(*p).0));
    }
    out.push_str(&format!(",\"cells_timed\":{}", totals(Phase::Simulate).1));
    out.push('}');
    out
}

/// Resets every phase total and count to zero. Wall-clock emission calls
/// this (via [`take_snapshot_json`]) so each record owns its interval;
/// tests call it to start from a clean slate.
pub fn reset() {
    for i in 0..PHASES.len() {
        TOTAL_US[i].store(0, Ordering::Relaxed);
        COUNT[i].store(0, Ordering::Relaxed);
    }
}

/// [`snapshot_json`] followed by [`reset`]: the snapshot covers the
/// interval since the previous take. This is what keeps consecutive
/// wall-clock records in one process (e.g. `crash_sweep` followed by
/// `crash_sweep_legacy`) from re-reporting each other's `simulate_us`
/// and `cells_timed`.
pub fn take_snapshot_json() -> String {
    let out = snapshot_json();
    reset();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn scopes_accumulate_and_snapshot_parses() {
        let (us0, n0) = totals(Phase::Export);
        {
            let _g = scope(Phase::Export);
            // A spin long enough to register at least one microsecond.
            let t = Instant::now();
            while t.elapsed().as_micros() < 50 {}
        }
        let (us1, n1) = totals(Phase::Export);
        assert!(us1 > us0, "elapsed time recorded");
        assert_eq!(n1, n0 + 1);

        let snap = json::parse(&snapshot_json()).expect("snapshot parses");
        for p in PHASES {
            let key = format!("{}_us", p.name());
            assert!(
                snap.get(&key).and_then(json::Value::as_u64).is_some(),
                "{key} present"
            );
        }
        assert!(snap
            .get("cells_timed")
            .and_then(json::Value::as_u64)
            .is_some());

        // take_snapshot_json drains: a second take reports a fresh
        // interval, not the first one's totals. (Same #[test] as the
        // accumulation checks above — a parallel test thread resetting
        // the process-global totals would race them otherwise.)
        let taken = json::parse(&take_snapshot_json()).expect("take parses");
        assert!(taken.get("export_us").and_then(json::Value::as_u64) >= Some(1));
        let after = json::parse(&snapshot_json()).expect("post-take parses");
        assert_eq!(
            after.get("cells_timed").and_then(json::Value::as_u64),
            Some(0)
        );
        assert_eq!(totals(Phase::Export), (0, 0));
    }
}
