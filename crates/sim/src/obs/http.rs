//! Live observability endpoint: a std-only HTTP/1.1 server over
//! [`std::net::TcpListener`] (hand-rolled, matching the repo's no-deps
//! style) exposing the host observability bus while a grid runs.
//!
//! Built-in endpoints:
//!
//! | path            | content                                            |
//! |-----------------|----------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition of the metrics registry |
//! | `/metrics.json` | raw [`metrics::snapshot_json`] registry snapshot   |
//! | `/events`       | chunked live tail of the `asap-events-v1` stream   |
//!
//! Embedders register extra routes (`/progress`, `/report` in the bench
//! harness) as closures. The server observes, never participates: every
//! handler reads process-global state, a wedged client can only lose
//! *its own* records (see the broadcast-hub backpressure rule in
//! [`events`]), and the simulated results plus figure stdout are
//! byte-identical with the server on or off.
//!
//! Request handling is deliberately narrow — `GET` only, no keep-alive,
//! no body reads — and defensive: malformed request lines and truncated
//! reads answer `400`, oversized request lines or header blocks answer
//! `431`, unknown paths `404`, other methods `405`. The parser is
//! proptested (`crates/sim/tests/http_parser.rs`) to never panic on
//! arbitrary bytes.
//!
//! # Prometheus name mapping
//!
//! Registry names (`runcache.mem_hits`, `pool.worker0.cells`) are
//! sanitized for the exposition format: every character outside
//! `[a-zA-Z0-9_:]` becomes `_`, a leading digit gets a `_` prefix, and
//! the whole name is prefixed `asap_`. Counters additionally get the
//! conventional `_total` suffix; histograms render as summaries
//! (`quantile="0.5"`/`"0.99"` labels plus `_sum`/`_count`). Registry
//! names are dot-separated lowercase by construction, so the mapping is
//! injective in practice; values are exactly the registry values, so
//! `/metrics` and `/metrics.json` agree at any instant.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::obs::{events, metrics};

/// Hard cap on the request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;

/// Hard cap on the whole header block (request line included).
pub const MAX_HEADER_BYTES: usize = 32 * 1024;

/// How long a connection may sit idle before its read is abandoned.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// How long one response write may block before the client is treated
/// as wedged (and, on `/events`, dropped with accounting).
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// How often streaming handlers re-check the shutdown flag.
const STREAM_POLL: Duration = Duration::from_millis(200);

/// A route handler: pure snapshot of current state, no request inputs
/// (every endpoint is a `GET` of "what does the process look like now").
pub type Handler = Box<dyn Fn() -> Response + Send + Sync>;

/// A complete non-streaming HTTP response.
pub struct Response {
    /// HTTP status code (200, 404, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` with `Content-Type: text/plain`.
    pub fn text(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A `200 OK` with `Content-Type: application/json`.
    pub fn json(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A `200 OK` with `Content-Type: text/html`.
    pub fn html(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: body.into(),
        }
    }

    /// An error response with the standard reason phrase as its body.
    pub fn error(status: u16) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: format!("{status} {}\n", reason(status)).into_bytes(),
        }
    }
}

/// Standard reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    }
}

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

/// Why a request was rejected; [`ParseError::status`] maps each cause
/// to the response code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Not a syntactically valid HTTP/1.x request line.
    Malformed,
    /// Request line or header block over the hard caps.
    TooLarge,
    /// Syntactically fine, but a method other than `GET`.
    BadMethod,
}

impl ParseError {
    /// The HTTP status answering this rejection.
    pub fn status(self) -> u16 {
        match self {
            ParseError::Malformed => 400,
            ParseError::TooLarge => 431,
            ParseError::BadMethod => 405,
        }
    }
}

/// Parses an HTTP/1.x request line (`GET /path?query HTTP/1.1`) into
/// the request target with any query string stripped. Rejections are
/// typed, never panics — the proptests drive this with arbitrary bytes.
pub fn parse_request_line(line: &[u8]) -> Result<String, ParseError> {
    if line.len() > MAX_REQUEST_LINE {
        return Err(ParseError::TooLarge);
    }
    let line = std::str::from_utf8(line).map_err(|_| ParseError::Malformed)?;
    let line = line.strip_suffix('\r').unwrap_or(line);
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Malformed);
    };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(ParseError::Malformed);
    }
    if !target.starts_with('/') || target.chars().any(|c| c.is_ascii_control()) {
        return Err(ParseError::Malformed);
    }
    if method != "GET" {
        // Methods are tokens; anything with non-token bytes is garbage,
        // not a "method we don't allow".
        if method.is_empty() || !method.bytes().all(|b| b.is_ascii_alphabetic()) {
            return Err(ParseError::Malformed);
        }
        return Err(ParseError::BadMethod);
    }
    let path = target.split(['?', '#']).next().unwrap_or(target);
    Ok(path.to_string())
}

/// Reads from `stream` until the end of the header block and parses the
/// request line. Truncated or non-HTTP input is `Malformed`; an input
/// that keeps going past [`MAX_HEADER_BYTES`] (or whose request line
/// alone passes [`MAX_REQUEST_LINE`]) is `TooLarge`.
fn read_request(stream: &mut TcpStream) -> Result<String, ParseError> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    loop {
        // Oversize checks first so a huge request line fails as such
        // even before its terminating newline ever arrives.
        let line_end = buf.iter().position(|&b| b == b'\n');
        if line_end.is_none() && buf.len() > MAX_REQUEST_LINE {
            return Err(ParseError::TooLarge);
        }
        if let Some(end) = line_end {
            if end > MAX_REQUEST_LINE {
                return Err(ParseError::TooLarge);
            }
            // Full header block seen (or the connection half-closed)?
            if find_header_end(&buf).is_some() {
                return parse_request_line(&buf[..end]);
            }
            if buf.len() > MAX_HEADER_BYTES {
                return Err(ParseError::TooLarge);
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF before the blank line: a partial request. If the
                // request line itself arrived complete, honor it (HTTP/1.0
                // clients and the ci smoke client close eagerly).
                return match line_end {
                    Some(end) => parse_request_line(&buf[..end]),
                    None => Err(ParseError::Malformed),
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(ParseError::Malformed),
        }
    }
}

/// Position just past the `\r\n\r\n` (or bare `\n\n`) header terminator.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

/// Sanitizes a registry metric name into a Prometheus metric name (see
/// the module docs for the full mapping rule).
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("asap_");
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the current metrics registry as Prometheus text exposition
/// (version 0.0.4): counters as `counter` with `_total`, gauges as
/// `gauge`, histograms as `summary`.
pub fn prometheus_text() -> String {
    let snap = metrics::snapshot();
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = format!("{}_total", prom_name(name));
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        let s = h.summary();
        out.push_str(&format!(
            "# TYPE {n} summary\n\
             {n}{{quantile=\"0.5\"}} {}\n\
             {n}{{quantile=\"0.99\"}} {}\n\
             {n}_sum {}\n\
             {n}_count {}\n",
            h.quantile(0.50),
            h.quantile(0.99),
            s.sum,
            s.count,
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A running observability server. Dropping (or explicitly
/// [`shutdown`](Server::shutdown)-ing) it stops the accept loop, ends
/// every `/events` stream, and joins the worker threads.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), starts
    /// the accept loop, and activates the events broadcast hub. `extra`
    /// routes are consulted after the built-in ones.
    pub fn start(addr: &str, extra: Vec<(String, Handler)>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();
        events::hub_activate();
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let routes = Arc::new(extra);
            std::thread::Builder::new()
                .name("asap-obs-http".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let stop = Arc::clone(&stop);
                        let routes = Arc::clone(&routes);
                        let handle = std::thread::Builder::new()
                            .name("asap-obs-conn".into())
                            .spawn(move || serve_connection(stream, &routes, &stop));
                        let mut conns = conns.lock().unwrap();
                        // Reap finished threads so a long-lived server
                        // doesn't accumulate handles.
                        conns.retain(|h| !h.is_finished());
                        if let Ok(h) = handle {
                            conns.push(h);
                        }
                    }
                })
                .expect("spawn accept loop")
        };
        Ok(Server {
            addr,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The actually bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, end the event streams, join
    /// every connection thread. Idempotent via [`Drop`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Closing the hub ends /events streams (their subscribers see
        // Ended) so connection threads wind down on their own.
        events::hub_deactivate();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Serves one connection: read, parse, dispatch, close.
fn serve_connection(mut stream: TcpStream, routes: &[(String, Handler)], stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    metrics::counter("obs.http.requests").inc();
    let path = match read_request(&mut stream) {
        Ok(path) => path,
        Err(e) => {
            write_response(&mut stream, &Response::error(e.status()));
            return;
        }
    };
    match path.as_str() {
        "/metrics" => write_response(&mut stream, &Response::text(prometheus_text())),
        "/metrics.json" => write_response(&mut stream, &Response::json(metrics::snapshot_json())),
        "/events" => stream_events(&mut stream, stop),
        _ => {
            let resp = routes
                .iter()
                .find(|(p, _)| p == &path)
                .map_or_else(|| Response::error(404), |(_, h)| h());
            write_response(&mut stream, &resp);
        }
    }
}

/// Writes a complete response; errors are ignored (the client is gone).
fn write_response(stream: &mut TcpStream, resp: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n\
         Cache-Control: no-store\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(&resp.body));
}

/// The `/events` endpoint: an HTTP/1.1 chunked stream of NDJSON
/// records. Subscribes to the broadcast hub (replaying its backlog
/// first), forwards records as they arrive, and ends cleanly when the
/// hub closes, the server stops, or this client proves too slow —
/// in which case it is dropped with accounting, never waited on.
fn stream_events(stream: &mut TcpStream, stop: &AtomicBool) {
    let Some(sub) = events::subscribe() else {
        write_response(stream, &Response::error(404));
        return;
    };
    metrics::counter("obs.http.events_clients").inc();
    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
                Transfer-Encoding: chunked\r\nCache-Control: no-store\r\n\
                Connection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        sub.drop_with_accounting();
        return;
    }
    loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        match sub.wait(STREAM_POLL) {
            events::HubWait::Batch(batch) => {
                let mut chunk = String::new();
                for line in &batch {
                    chunk.push_str(&format!("{:x}\r\n{line}\r\n", line.len()));
                }
                // A timed-out write means the client stopped reading and
                // its socket buffer is full: same laggard, same rule.
                if stream.write_all(chunk.as_bytes()).is_err() {
                    sub.drop_with_accounting();
                    return;
                }
            }
            events::HubWait::Idle => {}
            events::HubWait::Ended { .. } => break,
        }
    }
    // Terminating chunk; the client may already be gone.
    let _ = stream.write_all(b"0\r\n\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            parse_request_line(b"GET /metrics HTTP/1.1\r"),
            Ok("/metrics".into())
        );
        assert_eq!(
            parse_request_line(b"GET /metrics HTTP/1.0"),
            Ok("/metrics".into())
        );
        assert_eq!(
            parse_request_line(b"GET /events?tail=1 HTTP/1.1"),
            Ok("/events".into())
        );
        assert_eq!(
            parse_request_line(b"POST /metrics HTTP/1.1"),
            Err(ParseError::BadMethod)
        );
        for bad in [
            &b"GET /metrics"[..],
            b"",
            b"GET",
            b"GET  /metrics HTTP/1.1",
            b"GET /metrics HTTP/2.0",
            b"GET metrics HTTP/1.1",
            b"G\xffT / HTTP/1.1",
            b"\x00\x01\x02",
        ] {
            assert_eq!(
                parse_request_line(bad),
                Err(ParseError::Malformed),
                "{bad:?}"
            );
        }
        let long = format!("GET /{} HTTP/1.1", "a".repeat(MAX_REQUEST_LINE));
        assert_eq!(
            parse_request_line(long.as_bytes()),
            Err(ParseError::TooLarge)
        );
    }

    #[test]
    fn prometheus_name_mapping_and_values() {
        assert_eq!(prom_name("runcache.mem_hits"), "asap_runcache_mem_hits");
        assert_eq!(prom_name("pool.worker0.cells"), "asap_pool_worker0_cells");
        assert_eq!(prom_name("7weird name!"), "asap__7weird_name_");
        metrics::counter("test.http.prom_counter").add(41);
        metrics::gauge("test.http.prom_gauge").set(17);
        metrics::histogram("test.http.prom_hist").observe(5);
        let text = prometheus_text();
        assert!(text.contains("# TYPE asap_test_http_prom_counter_total counter"));
        assert!(text.contains("asap_test_http_prom_counter_total 41"));
        assert!(text.contains("# TYPE asap_test_http_prom_gauge gauge"));
        assert!(text.contains("asap_test_http_prom_gauge 17"));
        assert!(text.contains("# TYPE asap_test_http_prom_hist summary"));
        assert!(text.contains("asap_test_http_prom_hist_count 1"));
        assert!(text.contains("asap_test_http_prom_hist_sum 5"));
    }

    #[test]
    fn error_mapping_and_header_end() {
        assert_eq!(ParseError::Malformed.status(), 400);
        assert_eq!(ParseError::TooLarge.status(), 431);
        assert_eq!(ParseError::BadMethod.status(), 405);
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\n"), Some(18));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\n\n"), Some(16));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
