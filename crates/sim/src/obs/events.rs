//! Append-only NDJSON run-event stream (`ASAP_EVENTS=<path|stderr>`).
//!
//! Schema `asap-events-v1`: one JSON object per line, each carrying the
//! record kind (`ev`), a process-wide ordering key (`seq`), and wall
//! time in microseconds since process start (`t_us`). The bench harness
//! emits `grid_start`, `cell_start`, `cell_end`, `cache_evict`,
//! `wallclock_written` and `grid_end` records; every record is
//! guaranteed to parse with [`crate::json::parse`] (tests hold this line
//! by line).
//!
//! Durability posture, in the spirit of user-space WAL reliability work:
//! the stream is *append-only* and each record is written with a single
//! `write` of one `\n`-terminated line to a file opened `O_APPEND`, so
//! concurrent emitters (the worker-pool threads, or several processes
//! pointed at one file) interleave whole lines, never bytes. A consumer
//! that tails the file sees only complete records plus at most one
//! growing tail line.
//!
//! Determinism: records are ordered by completion, not by spec order, so
//! two runs at different `ASAP_JOBS` produce the same multiset of
//! records up to the volatile keys `seq`, `t_us` and `host_us` — the
//! comparison tests strip exactly those and sort. Nothing here ever
//! writes to stdout.

use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json;

/// The stream schema identifier, carried by every `grid_start` record.
pub const SCHEMA: &str = "asap-events-v1";

enum Target {
    Stderr,
    File(std::fs::File),
}

/// `None` until first use or an explicit [`set_sink`]; the inner
/// `Option` is the resolved sink (`None` = events off).
struct SinkState {
    resolved: bool,
    target: Option<Target>,
}

fn state() -> &'static Mutex<SinkState> {
    static S: OnceLock<Mutex<SinkState>> = OnceLock::new();
    S.get_or_init(|| {
        Mutex::new(SinkState {
            resolved: false,
            target: None,
        })
    })
}

fn epoch() -> Instant {
    static T0: OnceLock<Instant> = OnceLock::new();
    *T0.get_or_init(Instant::now)
}

fn resolve_env(s: &mut SinkState) {
    if s.resolved {
        return;
    }
    s.resolved = true;
    s.target = match std::env::var("ASAP_EVENTS") {
        Ok(v) if v.is_empty() => None,
        Ok(v) if v == "stderr" => Some(Target::Stderr),
        Ok(v) => open_target(Path::new(&v)),
        Err(_) => None,
    };
}

fn open_target(path: &Path) -> Option<Target> {
    match std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(path)
    {
        Ok(f) => Some(Target::File(f)),
        Err(e) => {
            // Logged regardless of ASAP_LOG level juggling — a requested
            // event stream that cannot open is an error worth one line.
            eprintln!("events: could not open {}: {e}", path.display());
            None
        }
    }
}

/// Points the stream at `path` (`None` turns it off), overriding the
/// environment. Primarily for tests and embedders (the daemon); figure
/// binaries just set `ASAP_EVENTS`.
pub fn set_sink(path: Option<&Path>) {
    let mut s = state().lock().unwrap();
    s.resolved = true;
    s.target = path.and_then(|p| {
        if p == Path::new("stderr") {
            Some(Target::Stderr)
        } else {
            open_target(p)
        }
    });
}

/// Whether a sink is configured — cheap enough to gate per-cell record
/// construction, and `false` means [`Event::emit`] is a no-op.
pub fn enabled() -> bool {
    let mut s = state().lock().unwrap();
    resolve_env(&mut s);
    s.target.is_some()
}

/// One NDJSON record under construction. Build with [`Event::new`], add
/// fields, then [`emit`](Event::emit) — the record is written as a
/// single line, or dropped silently when the stream is off.
pub struct Event {
    buf: String,
}

impl Event {
    /// Starts a record of kind `ev`, stamped with the next `seq` and the
    /// current `t_us`.
    pub fn new(ev: &str) -> Event {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let t_us = epoch().elapsed().as_micros() as u64;
        Event {
            buf: format!(
                "{{\"ev\":\"{}\",\"seq\":{seq},\"t_us\":{t_us}",
                json::escape(ev)
            ),
        }
    }

    /// Adds a string field.
    pub fn field_str(mut self, key: &str, v: &str) -> Self {
        self.buf.push_str(&format!(
            ",\"{}\":\"{}\"",
            json::escape(key),
            json::escape(v)
        ));
        self
    }

    /// Adds an integer field.
    pub fn field_u64(mut self, key: &str, v: u64) -> Self {
        self.buf
            .push_str(&format!(",\"{}\":{v}", json::escape(key)));
        self
    }

    /// Adds a float field (non-finite values emit as `null`).
    pub fn field_f64(mut self, key: &str, v: f64) -> Self {
        self.buf
            .push_str(&format!(",\"{}\":{}", json::escape(key), json::num(v)));
        self
    }

    /// Closes the record and appends it to the sink as one line. A write
    /// failure warns once per process and drops the line — the event
    /// stream is an observer, never a reason to fail a run.
    pub fn emit(mut self) {
        self.buf.push_str("}\n");
        let mut s = state().lock().unwrap();
        resolve_env(&mut s);
        let Some(target) = s.target.as_mut() else {
            return;
        };
        let res = match target {
            Target::Stderr => std::io::stderr().lock().write_all(self.buf.as_bytes()),
            Target::File(f) => f.write_all(self.buf.as_bytes()),
        };
        if let Err(e) = res {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| eprintln!("events: write failed, stream dropped: {e}"));
            s.target = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test exercising the whole lifecycle: the sink is process-global
    /// state, so splitting these into parallel #[test] fns would race.
    #[test]
    fn records_are_parseable_ndjson_lines() {
        let path =
            std::env::temp_dir().join(format!("asap-obs-events-{}.ndjson", std::process::id()));
        let _ = std::fs::remove_file(&path);
        set_sink(Some(&path));
        assert!(enabled());
        Event::new("grid_start")
            .field_str("schema", SCHEMA)
            .field_u64("cells", 3)
            .emit();
        Event::new("cell_end")
            .field_str("fp", "deadbeef")
            .field_str("outcome", "completed")
            .field_u64("host_us", 12)
            .field_f64("ratio", 0.5)
            .field_f64("bad", f64::NAN)
            .emit();
        set_sink(None);
        // Emitting while off is a silent no-op.
        Event::new("cell_end").field_u64("x", 1).emit();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            json::parse(line).expect("every record parses");
        }
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(
            first.get("ev").and_then(json::Value::as_str),
            Some("grid_start")
        );
        assert_eq!(
            first.get("schema").and_then(json::Value::as_str),
            Some(SCHEMA)
        );
        assert!(first.get("seq").and_then(json::Value::as_u64).is_some());
        assert!(first.get("t_us").and_then(json::Value::as_u64).is_some());
        let second = json::parse(lines[1]).unwrap();
        assert_eq!(second.get("bad"), Some(&json::Value::Null));
        // seq is strictly increasing across records.
        assert!(
            second.get("seq").and_then(json::Value::as_u64)
                > first.get("seq").and_then(json::Value::as_u64)
        );

        // Re-pointing appends rather than truncating (append-only log).
        set_sink(Some(&path));
        Event::new("grid_end").emit();
        set_sink(None);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
