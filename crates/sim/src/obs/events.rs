//! Append-only NDJSON run-event stream (`ASAP_EVENTS=<path|stderr>`)
//! with a live broadcast hub for in-process subscribers (`/events`).
//!
//! Schema `asap-events-v1`: one JSON object per line, each carrying the
//! record kind (`ev`), a process-wide ordering key (`seq`), and wall
//! time in microseconds since process start (`t_us`). The first line of
//! every stream is a `run_meta` header record describing the producer:
//! the schema version, the build fingerprint of the running executable,
//! the host worker count, and every `ASAP_*` knob set in the
//! environment. The bench harness then emits `grid_start`,
//! `cell_start`, `cell_end`, `cache_evict`, `wallclock_written` and
//! `grid_end` records; every record is guaranteed to parse with
//! [`crate::json::parse`] (tests hold this line by line).
//!
//! Durability posture, in the spirit of user-space WAL reliability work:
//! the stream is *append-only* and each record is written with a single
//! `write` of one `\n`-terminated line to a file opened `O_APPEND`, so
//! concurrent emitters (the worker-pool threads, or several processes
//! pointed at one file) interleave whole lines, never bytes. A consumer
//! that tails the file sees only complete records plus at most one
//! growing tail line. Within one process, `seq` is allocated under the
//! sink lock, so file order and `seq` order agree.
//!
//! # Broadcast hub
//!
//! Besides the file sink, every record fans out to a process-global
//! *hub* while it is active (the [`http`](super::http) server activates
//! it for the `/events` endpoint). The hub keeps a bounded backlog of
//! recent records — a late subscriber first replays those, so a client
//! that connects right after `run_grid` starts sees the same records as
//! the file sink — and a bounded queue per subscriber. Publishing never
//! blocks: a subscriber whose queue is full (a wedged or disconnected
//! client) is marked dropped, its queue is cleared, and the
//! `obs.http.dropped` counter is incremented. Workers are therefore
//! never throttled by a slow observer.
//!
//! Determinism: records are ordered by completion, not by spec order, so
//! two runs at different `ASAP_JOBS` produce the same multiset of
//! records up to the volatile keys `seq`, `t_us` and `host_us` — the
//! comparison tests strip exactly those and sort. Nothing here ever
//! writes to stdout.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json;
use crate::obs::metrics;

/// The stream schema identifier, carried by every `run_meta` and
/// `grid_start` record.
pub const SCHEMA: &str = "asap-events-v1";

/// Records the hub keeps for late subscribers. Sized to hold the full
/// event stream of any single figure grid (two records per cell plus
/// bookkeeping; the largest grid is ~90 cells) with two orders of
/// magnitude of headroom.
pub const HUB_BACKLOG_CAP: usize = 4096;

/// Default per-subscriber queue bound: a subscriber further than this
/// many records behind the stream is dropped rather than throttling
/// emitters.
pub const SUBSCRIBER_QUEUE_CAP: usize = 4096;

enum Target {
    Stderr,
    File(std::fs::File),
}

/// `None` until first use or an explicit [`set_sink`]; the inner
/// `Option` is the resolved sink (`None` = events off).
struct SinkState {
    resolved: bool,
    target: Option<Target>,
    /// Whether the `run_meta` header has been written to the current
    /// stream (file sink and hub alike). Reset by [`set_sink`], so a
    /// re-pointed stream gets its own header.
    header_done: bool,
}

fn state() -> &'static Mutex<SinkState> {
    static S: OnceLock<Mutex<SinkState>> = OnceLock::new();
    S.get_or_init(|| {
        Mutex::new(SinkState {
            resolved: false,
            target: None,
            header_done: false,
        })
    })
}

fn epoch() -> Instant {
    static T0: OnceLock<Instant> = OnceLock::new();
    *T0.get_or_init(Instant::now)
}

fn resolve_env(s: &mut SinkState) {
    if s.resolved {
        return;
    }
    s.resolved = true;
    s.target = match std::env::var("ASAP_EVENTS") {
        Ok(v) if v.is_empty() => None,
        Ok(v) if v == "stderr" => Some(Target::Stderr),
        Ok(v) => open_target(Path::new(&v)),
        Err(_) => None,
    };
}

fn open_target(path: &Path) -> Option<Target> {
    match std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(path)
    {
        Ok(f) => Some(Target::File(f)),
        Err(e) => {
            // Logged regardless of ASAP_LOG level juggling — a requested
            // event stream that cannot open is an error worth one line.
            eprintln!("events: could not open {}: {e}", path.display());
            None
        }
    }
}

/// Points the stream at `path` (`None` turns it off), overriding the
/// environment. Primarily for tests and embedders (the daemon); figure
/// binaries just set `ASAP_EVENTS`. The next record emitted to a fresh
/// sink is preceded by a new `run_meta` header.
pub fn set_sink(path: Option<&Path>) {
    let mut s = state().lock().unwrap();
    s.resolved = true;
    s.header_done = false;
    s.target = path.and_then(|p| {
        if p == Path::new("stderr") {
            Some(Target::Stderr)
        } else {
            open_target(p)
        }
    });
}

/// Whether any consumer is configured — the file sink, the hub, or
/// both. Cheap enough to gate per-cell record construction; `false`
/// means [`Event::emit`] is a no-op.
pub fn enabled() -> bool {
    if hub_active() {
        return true;
    }
    let mut s = state().lock().unwrap();
    resolve_env(&mut s);
    s.target.is_some()
}

/// The `run_meta` header line: schema version, build fingerprint,
/// host worker count, and every `ASAP_*` knob present in the
/// environment. `jobs` mirrors the harness default (explicit
/// `ASAP_JOBS`, else available parallelism).
fn run_meta_line(seq: u64, t_us: u64) -> String {
    let build =
        crate::fingerprint::build_fingerprint().map_or_else(|| "unknown".into(), |f| f.hex());
    let jobs = match std::env::var("ASAP_JOBS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let mut knobs = String::new();
    for (i, name) in crate::config::KNOWN_ASAP_ENV
        .iter()
        .filter(|n| std::env::var(n).is_ok())
        .enumerate()
    {
        let v = std::env::var(name).unwrap_or_default();
        if i > 0 {
            knobs.push(',');
        }
        knobs.push_str(&format!(
            "\"{}\":\"{}\"",
            json::escape(name),
            json::escape(&v)
        ));
    }
    format!(
        "{{\"ev\":\"run_meta\",\"seq\":{seq},\"t_us\":{t_us},\"schema\":\"{SCHEMA}\",\
         \"build\":\"{build}\",\"jobs\":{jobs},\"knobs\":{{{knobs}}}}}\n"
    )
}

fn next_seq() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// One NDJSON record under construction. Build with [`Event::new`], add
/// fields, then [`emit`](Event::emit) — the record is written as a
/// single line, or dropped silently when the stream is off. `seq` and
/// `t_us` are stamped at emit time, under the sink lock, so they agree
/// with the order records land in the stream.
pub struct Event {
    ev: String,
    tail: String,
}

impl Event {
    /// Starts a record of kind `ev`.
    pub fn new(ev: &str) -> Event {
        Event {
            ev: json::escape(ev),
            tail: String::new(),
        }
    }

    /// Adds a string field.
    pub fn field_str(mut self, key: &str, v: &str) -> Self {
        self.tail.push_str(&format!(
            ",\"{}\":\"{}\"",
            json::escape(key),
            json::escape(v)
        ));
        self
    }

    /// Adds an integer field.
    pub fn field_u64(mut self, key: &str, v: u64) -> Self {
        self.tail
            .push_str(&format!(",\"{}\":{v}", json::escape(key)));
        self
    }

    /// Adds a float field (non-finite values emit as `null`).
    pub fn field_f64(mut self, key: &str, v: f64) -> Self {
        self.tail
            .push_str(&format!(",\"{}\":{}", json::escape(key), json::num(v)));
        self
    }

    /// Closes the record, appends it to the file sink as one line, and
    /// fans it out to every hub subscriber. A write failure warns once
    /// per process and drops the file sink — the event stream is an
    /// observer, never a reason to fail a run.
    pub fn emit(self) {
        let mut s = state().lock().unwrap();
        resolve_env(&mut s);
        let to_hub = hub_active();
        if s.target.is_none() && !to_hub {
            return;
        }
        if !s.header_done {
            s.header_done = true;
            let header = run_meta_line(next_seq(), epoch().elapsed().as_micros() as u64);
            write_line(&mut s, &header);
            if to_hub {
                hub_publish(&header);
            }
        }
        let line = format!(
            "{{\"ev\":\"{}\",\"seq\":{},\"t_us\":{}{}}}\n",
            self.ev,
            next_seq(),
            epoch().elapsed().as_micros() as u64,
            self.tail
        );
        write_line(&mut s, &line);
        if to_hub {
            hub_publish(&line);
        }
    }
}

/// Writes one line to the resolved file sink (no-op when off).
fn write_line(s: &mut SinkState, line: &str) {
    let Some(target) = s.target.as_mut() else {
        return;
    };
    let res = match target {
        Target::Stderr => std::io::stderr().lock().write_all(line.as_bytes()),
        Target::File(f) => f.write_all(line.as_bytes()),
    };
    if let Err(e) = res {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| eprintln!("events: write failed, stream dropped: {e}"));
        s.target = None;
    }
}

// ---------------------------------------------------------------------------
// Broadcast hub
// ---------------------------------------------------------------------------

/// Counter incremented once per subscriber dropped for falling behind
/// (queue overflow) or for failing its socket writes.
pub const DROPPED_COUNTER: &str = "obs.http.dropped";

struct HubInner {
    /// Nested server starts keep the hub active until the last stops.
    active: usize,
    backlog: VecDeque<Arc<str>>,
    subscribers: Vec<Arc<Subscriber>>,
}

struct Subscriber {
    state: Mutex<SubState>,
    cond: Condvar,
    cap: usize,
}

struct SubState {
    queue: VecDeque<Arc<str>>,
    /// Fell behind (queue overflow) — record loss has been accounted.
    dropped: bool,
    /// Hub deactivated (server shutdown) — stream is complete.
    closed: bool,
}

fn hub() -> &'static Mutex<HubInner> {
    static HUB: OnceLock<Mutex<HubInner>> = OnceLock::new();
    HUB.get_or_init(|| {
        Mutex::new(HubInner {
            active: 0,
            backlog: VecDeque::new(),
            subscribers: Vec::new(),
        })
    })
}

/// Activates the hub (idempotent, counted): records start fanning out
/// to subscribers and accumulating in the backlog. The first activation
/// starts a fresh backlog.
pub fn hub_activate() {
    let mut h = hub().lock().unwrap();
    if h.active == 0 {
        h.backlog.clear();
    }
    h.active += 1;
}

/// Reverses one [`hub_activate`]. When the last activation is released,
/// every live subscriber is closed (its pending queue stays readable)
/// and the backlog is dropped.
pub fn hub_deactivate() {
    let mut h = hub().lock().unwrap();
    h.active = h.active.saturating_sub(1);
    if h.active == 0 {
        for sub in h.subscribers.drain(..) {
            let mut st = sub.state.lock().unwrap();
            st.closed = true;
            sub.cond.notify_all();
        }
        h.backlog.clear();
    }
}

/// Whether any server currently keeps the hub active.
pub fn hub_active() -> bool {
    hub().lock().unwrap().active > 0
}

/// Subscribes to the live stream with the default queue bound. `None`
/// when the hub is inactive.
pub fn subscribe() -> Option<Subscription> {
    subscribe_with_cap(SUBSCRIBER_QUEUE_CAP)
}

/// [`subscribe`] with an explicit per-subscriber queue bound (tests use
/// tiny caps to exercise the drop path deterministically). The new
/// subscriber's queue is seeded with the backlog, so it replays the
/// stream from (at most [`HUB_BACKLOG_CAP`] records back) the start.
pub fn subscribe_with_cap(cap: usize) -> Option<Subscription> {
    let mut h = hub().lock().unwrap();
    if h.active == 0 {
        return None;
    }
    let cap = cap.max(1);
    let mut queue: VecDeque<Arc<str>> = VecDeque::with_capacity(cap.min(64));
    // Seed with the newest records that fit; skipping the oldest is the
    // same drop-oldest policy the backlog itself applies.
    let skip = h.backlog.len().saturating_sub(cap);
    queue.extend(h.backlog.iter().skip(skip).cloned());
    let sub = Arc::new(Subscriber {
        state: Mutex::new(SubState {
            queue,
            dropped: false,
            closed: false,
        }),
        cond: Condvar::new(),
        cap,
    });
    h.subscribers.push(Arc::clone(&sub));
    Some(Subscription { sub })
}

/// Fans one record out to the backlog and every subscriber; never
/// blocks. A subscriber without room is dropped with accounting.
fn hub_publish(line: &str) {
    let mut h = hub().lock().unwrap();
    if h.active == 0 {
        return;
    }
    let line: Arc<str> = Arc::from(line);
    if h.backlog.len() >= HUB_BACKLOG_CAP {
        h.backlog.pop_front();
    }
    h.backlog.push_back(Arc::clone(&line));
    h.subscribers.retain(|sub| {
        let mut st = sub.state.lock().unwrap();
        if st.closed || st.dropped {
            return false;
        }
        if st.queue.len() >= sub.cap {
            // Backpressure rule: drop the laggard, never the worker.
            st.dropped = true;
            st.queue.clear();
            metrics::counter(DROPPED_COUNTER).inc();
            sub.cond.notify_all();
            return false;
        }
        st.queue.push_back(Arc::clone(&line));
        sub.cond.notify_all();
        true
    });
}

/// What a [`Subscription::wait`] returned.
pub enum HubWait {
    /// Records drained from the queue, in stream order.
    Batch(Vec<Arc<str>>),
    /// Nothing arrived within the timeout; poll again.
    Idle,
    /// The stream is over for this subscriber.
    Ended {
        /// True when the subscriber was dropped for falling behind (vs.
        /// a clean hub shutdown).
        dropped: bool,
    },
}

/// A live-stream subscription handle (see [`subscribe`]).
pub struct Subscription {
    sub: Arc<Subscriber>,
}

impl Subscription {
    /// Waits up to `timeout` for records. Pending records are always
    /// delivered before the end-of-stream signal.
    pub fn wait(&self, timeout: Duration) -> HubWait {
        let mut st = self.sub.state.lock().unwrap();
        if st.queue.is_empty() && !st.closed && !st.dropped {
            let (guard, _) = self
                .sub
                .cond
                .wait_timeout(st, timeout)
                .expect("subscriber lock poisoned");
            st = guard;
        }
        if !st.queue.is_empty() {
            return HubWait::Batch(st.queue.drain(..).collect());
        }
        if st.dropped {
            return HubWait::Ended { dropped: true };
        }
        if st.closed {
            return HubWait::Ended { dropped: false };
        }
        HubWait::Idle
    }

    /// Marks this subscriber as dropped-with-accounting — the `/events`
    /// handler calls it when the client's socket writes fail or time
    /// out, so a wedged client is indistinguishable from a laggard.
    pub fn drop_with_accounting(&self) {
        let mut st = self.sub.state.lock().unwrap();
        if !st.dropped && !st.closed {
            st.dropped = true;
            st.queue.clear();
            metrics::counter(DROPPED_COUNTER).inc();
        }
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        // Detach quietly; hub_publish's retain sweep will unlink it.
        let mut st = self.sub.state.lock().unwrap();
        st.closed = true;
        st.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test exercising the whole lifecycle: the sink is process-global
    /// state, so splitting these into parallel #[test] fns would race.
    #[test]
    fn records_are_parseable_ndjson_lines_with_run_meta_header() {
        let path =
            std::env::temp_dir().join(format!("asap-obs-events-{}.ndjson", std::process::id()));
        let _ = std::fs::remove_file(&path);
        set_sink(Some(&path));
        assert!(enabled());
        Event::new("grid_start")
            .field_str("schema", SCHEMA)
            .field_u64("cells", 3)
            .emit();
        Event::new("cell_end")
            .field_str("fp", "deadbeef")
            .field_str("outcome", "completed")
            .field_u64("host_us", 12)
            .field_f64("ratio", 0.5)
            .field_f64("bad", f64::NAN)
            .emit();
        set_sink(None);
        // Emitting while off is a silent no-op.
        Event::new("cell_end").field_u64("x", 1).emit();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "run_meta header + 2 records");
        for line in &lines {
            json::parse(line).expect("every record parses");
        }
        // The stream starts with the run_meta header.
        let meta = json::parse(lines[0]).unwrap();
        assert_eq!(
            meta.get("ev").and_then(json::Value::as_str),
            Some("run_meta")
        );
        assert_eq!(
            meta.get("schema").and_then(json::Value::as_str),
            Some(SCHEMA)
        );
        assert!(meta.get("build").and_then(json::Value::as_str).is_some());
        assert!(meta.get("jobs").and_then(json::Value::as_u64).is_some());
        assert!(meta.get("knobs").is_some());
        let first = json::parse(lines[1]).unwrap();
        assert_eq!(
            first.get("ev").and_then(json::Value::as_str),
            Some("grid_start")
        );
        assert!(first.get("seq").and_then(json::Value::as_u64).is_some());
        assert!(first.get("t_us").and_then(json::Value::as_u64).is_some());
        let second = json::parse(lines[2]).unwrap();
        assert_eq!(second.get("bad"), Some(&json::Value::Null));
        // seq agrees with stream order.
        assert!(
            second.get("seq").and_then(json::Value::as_u64)
                > first.get("seq").and_then(json::Value::as_u64)
        );
        assert!(
            first.get("seq").and_then(json::Value::as_u64)
                > meta.get("seq").and_then(json::Value::as_u64)
        );

        // Re-pointing appends rather than truncating (append-only log),
        // and the fresh stream gets its own header.
        set_sink(Some(&path));
        Event::new("grid_end").emit();
        set_sink(None);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 5);
        let reheader = json::parse(text.lines().nth(3).unwrap()).unwrap();
        assert_eq!(
            reheader.get("ev").and_then(json::Value::as_str),
            Some("run_meta")
        );
        let _ = std::fs::remove_file(&path);

        // --- Hub fan-out --------------------------------------------------
        hub_activate();
        assert!(enabled(), "hub alone enables the stream");
        let live = subscribe().expect("hub active");
        Event::new("grid_start").field_u64("cells", 1).emit();
        let HubWait::Batch(batch) = live.wait(Duration::from_secs(1)) else {
            panic!("expected a batch");
        };
        // The hub stream also starts with the header (sink was reset).
        assert_eq!(batch.len(), 2);
        assert!(batch[0].contains("\"ev\":\"run_meta\""));
        assert!(batch[1].contains("\"ev\":\"grid_start\""));

        // A late subscriber replays the backlog.
        let late = subscribe().expect("hub active");
        let HubWait::Batch(replay) = late.wait(Duration::from_secs(1)) else {
            panic!("expected backlog replay");
        };
        assert_eq!(replay.len(), 2);
        assert!(replay[0].contains("run_meta"));

        // A subscriber with a tiny queue that never drains is dropped
        // with accounting; emitters never block.
        let before = metrics::counter_value(DROPPED_COUNTER);
        let slow = subscribe_with_cap(2).expect("hub active");
        for i in 0..8 {
            Event::new("cell_end").field_u64("i", i).emit();
        }
        assert_eq!(metrics::counter_value(DROPPED_COUNTER), before + 1);
        match slow.wait(Duration::from_millis(10)) {
            HubWait::Ended { dropped } => assert!(dropped),
            _ => panic!("slow subscriber must observe its drop"),
        }

        // Deactivation closes live subscribers after their queue drains.
        hub_deactivate();
        assert!(!hub_active());
        let HubWait::Batch(rest) = live.wait(Duration::from_secs(1)) else {
            panic!("pending records delivered before close");
        };
        assert_eq!(rest.len(), 8);
        match live.wait(Duration::from_millis(10)) {
            HubWait::Ended { dropped } => assert!(!dropped),
            _ => panic!("closed hub ends the stream"),
        }
        assert!(!enabled());
    }
}
