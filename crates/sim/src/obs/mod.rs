//! Host-side observability bus: metrics, run events, leveled logging,
//! and host-phase profiling.
//!
//! Everything in this tree observes the *host* — wall clock, cache
//! traffic, worker pools — as opposed to the virtual-time tracing,
//! telemetry and lifecycle layers, which observe the *simulated*
//! machine. Four small pieces, all designed to stay off the simulated
//! hot path and to leave bench stdout byte-identical whether they are
//! enabled or not:
//!
//! - [`metrics`] — a process-global registry of named counters, gauges
//!   and histograms with cheap atomic updates and a JSON snapshot. The
//!   run cache, the figure worker pool, and the simulator's host-side
//!   data structures (page index, calendar wheel, store-forward slab)
//!   all publish here.
//! - [`events`] — an append-only NDJSON run-event stream
//!   (`ASAP_EVENTS=<path|stderr>`), schema `asap-events-v1`: one JSON
//!   object per line, every record parseable by [`crate::json::parse`].
//! - [`log`] — the [`note!`](crate::obs_note) / [`warn!`](crate::obs_warn)
//!   stderr helpers, gated by `ASAP_LOG=off|warn|note` (default `note`).
//! - [`phase`] — scoped host-phase timers (fingerprint / cache-probe /
//!   simulate / export) whose process-cumulative totals land in
//!   `BENCH_WALLCLOCK.json` records and the HTML run report.
//! - [`http`] — a std-only HTTP/1.1 server (`ASAP_HTTP=<addr>`) exposing
//!   all of the above live: `/metrics` (Prometheus text exposition),
//!   `/metrics.json`, and `/events` (chunked NDJSON tail through the
//!   broadcast hub in [`events`]); embedders add routes like `/progress`
//!   and `/report`. Slow or wedged clients are dropped with accounting —
//!   an observer can lose records, never stall a worker.
//!
//! Determinism rules (held by `ci.sh` and the bench tests): stdout is
//! never touched; event records carry wall time (`t_us`) and an ordering
//! key (`seq`) plus host durations (`host_us`), and comparisons across
//! `ASAP_JOBS` settings strip exactly those keys and sort lines.

pub mod events;
pub mod http;
pub mod log;
pub mod metrics;
pub mod phase;

// The leveled stderr helpers, usable as `obs::note!(...)` / `obs::warn!(...)`.
pub use crate::{obs_note as note, obs_warn as warn};
