//! Process-global metrics registry: named counters, gauges, histograms.
//!
//! Handles are `&'static` and updates are single atomic operations, so a
//! metric can sit on host-side paths (cache probes, worker-pool cells)
//! without measurable cost. Handle *acquisition* takes a registry lock —
//! call sites that update in a loop should hoist the handle (or cache it
//! in a `OnceLock`) rather than re-resolving by name.
//!
//! Counters only go up; gauges hold the last value set (plus a
//! high-water-mark helper); histograms wrap [`crate::stats::Histogram`]
//! behind a mutex and are meant for low-rate host-side samples, not the
//! simulated hot path — simulated quantities belong in the per-run
//! [`crate::stats::Stats`] registry, which stays deterministic.
//!
//! [`snapshot_json`] renders everything as one JSON object that
//! [`crate::json::parse`] round-trips; the bench harness embeds it in the
//! HTML run report and tests assert it against legacy summary lines.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json;
use crate::stats::Histogram;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge with a compare-and-max helper for high-water
/// marks.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram metric: log-bucketed quantiles over host-side samples.
#[derive(Debug, Default)]
pub struct HistogramMetric(Mutex<Histogram>);

impl HistogramMetric {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.0.lock().unwrap().record(v);
    }

    /// A clone of the current histogram state.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().unwrap().clone()
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    histograms: BTreeMap<String, &'static HistogramMetric>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

/// The counter named `name`, created on first use. The handle (and the
/// one `Box::leak` behind it) lives for the process — the metric
/// namespace is small and static by construction.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry().lock().unwrap();
    if let Some(c) = reg.counters.get(name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::default());
    reg.counters.insert(name.to_owned(), c);
    c
}

/// The gauge named `name`, created on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = registry().lock().unwrap();
    if let Some(g) = reg.gauges.get(name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::default());
    reg.gauges.insert(name.to_owned(), g);
    g
}

/// The histogram named `name`, created on first use.
pub fn histogram(name: &str) -> &'static HistogramMetric {
    let mut reg = registry().lock().unwrap();
    if let Some(h) = reg.histograms.get(name) {
        return h;
    }
    let h: &'static HistogramMetric = Box::leak(Box::default());
    reg.histograms.insert(name.to_owned(), h);
    h
}

/// The value of counter `name`, or 0 when it has never been touched
/// (reading must not allocate registry slots as a side effect).
pub fn counter_value(name: &str) -> u64 {
    registry()
        .lock()
        .unwrap()
        .counters
        .get(name)
        .map_or(0, |c| c.get())
}

/// The value of gauge `name`, or 0 when it has never been set.
pub fn gauge_value(name: &str) -> u64 {
    registry()
        .lock()
        .unwrap()
        .gauges
        .get(name)
        .map_or(0, |g| g.get())
}

/// A point-in-time copy of the whole registry, in name order — the
/// structured view behind [`snapshot_json`] and the Prometheus renderer
/// in [`super::http`].
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, state)` for every histogram.
    pub histograms: Vec<(String, Histogram)>,
}

/// Copies the current registry state (one lock hold; histogram clones).
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().unwrap();
    Snapshot {
        counters: reg
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect(),
    }
}

/// One JSON object with every registered metric:
/// `{"counters":{name:value,…},"gauges":{…},"histograms":{name:
/// {"count":…,"min":…,"max":…,"mean":…,"p50":…,"p99":…},…}}`.
/// Keys are sorted (BTreeMap), so two snapshots of identical state are
/// byte-identical; the whole document parses with [`crate::json::parse`].
pub fn snapshot_json() -> String {
    let reg = registry().lock().unwrap();
    let mut out = String::from("{\"counters\":{");
    for (i, (name, c)) in reg.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json::escape(name), c.get()));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, g)) in reg.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json::escape(name), g.get()));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in reg.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let h = h.snapshot();
        let s = h.summary();
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\
             \"p50\":{},\"p99\":{}}}",
            json::escape(name),
            s.count,
            s.min,
            s.max,
            json::num(s.mean()),
            h.quantile(0.50),
            h.quantile(0.99),
        ));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_update() {
        let c = counter("test.metrics.counter");
        c.inc();
        c.add(4);
        assert_eq!(counter_value("test.metrics.counter"), 5);
        // Same name resolves to the same handle.
        counter("test.metrics.counter").inc();
        assert_eq!(c.get(), 6);
        assert_eq!(counter_value("test.metrics.never_touched"), 0);

        let g = gauge("test.metrics.gauge");
        g.set(10);
        g.set_max(7); // lower: ignored
        assert_eq!(g.get(), 10);
        g.set_max(12);
        assert_eq!(gauge_value("test.metrics.gauge"), 12);
    }

    #[test]
    fn snapshot_parses_and_carries_values() {
        counter("test.metrics.snap").add(41);
        gauge("test.metrics.snap_gauge").set(9);
        let h = histogram("test.metrics.snap_hist");
        h.observe(3);
        h.observe(5);
        let snap = json::parse(&snapshot_json()).expect("snapshot parses");
        assert_eq!(
            snap.get("counters")
                .and_then(|c| c.get("test.metrics.snap"))
                .and_then(json::Value::as_u64),
            Some(41)
        );
        assert_eq!(
            snap.get("gauges")
                .and_then(|g| g.get("test.metrics.snap_gauge"))
                .and_then(json::Value::as_u64),
            Some(9)
        );
        let hist = snap
            .get("histograms")
            .and_then(|h| h.get("test.metrics.snap_hist"))
            .expect("histogram present");
        assert_eq!(hist.get("count").and_then(json::Value::as_u64), Some(2));
        assert_eq!(hist.get("min").and_then(json::Value::as_u64), Some(3));
        assert_eq!(hist.get("max").and_then(json::Value::as_u64), Some(5));
    }
}
