//! Virtual time: the [`Cycle`] newtype and arithmetic helpers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in CPU cycles since simulation start.
///
/// `Cycle` is an ordinary unsigned counter wrapped in a newtype so that cycle
/// timestamps cannot be confused with other integer quantities (addresses,
/// sizes, counts). Saturating subtraction is provided because durations are
/// frequently computed between clocks that may race by a few cycles in the
/// cycle-approximate model.
///
/// # Example
///
/// ```
/// use asap_sim::Cycle;
///
/// let start = Cycle(100);
/// let end = start + 42;
/// assert_eq!(end - start, 42);
/// assert_eq!(start.max(end), end);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero point of virtual time.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the raw cycle count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating duration from `earlier` to `self` (0 if `earlier` is later).
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Saturating: a negative duration clamps to zero.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl Sum<u64> for Cycle {
    fn sum<I: Iterator<Item = u64>>(iter: I) -> Cycle {
        Cycle(iter.sum())
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycle({})", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub() {
        let c = Cycle(10);
        assert_eq!(c + 5, Cycle(15));
        assert_eq!(Cycle(15) - c, 5);
    }

    #[test]
    fn sub_is_saturating() {
        assert_eq!(Cycle(5) - Cycle(10), 0);
        assert_eq!(Cycle(5).since(Cycle(10)), 0);
    }

    #[test]
    fn ordering() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle(7).max(Cycle(3)), Cycle(7));
    }

    #[test]
    fn add_assign() {
        let mut c = Cycle::ZERO;
        c += 3;
        assert_eq!(c, Cycle(3));
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{}", Cycle(9)), "9cy");
        assert_eq!(format!("{:?}", Cycle(9)), "Cycle(9)");
    }

    #[test]
    fn from_u64() {
        assert_eq!(Cycle::from(4u64), Cycle(4));
    }
}
