//! Tiny hand-rolled JSON emission helpers.
//!
//! The build environment is offline, so the exporters (stats report, Chrome
//! trace-event) cannot pull in serde; everything is string-built here. Only
//! emission is supported — nothing in the simulator parses JSON.

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `v` as a JSON number; non-finite values become `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain.name"), "plain.name");
    }

    #[test]
    fn num_guards_nonfinite() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
