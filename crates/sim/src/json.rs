//! Tiny hand-rolled JSON helpers: emission plus a minimal parser.
//!
//! The build environment is offline, so the exporters (stats report, Chrome
//! trace-event, telemetry series) cannot pull in serde; everything is
//! string-built here. The matching recursive-descent [`parse`] exists so
//! tests and the `run_report` example can validate the emitters round-trip
//! — the simulator itself never parses JSON on its hot paths.

use std::collections::BTreeMap;
use std::fmt;

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `v` as a JSON number; non-finite values become `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// A parsed JSON value. Objects use a [`BTreeMap`] so re-emission via
/// [`Value::to_json`] is deterministic regardless of input key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no `.`/`e`) that fits in `i128`. Kept exact —
    /// `u64` counters and cycle counts round-trip losslessly, which the
    /// run-result cache (`asap_bench::runcache`) depends on. Integer
    /// literals too large for `i128` fall back to [`Value::Num`].
    Int(i128),
    /// Any other JSON number (stored as `f64`; exact for integers < 2^53).
    Num(f64),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a float, if it is a number (integers are cast).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer in range. Floats are
    /// *not* coerced: a lossless integer round-trip either stays on the
    /// [`Value::Int`] path or fails loudly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Convenience: `self["key"]` for objects, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Re-serializes the value (object keys in sorted order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Num(n) => out.push_str(&num(*n)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// A parse failure: byte position and a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            map.insert(key, self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: only well-formed pairs accepted.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b @ (b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) = self.peek() {
            integral &= b.is_ascii_digit();
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        // Integer literals stay exact ([`Value::Int`]); anything with a
        // fraction/exponent — or beyond i128 — takes the float path.
        if integral {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        let n: f64 = text.parse().map_err(|_| ParseError {
            pos: start,
            msg: "invalid number",
        })?;
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain.name"), "plain.name");
    }

    #[test]
    fn num_guards_nonfinite() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parse_keeps_integers_exact() {
        // u64::MAX is far beyond f64's 2^53 integer range; the Int path
        // keeps it exact (the run cache round-trips cycle counters
        // through this).
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::Int(u64::MAX as i128)
        );
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("5").unwrap().as_f64(), Some(5.0));
        // Integer emission round-trips byte-identically.
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.to_json(), "18446744073709551615");
        // Beyond i128 falls back to the float path instead of failing.
        let big = "9".repeat(60);
        assert!(matches!(parse(&big).unwrap(), Value::Num(_)));
        // Fractions and exponents always take the float path.
        assert!(matches!(parse("1e3").unwrap(), Value::Num(_)));
        assert!(matches!(parse("2.0").unwrap(), Value::Num(_)));
    }

    #[test]
    fn parse_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
    }

    #[test]
    fn parse_decodes_escapes() {
        let v = parse(r#""a\n\t\"\\\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé"));
        // Surrogate pair for U+1F600.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"\\ud800\"").is_err());
        assert!(parse("nul").is_err());
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn round_trip_is_stable() {
        let text = r#"{"z":1,"a":[true,null,"s\n"],"m":{"k":-2.5}}"#;
        let v = parse(text).unwrap();
        let emitted = v.to_json();
        assert_eq!(parse(&emitted).unwrap(), v);
        // Second emission is byte-identical (canonical key order).
        assert_eq!(parse(&emitted).unwrap().to_json(), emitted);
    }

    #[test]
    fn escape_then_parse_is_identity() {
        let exotic = "weird \"label\" \\ with\nnewlines\tand \u{1}\u{1F600}é";
        let doc = format!("\"{}\"", escape(exotic));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(exotic));
    }
}
