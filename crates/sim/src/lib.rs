//! Deterministic virtual-time simulation engine.
//!
//! This crate is the foundation of the ASAP reproduction: a small,
//! dependency-free discrete-event kernel with per-thread virtual clocks.
//! Simulated threads run ordinary Rust code; every interaction with the
//! simulated hardware carries an explicit cycle timestamp, and background
//! hardware activity (persist operations draining to persistent memory,
//! region commits, …) is modelled with a global [`EventQueue`].
//!
//! The engine is *deterministic*: given the same configuration and seed, a
//! simulation produces bit-identical statistics. Determinism comes from
//! three rules enforced by the types here:
//!
//! 1. events with equal timestamps are processed in insertion order
//!    ([`EventQueue`] is a stable priority queue);
//! 2. the thread scheduler always resumes the runnable thread with the
//!    smallest local clock ([`ThreadClocks::next_runnable`]);
//! 3. simulated locks serialize critical sections in timestamp order
//!    ([`VirtualLock`]).
//!
//! # Example
//!
//! ```
//! use asap_sim::{Cycle, EventQueue};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(Cycle(10), "b");
//! q.push(Cycle(5), "a");
//! assert_eq!(q.pop(), Some((Cycle(5), "a")));
//! assert_eq!(q.pop(), Some((Cycle(10), "b")));
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod config;
pub mod events;
pub mod fingerprint;
pub mod json;
pub mod lock;
pub mod obs;
pub mod sched;
pub mod stats;
pub mod timeseries;
pub mod trace;

pub use clock::Cycle;
pub use config::{
    warn_unknown_asap_env, AsapConfig, CacheConfig, MemConfig, SystemConfig, KNOWN_ASAP_ENV,
};
pub use events::{DomainWheels, EventQueue};
pub use fingerprint::{Canon, Fingerprint};
pub use lock::VirtualLock;
pub use sched::ThreadClocks;
pub use stats::{Histogram, Stats, Summary};
pub use timeseries::{TelemetrySettings, TimeSeries};
pub use trace::{
    chrome_trace_json, StallClass, StallReason, Trace, TraceEvent, TracePart, TraceRecord,
    TraceSettings,
};
