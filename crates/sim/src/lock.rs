//! Virtual-time mutual exclusion.
//!
//! The paper's benchmarks nest atomic regions inside lock-guarded critical
//! sections (ASAP guarantees atomic durability, not isolation — §2.1/§4.2).
//! [`VirtualLock`] models such a lock in virtual time: acquisition at time
//! `t` completes at `max(t, time the previous holder released)` plus the
//! acquisition overhead, which both serializes critical sections and charges
//! waiting threads for contention — the mechanism by which slow persist
//! operations inside critical sections reduce throughput.

use crate::clock::Cycle;

/// A simulated mutex that serializes critical sections in timestamp order.
///
/// # Example
///
/// ```
/// use asap_sim::{Cycle, VirtualLock};
///
/// let mut lock = VirtualLock::new(20); // 20-cycle acquire overhead
/// let t1 = lock.acquire(Cycle(0));
/// assert_eq!(t1, Cycle(20));
/// lock.release(Cycle(100));
/// // A second thread arriving at cycle 50 waits for the release at 100.
/// let t2 = lock.acquire(Cycle(50));
/// assert_eq!(t2, Cycle(120));
/// ```
#[derive(Clone, Debug)]
pub struct VirtualLock {
    /// Virtual time at which the lock becomes free.
    free_at: Cycle,
    /// Fixed cost of a successful acquisition (CAS + fence).
    acquire_cost: u64,
    /// Whether the lock is currently held (for misuse detection).
    held: bool,
    /// Total cycles threads spent waiting on this lock.
    contended_cycles: u64,
    /// Number of acquisitions that had to wait.
    contended_acquires: u64,
    /// Total acquisitions.
    acquires: u64,
}

impl VirtualLock {
    /// Creates a free lock whose successful acquisition costs `acquire_cost`
    /// cycles.
    pub fn new(acquire_cost: u64) -> Self {
        VirtualLock {
            free_at: Cycle::ZERO,
            acquire_cost,
            held: false,
            contended_cycles: 0,
            contended_acquires: 0,
            acquires: 0,
        }
    }

    /// Acquires the lock for a thread whose clock reads `now`.
    ///
    /// Returns the thread's clock after the acquisition completes.
    ///
    /// # Panics
    ///
    /// Panics if the lock is already held and the caller's acquisition time
    /// precedes the current holder's *acquisition* — the scheduler must run
    /// threads in timestamp order, so this indicates a scheduling bug.
    pub fn acquire(&mut self, now: Cycle) -> Cycle {
        assert!(
            !self.held,
            "virtual lock acquired while held: scheduler bug"
        );
        let start = now.max(self.free_at);
        let waited = start - now;
        if waited > 0 {
            self.contended_cycles += waited;
            self.contended_acquires += 1;
        }
        self.acquires += 1;
        self.held = true;
        start + self.acquire_cost
    }

    /// Releases the lock at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not held.
    pub fn release(&mut self, now: Cycle) {
        assert!(self.held, "virtual lock released while free");
        self.held = false;
        self.free_at = self.free_at.max(now);
    }

    /// Virtual time at which the lock next becomes free.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Whether the lock is currently held.
    pub fn is_held(&self) -> bool {
        self.held
    }

    /// Total cycles spent waiting, across all acquisitions.
    pub fn contended_cycles(&self) -> u64 {
        self.contended_cycles
    }

    /// Number of acquisitions that waited at least one cycle.
    pub fn contended_acquires(&self) -> u64 {
        self.contended_acquires
    }

    /// Total number of acquisitions.
    pub fn acquires(&self) -> u64 {
        self.acquires
    }
}

impl Default for VirtualLock {
    /// A lock with a 20-cycle acquisition cost (uncontended CAS + fence).
    fn default() -> Self {
        VirtualLock::new(20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquire_costs_fixed_overhead() {
        let mut l = VirtualLock::new(20);
        assert_eq!(l.acquire(Cycle(5)), Cycle(25));
        assert!(l.is_held());
        assert_eq!(l.contended_cycles(), 0);
    }

    #[test]
    fn contended_acquire_waits_for_release() {
        let mut l = VirtualLock::new(10);
        let t = l.acquire(Cycle(0));
        assert_eq!(t, Cycle(10));
        l.release(Cycle(200));
        let t2 = l.acquire(Cycle(50));
        assert_eq!(t2, Cycle(210));
        assert_eq!(l.contended_cycles(), 150);
        assert_eq!(l.contended_acquires(), 1);
        assert_eq!(l.acquires(), 2);
    }

    #[test]
    fn release_in_the_past_does_not_rewind() {
        let mut l = VirtualLock::new(0);
        l.acquire(Cycle(0));
        l.release(Cycle(100));
        l.acquire(Cycle(0));
        l.release(Cycle(50)); // logically later but smaller timestamp
        assert_eq!(l.free_at(), Cycle(100));
    }

    #[test]
    #[should_panic(expected = "while held")]
    fn double_acquire_panics() {
        let mut l = VirtualLock::new(0);
        l.acquire(Cycle(0));
        l.acquire(Cycle(1));
    }

    #[test]
    #[should_panic(expected = "while free")]
    fn release_free_panics() {
        let mut l = VirtualLock::new(0);
        l.release(Cycle(0));
    }

    #[test]
    fn default_has_nonzero_cost() {
        let mut l = VirtualLock::default();
        assert!(l.acquire(Cycle(0)) > Cycle(0));
    }
}
