//! Virtual-time event tracing: a bounded ring buffer of typed simulator
//! events, stamped with thread id and virtual cycle.
//!
//! Tracing is off by default and costs one branch per instrumentation site
//! (the [`Trace::emit`] early-return). When enabled, the newest
//! [`TraceSettings::cap`] records are kept and older ones are counted as
//! dropped — a run can never exhaust memory through tracing.
//!
//! Two exports exist: a deterministic line-per-event text dump (used by the
//! determinism tests) and the Chrome trace-event JSON format, which opens
//! directly in Perfetto (`ui.perfetto.dev`) with one simulated cycle shown
//! as one microsecond.

use std::collections::VecDeque;

use crate::clock::Cycle;
use crate::json;

/// Why a thread is stalled, at the granularity of the hardware resource it
/// is waiting on. Mirrors the `asap.stall.*` counter registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallReason {
    /// Log space exhausted; waiting for committed regions to free records.
    LogFull,
    /// The Log Header WPQ (persistence-domain log metadata) is full.
    LhWpq,
    /// No free CL List entries to track a written cache line.
    ClEntries,
    /// No free CL pointer slots in the region's CL List head.
    ClptrSlots,
    /// No free Dependence List slot for a new region.
    DepSlots,
    /// A region's dependence-vector entry set is full.
    DepEntries,
    /// Waiting for another region's LPO lock on the line.
    LpoLock,
    /// Synchronous commit: waiting at region end for persists to complete.
    CommitWait,
    /// Waiting at a fence for prior regions to become durable.
    FenceWait,
    /// End-of-run drain of outstanding persists.
    Drain,
}

/// Coarse stall classes used by the per-region cycle breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallClass {
    /// [`StallReason::LogFull`].
    LogFull,
    /// Persistence-path backpressure: [`StallReason::LhWpq`],
    /// [`StallReason::ClEntries`], [`StallReason::ClptrSlots`].
    WpqBackpressure,
    /// Inter-region dependence waits: [`StallReason::DepSlots`],
    /// [`StallReason::DepEntries`], [`StallReason::LpoLock`].
    DependencyWait,
    /// Synchronous durability waits: [`StallReason::CommitWait`],
    /// [`StallReason::FenceWait`], [`StallReason::Drain`].
    CommitWait,
}

impl StallReason {
    /// The dotted stat-name suffix for this reason (`asap.stall.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            StallReason::LogFull => "log_full",
            StallReason::LhWpq => "lh_wpq",
            StallReason::ClEntries => "cl_entries",
            StallReason::ClptrSlots => "clptr_slots",
            StallReason::DepSlots => "dep_slots",
            StallReason::DepEntries => "dep_entries",
            StallReason::LpoLock => "lpo_lock",
            StallReason::CommitWait => "commit_wait",
            StallReason::FenceWait => "fence_wait",
            StallReason::Drain => "drain",
        }
    }

    /// The coarse class this reason folds into.
    pub fn class(self) -> StallClass {
        match self {
            StallReason::LogFull => StallClass::LogFull,
            StallReason::LhWpq | StallReason::ClEntries | StallReason::ClptrSlots => {
                StallClass::WpqBackpressure
            }
            StallReason::DepSlots | StallReason::DepEntries | StallReason::LpoLock => {
                StallClass::DependencyWait
            }
            StallReason::CommitWait | StallReason::FenceWait | StallReason::Drain => {
                StallClass::CommitWait
            }
        }
    }
}

impl StallClass {
    /// All classes, in reporting order.
    pub fn all() -> [StallClass; 4] {
        [
            StallClass::LogFull,
            StallClass::WpqBackpressure,
            StallClass::DependencyWait,
            StallClass::CommitWait,
        ]
    }

    /// Dense index of this class within [`StallClass::all`] (accumulator
    /// slot).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The dotted stat-name suffix for this class (`region.stall.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            StallClass::LogFull => "log_full",
            StallClass::WpqBackpressure => "wpq_backpressure",
            StallClass::DependencyWait => "dependency_wait",
            StallClass::CommitWait => "commit_wait",
        }
    }
}

/// A region identity in trace events: `(thread, local index)`. Kept as a
/// plain tuple so `asap-sim` stays independent of the memory crate's `Rid`.
pub type TraceRid = (u32, u64);

/// A typed simulator event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A thread entered an atomic region.
    RegionBegin {
        /// The region.
        rid: TraceRid,
    },
    /// A thread left an atomic region (execution commit; durability may
    /// still be pending under asynchronous schemes).
    RegionCommit {
        /// The region.
        rid: TraceRid,
    },
    /// A region became durable (all its log/data persists accepted).
    RegionPersisted {
        /// The region.
        rid: TraceRid,
    },
    /// A log persist operation was issued for `line`.
    LpoIssued {
        /// The owning region.
        rid: TraceRid,
        /// The logged cache line.
        line: u64,
    },
    /// A data persist operation was issued for `line`.
    DpoIssued {
        /// The owning region (if known).
        rid: Option<TraceRid>,
        /// The persisted cache line.
        line: u64,
    },
    /// A memory channel accepted a persist into its WPQ.
    WpqAccept {
        /// Channel index.
        channel: u32,
        /// Persist kind label (`dpo`, `lpo`, ...).
        kind: &'static str,
    },
    /// A memory channel drained a persist from its WPQ to media.
    WpqDrain {
        /// Channel index.
        channel: u32,
        /// Persist kind label.
        kind: &'static str,
        /// Cycles the op sat in the WPQ before draining.
        residency: u64,
    },
    /// A thread began stalling.
    StallBegin {
        /// What the thread is waiting on.
        reason: StallReason,
    },
    /// A thread stopped stalling.
    StallEnd {
        /// What the thread was waiting on.
        reason: StallReason,
        /// How long the stall lasted.
        cycles: u64,
    },
    /// A persist-order dependence edge `from → to` was recorded.
    DepEdge {
        /// The region that must persist first.
        from: TraceRid,
        /// The dependent region.
        to: TraceRid,
    },
    /// A cache line was evicted from the hierarchy.
    CacheEvict {
        /// The evicted line.
        line: u64,
        /// Whether the line was dirty (forced a writeback).
        dirty: bool,
    },
    /// The harness injected a crash (power failure).
    CrashInjected,
}

/// One trace record: a typed event with its virtual timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotonic per-trace sequence number (total order within a trace).
    pub seq: u64,
    /// Virtual cycle at which the event occurred.
    pub at: Cycle,
    /// The thread (or channel owner) that produced the event.
    pub thread: u32,
    /// The event itself.
    pub ev: TraceEvent,
}

/// Trace configuration, normally read from the environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSettings {
    /// Master switch.
    pub enabled: bool,
    /// Ring-buffer capacity in records.
    pub cap: usize,
}

/// Default ring capacity (records) when tracing is enabled without an
/// explicit `ASAP_TRACE_CAP`.
pub const DEFAULT_TRACE_CAP: usize = 1 << 20;

impl TraceSettings {
    /// Tracing off (the default; instrumentation costs one branch).
    pub fn disabled() -> Self {
        TraceSettings {
            enabled: false,
            cap: 0,
        }
    }

    /// Tracing on with the default capacity.
    pub fn enabled() -> Self {
        TraceSettings {
            enabled: true,
            cap: DEFAULT_TRACE_CAP,
        }
    }

    /// Tracing on keeping the newest `cap` records.
    pub fn with_cap(cap: usize) -> Self {
        TraceSettings { enabled: true, cap }
    }

    /// Reads `ASAP_TRACE` (truthy: anything but empty/`0`) and
    /// `ASAP_TRACE_CAP` (records, default 2^20).
    pub fn from_env() -> Self {
        let on = std::env::var("ASAP_TRACE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        if !on {
            return TraceSettings::disabled();
        }
        let cap = std::env::var("ASAP_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_TRACE_CAP);
        TraceSettings::with_cap(cap)
    }
}

impl Default for TraceSettings {
    fn default() -> Self {
        TraceSettings::disabled()
    }
}

/// A bounded ring buffer of [`TraceRecord`]s.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    settings: TraceSettings,
    seq: u64,
    dropped: u64,
    buf: VecDeque<TraceRecord>,
}

impl Trace {
    /// Creates a trace with the given settings.
    pub fn new(settings: TraceSettings) -> Self {
        Trace {
            settings,
            seq: 0,
            dropped: 0,
            buf: VecDeque::new(),
        }
    }

    /// A disabled trace (every `emit` is a single branch).
    pub fn disabled() -> Self {
        Trace::new(TraceSettings::disabled())
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.settings.enabled
    }

    /// Records `ev` at cycle `at` on `thread`. A no-op when disabled.
    #[inline]
    pub fn emit(&mut self, at: Cycle, thread: u32, ev: TraceEvent) {
        if !self.settings.enabled {
            return;
        }
        self.push(at, thread, ev);
    }

    #[inline(never)]
    fn push(&mut self, at: Cycle, thread: u32, ev: TraceEvent) {
        if self.settings.cap == 0 {
            self.dropped += 1;
            self.seq += 1;
            return;
        }
        if self.buf.len() == self.settings.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceRecord {
            seq: self.seq,
            at,
            thread,
            ev,
        });
        self.seq += 1;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records evicted by the ring (or discarded with cap 0).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discards all retained records (counters keep running).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// A deterministic text dump, one record per line. Two identical runs
    /// produce byte-identical dumps; the determinism tests compare these.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.buf {
            out.push_str(&format!(
                "{:>12} t{:<3} #{:<8} {:?}\n",
                r.at.0, r.thread, r.seq, r.ev
            ));
        }
        out
    }
}

/// One named process lane of a Chrome trace export.
#[derive(Clone, Copy)]
pub struct TracePart<'a> {
    /// Process name shown in the viewer (e.g. `cpu`, `pm`).
    pub name: &'a str,
    /// Chrome `pid` for this lane group.
    pub pid: u32,
    /// The trace providing the events.
    pub trace: &'a Trace,
}

/// Renders traces as Chrome trace-event JSON (the `traceEvents` array
/// format). Open the output in Perfetto: one simulated cycle is shown as
/// one microsecond. Regions and stalls become duration (`B`/`E`) events;
/// everything else becomes instant (`i`) events.
pub fn chrome_trace_json(parts: &[TracePart<'_>]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for part in parts {
        let meta = format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            part.pid,
            json::escape(part.name)
        );
        push_event(&mut out, &mut first, &meta);
        for r in part.trace.records() {
            emit_chrome(&mut out, &mut first, part.pid, r);
        }
    }
    out.push_str("\n]}\n");
    out
}

fn push_event(out: &mut String, first: &mut bool, ev: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(ev);
}

fn rid_args(rid: TraceRid) -> String {
    format!("{{\"rid\":\"{}:{}\"}}", rid.0, rid.1)
}

fn emit_chrome(out: &mut String, first: &mut bool, pid: u32, r: &TraceRecord) {
    let ts = r.at.0;
    let tid = r.thread;
    let common = format!("\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}");
    let ev = match &r.ev {
        TraceEvent::RegionBegin { rid } => {
            format!(
                "{{\"name\":\"region\",\"ph\":\"B\",{common},\"args\":{}}}",
                rid_args(*rid)
            )
        }
        TraceEvent::RegionCommit { rid } => {
            format!(
                "{{\"name\":\"region\",\"ph\":\"E\",{common},\"args\":{}}}",
                rid_args(*rid)
            )
        }
        TraceEvent::RegionPersisted { rid } => {
            format!(
                "{{\"name\":\"persisted\",\"ph\":\"i\",\"s\":\"t\",{common},\"args\":{}}}",
                rid_args(*rid)
            )
        }
        TraceEvent::LpoIssued { rid, line } => {
            format!(
                "{{\"name\":\"lpo\",\"ph\":\"i\",\"s\":\"t\",{common},\
                 \"args\":{{\"rid\":\"{}:{}\",\"line\":{line}}}}}",
                rid.0, rid.1
            )
        }
        TraceEvent::DpoIssued { rid, line } => {
            let rid = rid
                .map(|r| format!("\"{}:{}\"", r.0, r.1))
                .unwrap_or_else(|| "null".into());
            format!(
                "{{\"name\":\"dpo\",\"ph\":\"i\",\"s\":\"t\",{common},\
                 \"args\":{{\"rid\":{rid},\"line\":{line}}}}}"
            )
        }
        TraceEvent::WpqAccept { channel, kind } => {
            format!(
                "{{\"name\":\"wpq_accept\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                 \"pid\":{pid},\"tid\":{channel},\"args\":{{\"kind\":\"{}\"}}}}",
                json::escape(kind)
            )
        }
        TraceEvent::WpqDrain {
            channel,
            kind,
            residency,
        } => {
            format!(
                "{{\"name\":\"wpq_drain\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                 \"pid\":{pid},\"tid\":{channel},\
                 \"args\":{{\"kind\":\"{}\",\"residency\":{residency}}}}}",
                json::escape(kind)
            )
        }
        TraceEvent::StallBegin { reason } => {
            format!(
                "{{\"name\":\"stall:{}\",\"ph\":\"B\",{common}}}",
                reason.label()
            )
        }
        TraceEvent::StallEnd { reason, cycles } => {
            format!(
                "{{\"name\":\"stall:{}\",\"ph\":\"E\",{common},\
                 \"args\":{{\"cycles\":{cycles}}}}}",
                reason.label()
            )
        }
        TraceEvent::DepEdge { from, to } => {
            format!(
                "{{\"name\":\"dep_edge\",\"ph\":\"i\",\"s\":\"t\",{common},\
                 \"args\":{{\"from\":\"{}:{}\",\"to\":\"{}:{}\"}}}}",
                from.0, from.1, to.0, to.1
            )
        }
        TraceEvent::CacheEvict { line, dirty } => {
            format!(
                "{{\"name\":\"cache_evict\",\"ph\":\"i\",\"s\":\"t\",{common},\
                 \"args\":{{\"line\":{line},\"dirty\":{dirty}}}}}"
            )
        }
        TraceEvent::CrashInjected => {
            format!("{{\"name\":\"crash\",\"ph\":\"i\",\"s\":\"g\",{common}}}")
        }
    };
    push_event(out, first, &ev);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: &mut Trace, at: u64, thread: u32, ev: TraceEvent) {
        trace.emit(Cycle(at), thread, ev);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        assert!(!t.enabled());
        rec(&mut t, 1, 0, TraceEvent::CrashInjected);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut t = Trace::new(TraceSettings::with_cap(2));
        for i in 0..5u64 {
            rec(
                &mut t,
                i,
                0,
                TraceEvent::CacheEvict {
                    line: i,
                    dirty: false,
                },
            );
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let kept: Vec<u64> = t.records().map(|r| r.at.0).collect();
        assert_eq!(kept, [3, 4]);
        assert_eq!(t.records().next().unwrap().seq, 3);
    }

    #[test]
    fn dump_is_deterministic() {
        let build = || {
            let mut t = Trace::new(TraceSettings::with_cap(16));
            rec(&mut t, 5, 1, TraceEvent::RegionBegin { rid: (1, 0) });
            rec(
                &mut t,
                9,
                1,
                TraceEvent::StallEnd {
                    reason: StallReason::LhWpq,
                    cycles: 4,
                },
            );
            t.dump()
        };
        assert_eq!(build(), build());
        assert!(build().contains("RegionBegin"));
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = Trace::new(TraceSettings::with_cap(16));
        rec(&mut t, 10, 0, TraceEvent::RegionBegin { rid: (0, 7) });
        rec(&mut t, 30, 0, TraceEvent::RegionCommit { rid: (0, 7) });
        let mut pm = Trace::new(TraceSettings::with_cap(16));
        rec(
            &mut pm,
            20,
            0,
            TraceEvent::WpqAccept {
                channel: 3,
                kind: "dpo",
            },
        );
        let j = chrome_trace_json(&[
            TracePart {
                name: "cpu",
                pid: 0,
                trace: &t,
            },
            TracePart {
                name: "pm",
                pid: 1,
                trace: &pm,
            },
        ]);
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.trim_end().ends_with("]}"));
        assert!(j.contains("\"ph\":\"B\""));
        assert!(j.contains("\"ph\":\"E\""));
        assert!(j.contains("\"name\":\"wpq_accept\""));
        assert!(j.contains("\"tid\":3"));
        assert!(j.contains("process_name"));
        // Balanced braces/brackets — cheap structural validity check.
        let opens = j.matches('{').count();
        let closes = j.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn zero_cap_ring_drops_everything_but_counts() {
        let mut t = Trace::new(TraceSettings::with_cap(0));
        assert!(t.enabled());
        for i in 0..7u64 {
            rec(&mut t, i, 0, TraceEvent::CrashInjected);
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 7);
        assert!(t.records().next().is_none());
    }

    #[test]
    fn drop_counter_survives_interleaved_reads() {
        let mut t = Trace::new(TraceSettings::with_cap(1));
        rec(&mut t, 0, 0, TraceEvent::CrashInjected);
        assert_eq!((t.len(), t.dropped()), (1, 0));
        rec(&mut t, 1, 0, TraceEvent::CrashInjected);
        rec(&mut t, 2, 0, TraceEvent::CrashInjected);
        assert_eq!((t.len(), t.dropped()), (1, 2));
        // dropped + len always equals the number of emits.
        assert_eq!(t.dropped() + t.len() as u64, 3);
    }

    #[test]
    fn chrome_json_escapes_exotic_labels() {
        let exotic = "wpq \"kind\"\\with\nnewline\tand\u{1}ctl";
        let mut t = Trace::new(TraceSettings::with_cap(8));
        rec(
            &mut t,
            5,
            0,
            TraceEvent::WpqAccept {
                channel: 0,
                kind: exotic,
            },
        );
        let j = chrome_trace_json(&[TracePart {
            name: "pm \"quoted\"\n",
            pid: 1,
            trace: &t,
        }]);
        // The emitted document must parse, and the decoded strings must
        // round-trip the exotic originals exactly.
        let v = crate::json::parse(&j).expect("chrome trace JSON is well-formed");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let decoded: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("args"))
            .filter_map(|a| a.get("kind"))
            .filter_map(|k| k.as_str())
            .collect();
        assert_eq!(decoded, vec![exotic]);
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("args"))
            .filter_map(|a| a.get("name"))
            .filter_map(|n| n.as_str())
            .collect();
        assert!(names.contains(&"pm \"quoted\"\n"));
    }

    #[test]
    fn stall_reasons_classify() {
        assert_eq!(StallReason::LogFull.class(), StallClass::LogFull);
        assert_eq!(StallReason::LhWpq.class(), StallClass::WpqBackpressure);
        assert_eq!(StallReason::ClEntries.class(), StallClass::WpqBackpressure);
        assert_eq!(StallReason::DepSlots.class(), StallClass::DependencyWait);
        assert_eq!(StallReason::LpoLock.class(), StallClass::DependencyWait);
        assert_eq!(StallReason::CommitWait.class(), StallClass::CommitWait);
        assert_eq!(StallClass::all().len(), 4);
    }

    #[test]
    fn settings_env_parsing_defaults() {
        // No env manipulation here (tests run in parallel); just the
        // constructors.
        assert!(!TraceSettings::disabled().enabled);
        assert!(TraceSettings::enabled().enabled);
        assert_eq!(TraceSettings::enabled().cap, DEFAULT_TRACE_CAP);
        assert_eq!(TraceSettings::with_cap(9).cap, 9);
    }
}
