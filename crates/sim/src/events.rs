//! A stable min-priority event queue keyed by [`Cycle`].
//!
//! Implemented as a bucketed *calendar queue* (the classic discrete-event
//! simulator structure, cf. gem5's event queue): pending events live in a
//! wheel of power-of-two cycle buckets and pop in `(time, insertion-seq)`
//! order, exactly like the comparison-based `BinaryHeap` this replaced.
//! Almost all simulator events are scheduled within a few thousand cycles
//! of "now" (DRAM/PM latencies, WPQ residency timers), so a pop usually
//! touches a single small bucket instead of rebalancing a heap, and the
//! bucket vectors are recycled so steady-state traffic performs no heap
//! allocation. A `tests`-side proptest holds the calendar to bit-exact
//! pop-order equivalence against the original heap.

use std::cell::Cell;

use crate::clock::Cycle;

/// log2 of the bucket width in cycles: events within the same 64-cycle
/// window share a bucket.
const BUCKET_SHIFT: u32 = 6;
/// Number of wheel slots (power of two). The wheel spans
/// `SLOTS << BUCKET_SHIFT` = 16384 cycles per revolution, comfortably
/// beyond every latency and residency timer in `SystemConfig`.
const SLOTS: usize = 256;
const SLOT_MASK: u64 = (SLOTS as u64) - 1;

/// One scheduled entry: time, tie-break sequence number, payload.
struct Entry<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

/// A deterministic min-priority queue of timestamped events.
///
/// Events with equal timestamps pop in insertion order, which keeps the
/// whole simulation reproducible run-to-run.
///
/// # Example
///
/// ```
/// use asap_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), 'x');
/// q.push(Cycle(3), 'y');
/// q.push(Cycle(1), 'z');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['z', 'x', 'y']);
/// ```
pub struct EventQueue<E> {
    /// Wheel slots; an event at `at` lives in slot
    /// `(at >> BUCKET_SHIFT) & SLOT_MASK`. Entries from different wheel
    /// revolutions can share a slot; the absolute bucket number
    /// (`at >> BUCKET_SHIFT`) disambiguates.
    buckets: Vec<Vec<Entry<E>>>,
    len: usize,
    next_seq: u64,
    /// Absolute bucket number at or before the earliest pending event.
    /// Memoized across `peek_time` calls (hence `Cell`): skipping empty
    /// buckets is amortized instead of repeated per query. Purely a
    /// search hint — it never affects which event pops next.
    cursor: Cell<u64>,
    /// Location `(slot, index, at)` of the current minimum, found by the
    /// last [`Self::find_min`]; invalidated by every mutation so a
    /// `peek_time` immediately followed by `pop` scans only once.
    cached_min: Cell<Option<(u32, u32, Cycle)>>,
    /// How many times [`Self::find_min`] fell back to the sparse-tail
    /// full scan (every pending event more than one wheel revolution
    /// away). A plain `Cell` — never on stdout, flushed to the host
    /// metrics registry (`sim.calendar.full_scans`) after a run.
    full_scans: Cell<u64>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(SLOTS);
        buckets.resize_with(SLOTS, Vec::new);
        EventQueue {
            buckets,
            len: 0,
            next_seq: 0,
            cursor: Cell::new(0),
            cached_min: Cell::new(None),
            full_scans: Cell::new(0),
        }
    }

    /// Schedules `payload` to fire at time `at`.
    pub fn push(&mut self, at: Cycle, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let abs = at.0 >> BUCKET_SHIFT;
        if self.len == 0 || abs < self.cursor.get() {
            self.cursor.set(abs);
        }
        self.cached_min.set(None);
        self.buckets[(abs & SLOT_MASK) as usize].push(Entry { at, seq, payload });
        self.len += 1;
    }

    /// Locates the earliest `(at, seq)` entry, returning `(slot, index,
    /// at)`. Scans absolute buckets forward from the cursor; if a full
    /// wheel revolution finds nothing (every pending event is far in the
    /// future), falls back to one linear scan and re-aims the cursor.
    fn find_min(&self) -> Option<(u32, u32, Cycle)> {
        if self.len == 0 {
            return None;
        }
        if let Some(hit) = self.cached_min.get() {
            return Some(hit);
        }
        let start = self.cursor.get();
        for abs in start..start + SLOTS as u64 {
            let slot = (abs & SLOT_MASK) as usize;
            let mut best: Option<(u32, u64, Cycle)> = None;
            for (i, e) in self.buckets[slot].iter().enumerate() {
                if e.at.0 >> BUCKET_SHIFT == abs
                    && best.is_none_or(|(_, seq, at)| (e.at, e.seq) < (at, seq))
                {
                    best = Some((i as u32, e.seq, e.at));
                }
            }
            if let Some((i, _, at)) = best {
                self.cursor.set(abs);
                let hit = (slot as u32, i, at);
                self.cached_min.set(Some(hit));
                return Some(hit);
            }
        }
        // Sparse tail: nothing within one revolution of the cursor. Scan
        // everything once for the global `(at, seq)` minimum.
        self.full_scans.set(self.full_scans.get() + 1);
        let mut best: Option<(u32, u32, u64, Cycle)> = None;
        for (slot, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                if best.is_none_or(|(_, _, seq, at)| (e.at, e.seq) < (at, seq)) {
                    best = Some((slot as u32, i as u32, e.seq, e.at));
                }
            }
        }
        let (slot, i, _, at) = best.expect("len > 0 implies an entry exists");
        self.cursor.set(at.0 >> BUCKET_SHIFT);
        let hit = (slot, i, at);
        self.cached_min.set(Some(hit));
        Some(hit)
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let (slot, i, _) = self.find_min()?;
        self.cached_min.set(None);
        // Within a bucket the minimum is chosen by `(at, seq)`, so the
        // in-vector order left behind by `swap_remove` is irrelevant.
        let e = self.buckets[slot as usize].swap_remove(i as usize);
        self.len -= 1;
        Some((e.at, e.payload))
    }

    /// Removes the earliest event only if it fires at or before `deadline`.
    pub fn pop_until(&mut self, deadline: Cycle) -> Option<(Cycle, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.find_min().map(|(_, _, at)| at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Iterates over all pending payloads in unspecified order (used for
    /// state queries such as store-forwarding against in-flight traffic).
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.buckets.iter().flatten().map(|e| &e.payload)
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How many [`pop`](Self::pop)/[`peek_time`](Self::peek_time) calls
    /// fell back to the full linear scan because every pending event was
    /// beyond one wheel revolution. A persistently high rate means the
    /// wheel geometry no longer matches the workload's event horizon.
    pub fn full_scans(&self) -> u64 {
        self.full_scans.get()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len)
            .field("next_at", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(5), i)));
        }
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), 'a');
        q.push(Cycle(20), 'b');
        assert_eq!(q.pop_until(Cycle(15)), Some((Cycle(10), 'a')));
        assert_eq!(q.pop_until(Cycle(15)), None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_empty() {
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(2), "b");
        q.push(Cycle(1), "a");
        assert_eq!(q.pop(), Some((Cycle(1), "a")));
        q.push(Cycle(1), "c"); // earlier than "b" even though pushed later
        assert_eq!(q.pop(), Some((Cycle(1), "c")));
        assert_eq!(q.pop(), Some((Cycle(2), "b")));
    }

    #[test]
    fn iter_sees_all_pending() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), 'a');
        q.push(Cycle(1), 'b');
        let mut all: Vec<char> = q.iter().copied().collect();
        all.sort_unstable();
        assert_eq!(all, ['a', 'b']);
        q.pop();
        assert_eq!(q.iter().count(), 1);
    }

    #[test]
    fn debug_nonempty() {
        let mut q = EventQueue::new();
        q.push(Cycle(1), ());
        assert!(format!("{q:?}").contains("EventQueue"));
    }

    /// Events scheduled more than a full wheel revolution ahead (and a mix
    /// of near/far pushes landing in the *same* wheel slot from different
    /// revolutions) must still pop in global time order.
    #[test]
    fn far_future_events_pop_in_order() {
        let span = (SLOTS as u64) << BUCKET_SHIFT;
        let mut q = EventQueue::new();
        q.push(Cycle(7 * span + 3), 'd');
        q.push(Cycle(3), 'a'); // same slot as 'd', seven revolutions earlier
        q.push(Cycle(2 * span), 'b');
        q.push(Cycle(5 * span + 1), 'c');
        assert_eq!(q.peek_time(), Some(Cycle(3)));
        assert_eq!(q.pop(), Some((Cycle(3), 'a')));
        assert_eq!(q.pop(), Some((Cycle(2 * span), 'b')));
        assert_eq!(q.pop(), Some((Cycle(5 * span + 1), 'c')));
        assert_eq!(q.pop(), Some((Cycle(7 * span + 3), 'd')));
        assert_eq!(q.pop(), None);
    }

    /// The sparse-tail fallback is counted (and only the fallback — dense
    /// near-term traffic never touches it).
    #[test]
    fn full_scans_counts_sparse_tail_only() {
        let span = (SLOTS as u64) << BUCKET_SHIFT;
        let mut q = EventQueue::new();
        q.push(Cycle(1), 'a');
        q.push(Cycle(9 * span), 'b');
        // Dense near-term traffic: no fallback.
        assert_eq!(q.pop(), Some((Cycle(1), 'a')));
        assert_eq!(q.full_scans(), 0);
        // The survivor is nine revolutions past the cursor (a push into
        // an *empty* queue would re-aim the cursor directly, so the far
        // event must coexist with the near one): one full scan finds it.
        assert_eq!(q.pop(), Some((Cycle(9 * span), 'b')));
        assert!(q.full_scans() >= 1);
    }

    /// Pushing an earlier event after the cursor has advanced past its
    /// bucket must rewind the cursor (the memoization is a hint only).
    #[test]
    fn push_into_past_rewinds_cursor() {
        let mut q = EventQueue::new();
        q.push(Cycle(10_000), 'z');
        assert_eq!(q.peek_time(), Some(Cycle(10_000)));
        q.push(Cycle(1), 'a');
        assert_eq!(q.pop(), Some((Cycle(1), 'a')));
        assert_eq!(q.pop(), Some((Cycle(10_000), 'z')));
    }

    /// The original heap-based queue, kept as the ordering oracle for the
    /// equivalence proptest below.
    mod reference {
        use super::Cycle;
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        struct Entry<E> {
            at: Cycle,
            seq: u64,
            payload: E,
        }

        impl<E> PartialEq for Entry<E> {
            fn eq(&self, other: &Self) -> bool {
                self.at == other.at && self.seq == other.seq
            }
        }

        impl<E> Eq for Entry<E> {}

        impl<E> PartialOrd for Entry<E> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        impl<E> Ord for Entry<E> {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .at
                    .cmp(&self.at)
                    .then_with(|| other.seq.cmp(&self.seq))
            }
        }

        pub struct HeapQueue<E> {
            heap: BinaryHeap<Entry<E>>,
            next_seq: u64,
        }

        impl<E> HeapQueue<E> {
            pub fn new() -> Self {
                HeapQueue {
                    heap: BinaryHeap::new(),
                    next_seq: 0,
                }
            }

            pub fn push(&mut self, at: Cycle, payload: E) {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.heap.push(Entry { at, seq, payload });
            }

            pub fn pop(&mut self) -> Option<(Cycle, E)> {
                self.heap.pop().map(|e| (e.at, e.payload))
            }

            pub fn peek_time(&self) -> Option<Cycle> {
                self.heap.peek().map(|e| e.at)
            }

            pub fn len(&self) -> usize {
                self.heap.len()
            }
        }
    }

    mod prop {
        use super::reference::HeapQueue;
        use super::{Cycle, EventQueue, BUCKET_SHIFT, SLOTS};
        use proptest::prelude::*;

        #[derive(Clone, Debug)]
        enum Op {
            /// Push one event at this cycle.
            Push(u64),
            /// Push a burst of events on the same cycle (FIFO tie-break
            /// stress).
            Burst(u64, u8),
            Pop,
            PopUntil(u64),
        }

        fn cycle_strategy() -> impl Strategy<Value = u64> {
            let span = (SLOTS as u64) << BUCKET_SHIFT;
            prop_oneof![
                // Dense near-term traffic, the simulator's common case.
                4 => 0u64..5_000,
                // Beyond one wheel revolution.
                2 => 0u64..20 * span,
                // Pathologically far future (sparse-tail fallback path).
                1 => 0u64..u64::MAX / 2,
            ]
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                3 => cycle_strategy().prop_map(Op::Push),
                1 => (cycle_strategy(), 2u8..6).prop_map(|(c, n)| Op::Burst(c, n)),
                3 => Just(Op::Pop),
                1 => cycle_strategy().prop_map(Op::PopUntil),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

            /// The calendar queue and the original binary heap must emit
            /// identical `(cycle, payload)` sequences — and agree on
            /// `peek_time`/`len` — under arbitrary interleaved traffic.
            #[test]
            fn calendar_matches_heap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
                let mut cal = EventQueue::new();
                let mut heap = HeapQueue::new();
                let mut payload = 0u32;
                for op in &ops {
                    match *op {
                        Op::Push(at) => {
                            cal.push(Cycle(at), payload);
                            heap.push(Cycle(at), payload);
                            payload += 1;
                        }
                        Op::Burst(at, n) => {
                            for _ in 0..n {
                                cal.push(Cycle(at), payload);
                                heap.push(Cycle(at), payload);
                                payload += 1;
                            }
                        }
                        Op::Pop => {
                            prop_assert_eq!(cal.pop(), heap.pop());
                        }
                        Op::PopUntil(deadline) => {
                            // Oracle semantics: pop only if due by deadline.
                            let expect = match heap.peek_time() {
                                Some(t) if t <= Cycle(deadline) => heap.pop(),
                                _ => None,
                            };
                            prop_assert_eq!(cal.pop_until(Cycle(deadline)), expect);
                        }
                    }
                    prop_assert_eq!(cal.peek_time(), heap.peek_time());
                    prop_assert_eq!(cal.len(), heap.len());
                }
                // Drain: the full remaining order must match exactly.
                while let Some(got) = cal.pop() {
                    prop_assert_eq!(Some(got), heap.pop());
                }
                prop_assert_eq!(heap.pop(), None);
                prop_assert!(cal.is_empty());
            }
        }
    }
}
