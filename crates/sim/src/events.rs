//! A stable min-priority event queue keyed by [`Cycle`].
//!
//! Implemented as a bucketed *calendar queue* (the classic discrete-event
//! simulator structure, cf. gem5's event queue): pending events live in a
//! wheel of power-of-two cycle buckets and pop in `(time, insertion-seq)`
//! order, exactly like the comparison-based `BinaryHeap` this replaced.
//! Almost all simulator events are scheduled within a few thousand cycles
//! of "now" (DRAM/PM latencies, WPQ residency timers), so a pop usually
//! touches a single small bucket instead of rebalancing a heap, and the
//! bucket vectors are recycled so steady-state traffic performs no heap
//! allocation. A `tests`-side proptest holds the calendar to bit-exact
//! pop-order equivalence against the original heap.

use std::cell::Cell;

use crate::clock::Cycle;

/// log2 of the bucket width in cycles: events within the same 64-cycle
/// window share a bucket.
const BUCKET_SHIFT: u32 = 6;
/// Number of wheel slots (power of two). The wheel spans
/// `SLOTS << BUCKET_SHIFT` = 16384 cycles per revolution, comfortably
/// beyond every latency and residency timer in `SystemConfig`.
const SLOTS: usize = 256;
const SLOT_MASK: u64 = (SLOTS as u64) - 1;

/// One scheduled entry: time, tie-break sequence number, payload.
#[derive(Clone)]
struct Entry<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

/// A deterministic min-priority queue of timestamped events.
///
/// Events with equal timestamps pop in insertion order, which keeps the
/// whole simulation reproducible run-to-run.
///
/// # Example
///
/// ```
/// use asap_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), 'x');
/// q.push(Cycle(3), 'y');
/// q.push(Cycle(1), 'z');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['z', 'x', 'y']);
/// ```
#[derive(Clone)]
pub struct EventQueue<E> {
    /// Wheel slots; an event at `at` lives in slot
    /// `(at >> BUCKET_SHIFT) & SLOT_MASK`. Entries from different wheel
    /// revolutions can share a slot; the absolute bucket number
    /// (`at >> BUCKET_SHIFT`) disambiguates.
    buckets: Vec<Vec<Entry<E>>>,
    len: usize,
    next_seq: u64,
    /// Absolute bucket number at or before the earliest pending event.
    /// Memoized across `peek_time` calls (hence `Cell`): skipping empty
    /// buckets is amortized instead of repeated per query. Purely a
    /// search hint — it never affects which event pops next.
    cursor: Cell<u64>,
    /// Location `(slot, index, at, seq)` of the current minimum, found by
    /// the last [`Self::find_min`]. A pop invalidates it; a push *updates*
    /// it (appends never move existing entries, so the memoized index
    /// stays valid and only an earlier key can displace the minimum) —
    /// the common schedule-later-work push keeps the memo warm.
    cached_min: Cell<Option<(u32, u32, Cycle, u64)>>,
    /// One bit per wheel slot, set while the slot's bucket is non-empty.
    /// Lets [`Self::find_min`] skip runs of empty slots with word scans —
    /// the per-domain wheels of [`DomainWheels`] are sparser than one
    /// merged wheel, so walking empties slot-by-slot is what would make
    /// partitioning a serial loss.
    occ: [u64; SLOTS / 64],
    /// How many times [`Self::find_min`] fell back to the sparse-tail
    /// full scan (every pending event more than one wheel revolution
    /// away). A plain `Cell` — never on stdout, flushed to the host
    /// metrics registry (`sim.calendar.full_scans`) after a run.
    full_scans: Cell<u64>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(SLOTS);
        buckets.resize_with(SLOTS, Vec::new);
        EventQueue {
            buckets,
            len: 0,
            next_seq: 0,
            cursor: Cell::new(0),
            cached_min: Cell::new(None),
            occ: [0; SLOTS / 64],
            full_scans: Cell::new(0),
        }
    }

    /// Schedules `payload` to fire at time `at`.
    pub fn push(&mut self, at: Cycle, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_with_seq(at, seq, payload);
    }

    /// Schedules `payload` at `at` with a caller-supplied tie-break
    /// sequence number, bypassing the queue's own counter. This is the
    /// seam [`DomainWheels`] uses to keep one *global* insertion order
    /// across several per-domain wheels: equal-time entries still pop
    /// lowest-seq first, whatever wheel they live in. Callers own the seq
    /// discipline — mixing this with [`push`](Self::push) on the same
    /// queue is only meaningful if the two counters never collide.
    #[inline]
    pub fn push_with_seq(&mut self, at: Cycle, seq: u64, payload: E) {
        let abs = at.0 >> BUCKET_SHIFT;
        if self.len == 0 || abs < self.cursor.get() {
            self.cursor.set(abs);
        }
        let slot = (abs & SLOT_MASK) as usize;
        // Keep the memoized minimum warm: appends never move existing
        // entries, so the cached `(slot, index)` stays valid and only a
        // strictly earlier key displaces it. (When there is no memo we
        // leave it unset rather than pay a scan here.)
        if let Some((_, _, cat, cseq)) = self.cached_min.get() {
            if (at, seq) < (cat, cseq) {
                self.cached_min.set(Some((
                    slot as u32,
                    self.buckets[slot].len() as u32,
                    at,
                    seq,
                )));
            }
        } else if self.len == 0 {
            self.cached_min.set(Some((slot as u32, 0, at, seq)));
        }
        self.occ[slot >> 6] |= 1 << (slot & 63);
        self.buckets[slot].push(Entry { at, seq, payload });
        self.len += 1;
    }

    /// Ring-offset (distance from `start_slot`) of the first non-empty
    /// slot at offset `from` or later, scanning the occupancy words.
    #[inline]
    fn next_occupied(&self, from: usize, start_slot: usize) -> Option<usize> {
        let mut off = from;
        while off < SLOTS {
            let slot = (start_slot + off) & (SLOTS - 1);
            let (word, bit) = (slot >> 6, slot & 63);
            // Consecutive ring offsets stay in this word only up to its
            // top bit; clamp so a wrap re-enters the loop cleanly.
            let span = (64 - bit).min(SLOTS - off);
            let mask = if span == 64 {
                !0u64
            } else {
                ((1u64 << span) - 1) << bit
            };
            let hits = self.occ[word] & mask;
            if hits != 0 {
                return Some(off + (hits.trailing_zeros() as usize - bit));
            }
            off += span;
        }
        None
    }

    /// Locates the earliest `(at, seq)` entry, returning `(slot, index,
    /// at, seq)`. Scans absolute buckets forward from the cursor; if a
    /// full wheel revolution finds nothing (every pending event is far in
    /// the future), falls back to one linear scan and re-aims the cursor.
    #[inline]
    fn find_min(&self) -> Option<(u32, u32, Cycle, u64)> {
        if self.len == 0 {
            return None;
        }
        if let Some(hit) = self.cached_min.get() {
            return Some(hit);
        }
        self.find_min_scan()
    }

    /// The cold half of [`find_min`](Self::find_min): the occupancy-bit
    /// scan that runs when nothing is memoized. Kept out-of-line so the
    /// memo-hit fast path above stays cheap to inline at every peek/pop
    /// call site.
    #[inline(never)]
    fn find_min_scan(&self) -> Option<(u32, u32, Cycle, u64)> {
        let start = self.cursor.get();
        let start_slot = (start & SLOT_MASK) as usize;
        let mut off = 0usize;
        // Word-scan the occupancy bits from the cursor: only non-empty
        // slots are visited, in absolute-bucket order.
        while let Some(o) = self.next_occupied(off, start_slot) {
            let abs = start + o as u64;
            let slot = (start_slot + o) & (SLOTS - 1);
            let mut best: Option<(u32, u64, Cycle)> = None;
            for (i, e) in self.buckets[slot].iter().enumerate() {
                if e.at.0 >> BUCKET_SHIFT == abs
                    && best.is_none_or(|(_, seq, at)| (e.at, e.seq) < (at, seq))
                {
                    best = Some((i as u32, e.seq, e.at));
                }
            }
            if let Some((i, seq, at)) = best {
                self.cursor.set(abs);
                let hit = (slot as u32, i, at, seq);
                self.cached_min.set(Some(hit));
                return Some(hit);
            }
            off = o + 1;
        }
        // Sparse tail: nothing within one revolution of the cursor. Scan
        // every occupied slot once for the global `(at, seq)` minimum.
        self.full_scans.set(self.full_scans.get() + 1);
        let mut best: Option<(u32, u32, u64, Cycle)> = None;
        for (w, &bits) in self.occ.iter().enumerate() {
            let mut b = bits;
            while b != 0 {
                let slot = w * 64 + b.trailing_zeros() as usize;
                b &= b - 1;
                for (i, e) in self.buckets[slot].iter().enumerate() {
                    if best.is_none_or(|(_, _, seq, at)| (e.at, e.seq) < (at, seq)) {
                        best = Some((slot as u32, i as u32, e.seq, e.at));
                    }
                }
            }
        }
        let (slot, i, seq, at) = best.expect("len > 0 implies an entry exists");
        self.cursor.set(at.0 >> BUCKET_SHIFT);
        let hit = (slot, i, at, seq);
        self.cached_min.set(Some(hit));
        Some(hit)
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.pop_entry().map(|(at, _, payload)| (at, payload))
    }

    /// Removes and returns the earliest event together with its tie-break
    /// sequence number (pre-window events keep the global seq they were
    /// pushed with — the parallel window replay needs it).
    #[inline]
    pub fn pop_entry(&mut self) -> Option<(Cycle, u64, E)> {
        let (slot, i, _, _) = self.find_min()?;
        self.cached_min.set(None);
        // Within a bucket the minimum is chosen by `(at, seq)`, so the
        // in-vector order left behind by `swap_remove` is irrelevant.
        let e = self.buckets[slot as usize].swap_remove(i as usize);
        if self.buckets[slot as usize].is_empty() {
            self.occ[(slot >> 6) as usize] &= !(1 << (slot & 63));
        }
        self.len -= 1;
        Some((e.at, e.seq, e.payload))
    }

    /// Removes the earliest event only if it fires at or before `deadline`.
    #[inline]
    pub fn pop_until(&mut self, deadline: Cycle) -> Option<(Cycle, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// [`pop_until`](Self::pop_until), also returning the entry's seq.
    #[inline]
    pub fn pop_entry_until(&mut self, deadline: Cycle) -> Option<(Cycle, u64, E)> {
        if self.peek_time()? <= deadline {
            self.pop_entry()
        } else {
            None
        }
    }

    /// Timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<Cycle> {
        self.find_min().map(|(_, _, at, _)| at)
    }

    /// `(time, seq)` ordering key of the earliest pending event, if any.
    /// Served from the memoized minimum when nothing mutated since the
    /// last query — this is what makes a min-of-mins frontier over many
    /// wheels cheap: untouched wheels answer with a `Cell` load.
    #[inline]
    pub fn peek_key(&self) -> Option<(Cycle, u64)> {
        self.find_min().map(|(_, _, at, seq)| (at, seq))
    }

    /// Rewrites the seq of every entry with `seq >= base` to
    /// `table[seq - base]`. The parallel window replay uses this to give
    /// events born inside a window (under provisional per-domain numbers)
    /// the exact global seqs the serial schedule would have assigned.
    /// Times are untouched, so the cursor stays valid; the memoized
    /// minimum is dropped because tie-break order may change.
    pub fn remap_seqs(&mut self, base: u64, table: &[u64]) {
        for bucket in &mut self.buckets {
            for e in bucket {
                if e.seq >= base {
                    e.seq = table[(e.seq - base) as usize];
                }
            }
        }
        self.cached_min.set(None);
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Iterates over all pending payloads in unspecified order (used for
    /// state queries such as store-forwarding against in-flight traffic).
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.buckets.iter().flatten().map(|e| &e.payload)
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How many [`pop`](Self::pop)/[`peek_time`](Self::peek_time) calls
    /// fell back to the full linear scan because every pending event was
    /// beyond one wheel revolution. A persistently high rate means the
    /// wheel geometry no longer matches the workload's event horizon.
    pub fn full_scans(&self) -> u64 {
        self.full_scans.get()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len)
            .field("next_at", &self.peek_time())
            .finish()
    }
}

/// A set of per-domain calendar wheels sharing one global insertion order.
///
/// Partitioning a simulator's event population by *domain* (for the memory
/// system: the channel that owns each event) keeps every wheel small and —
/// more importantly — keeps a pop from invalidating the other domains'
/// memoized minima. The next event is found by a min-of-mins *frontier*:
/// each wheel answers `peek_key` from its cached minimum, so the global
/// minimum costs one `(time, seq)` compare per domain instead of a bucket
/// scan over the merged population.
///
/// Pop order is identical to a single [`EventQueue`] fed the same pushes:
/// seqs come from one shared counter, so `(time, insertion-seq)` ordering
/// is global. A proptest in this module drives the partitioned wheels
/// against the single-wheel oracle to hold that bit-exact.
///
/// The per-wheel structure is also the parallel-execution seam: disjoint
/// `&mut` wheels ([`wheels_mut`](Self::wheels_mut)) let worker threads
/// drain their own domains concurrently, with
/// [`EventQueue::push_with_seq`]/[`EventQueue::remap_seqs`] available to
/// reconstruct the serial seq assignment afterwards.
#[derive(Clone)]
pub struct DomainWheels<E> {
    wheels: Vec<EventQueue<E>>,
    next_seq: u64,
    /// Memoized global minimum `(at, seq, domain)`. The simulator's pump
    /// polls the next event time far more often than it pops, so the
    /// frontier answer is cached here and served with one load; a pop or
    /// any direct wheel access drops it, a push only has to *compare*.
    min_memo: Cell<Option<(Cycle, u64, u32)>>,
    /// Memoized total event count. The pump polls an *empty* queue just as
    /// often as a non-empty one (compute phases schedule nothing), and the
    /// single-wheel queue answered that with one `len` load — this keeps
    /// the partitioned wheels at parity instead of touching every wheel.
    /// Maintained by push/pop, dropped by raw wheel access, rebuilt on the
    /// next query.
    total_memo: Cell<Option<usize>>,
}

impl<E> DomainWheels<E> {
    /// Creates `domains` empty wheels (at least one).
    pub fn new(domains: usize) -> Self {
        let mut wheels = Vec::with_capacity(domains.max(1));
        wheels.resize_with(domains.max(1), EventQueue::new);
        DomainWheels {
            wheels,
            next_seq: 0,
            min_memo: Cell::new(None),
            total_memo: Cell::new(Some(0)),
        }
    }

    /// Number of domains.
    pub fn num_domains(&self) -> usize {
        self.wheels.len()
    }

    /// Schedules `payload` on `domain`'s wheel at time `at`, drawing the
    /// next globally ordered sequence number.
    pub fn push(&mut self, domain: u32, at: Cycle, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        // A later key can't displace a memoized minimum; an earlier one
        // replaces it in place. (A cold memo stays cold — recomputing is
        // deferred to the next query.)
        if let Some((cat, cseq, _)) = self.min_memo.get() {
            if (at, seq) < (cat, cseq) {
                self.min_memo.set(Some((at, seq, domain)));
            }
        } else if self.total_memo.get() == Some(0) {
            // Known-empty queue: this entry *is* the global minimum.
            self.min_memo.set(Some((at, seq, domain)));
        }
        if let Some(t) = self.total_memo.get() {
            self.total_memo.set(Some(t + 1));
        }
        self.wheels[domain as usize].push_with_seq(at, seq, payload);
    }

    /// The frontier: index of the wheel holding the globally earliest
    /// `(time, seq)` entry.
    #[inline]
    fn frontier(&self) -> Option<(Cycle, u64, u32)> {
        if let Some(hit) = self.min_memo.get() {
            return Some(hit);
        }
        if self.total_memo.get() == Some(0) {
            return None;
        }
        self.frontier_scan()
    }

    /// Cold half of [`frontier`](Self::frontier): min-of-wheels scan, kept
    /// out of line so the memo-hit fast path stays inlinable at call sites.
    #[inline(never)]
    fn frontier_scan(&self) -> Option<(Cycle, u64, u32)> {
        let mut best: Option<(Cycle, u64, u32)> = None;
        for (d, w) in self.wheels.iter().enumerate() {
            if let Some((at, seq)) = w.peek_key() {
                if best.is_none_or(|(bat, bseq, _)| (at, seq) < (bat, bseq)) {
                    best = Some((at, seq, d as u32));
                }
            }
        }
        if best.is_none() {
            // The scan proved every wheel empty; re-memoize the count so
            // repeated polls of an idle queue stay one load.
            self.total_memo.set(Some(0));
        }
        self.min_memo.set(best);
        best
    }

    /// Timestamp of the earliest pending event across all domains.
    #[inline]
    pub fn peek_time(&self) -> Option<Cycle> {
        self.frontier().map(|(at, _, _)| at)
    }

    /// Removes and returns the earliest event as `(domain, time, payload)`.
    pub fn pop(&mut self) -> Option<(u32, Cycle, E)> {
        let (_, _, d) = self.frontier()?;
        self.min_memo.set(None);
        let (at, _, payload) = self.wheels[d as usize].pop_entry()?;
        self.note_popped();
        Some((d, at, payload))
    }

    /// Removes the earliest event only if it fires at or before `deadline`.
    #[inline]
    pub fn pop_until(&mut self, deadline: Cycle) -> Option<(u32, Cycle, E)> {
        let (at, _, d) = self.frontier()?;
        if at > deadline {
            return None;
        }
        self.min_memo.set(None);
        let (at, _, payload) = self.wheels[d as usize].pop_entry()?;
        self.note_popped();
        Some((d, at, payload))
    }

    /// Bookkeeping after removing one entry: decrement the count memo.
    #[inline]
    fn note_popped(&self) {
        if let Some(t) = self.total_memo.get() {
            self.total_memo.set(Some(t - 1));
        }
    }

    /// Total number of pending events across all domains.
    pub fn len(&self) -> usize {
        match self.total_memo.get() {
            Some(t) => t,
            None => {
                let t = self.wheels.iter().map(|w| w.len()).sum();
                self.total_memo.set(Some(t));
                t
            }
        }
    }

    /// Whether no events are pending in any domain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of the sparse-tail full scans across all wheels.
    pub fn full_scans(&self) -> u64 {
        self.wheels.iter().map(|w| w.full_scans()).sum()
    }

    /// The next sequence number the shared counter will assign.
    pub fn seq(&self) -> u64 {
        self.next_seq
    }

    /// Advances the shared counter to `seq` (after a parallel window
    /// assigned `seq - self.seq()` numbers through the replay merge).
    ///
    /// # Panics
    ///
    /// Panics if `seq` would move the counter backwards — reusing seqs
    /// breaks the global ordering invariant.
    pub fn set_seq(&mut self, seq: u64) {
        assert!(seq >= self.next_seq, "seq counter must not move backwards");
        self.next_seq = seq;
    }

    /// Read access to the per-domain wheels.
    pub fn wheels(&self) -> &[EventQueue<E>] {
        &self.wheels
    }

    /// Disjoint mutable access to the per-domain wheels (the parallel
    /// worker seam; see the type-level docs for the seq discipline).
    /// Drops the frontier memo — the caller may mutate any wheel.
    pub fn wheels_mut(&mut self) -> &mut [EventQueue<E>] {
        self.min_memo.set(None);
        self.total_memo.set(None);
        &mut self.wheels
    }

    /// One domain's wheel together with the shared sequence counter, for
    /// callers that schedule onto a single domain through a borrow-split
    /// (`wheel.push_with_seq(at, *seq, ev); *seq += 1;` is equivalent to
    /// [`push`](Self::push)). Drops the frontier memo.
    pub fn lane_mut(&mut self, domain: u32) -> (&mut EventQueue<E>, &mut u64) {
        self.min_memo.set(None);
        self.total_memo.set(None);
        (&mut self.wheels[domain as usize], &mut self.next_seq)
    }
}

impl<E> std::fmt::Debug for DomainWheels<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DomainWheels")
            .field("domains", &self.wheels.len())
            .field("pending", &self.len())
            .field("next_at", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(5), i)));
        }
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), 'a');
        q.push(Cycle(20), 'b');
        assert_eq!(q.pop_until(Cycle(15)), Some((Cycle(10), 'a')));
        assert_eq!(q.pop_until(Cycle(15)), None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_empty() {
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(2), "b");
        q.push(Cycle(1), "a");
        assert_eq!(q.pop(), Some((Cycle(1), "a")));
        q.push(Cycle(1), "c"); // earlier than "b" even though pushed later
        assert_eq!(q.pop(), Some((Cycle(1), "c")));
        assert_eq!(q.pop(), Some((Cycle(2), "b")));
    }

    #[test]
    fn iter_sees_all_pending() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), 'a');
        q.push(Cycle(1), 'b');
        let mut all: Vec<char> = q.iter().copied().collect();
        all.sort_unstable();
        assert_eq!(all, ['a', 'b']);
        q.pop();
        assert_eq!(q.iter().count(), 1);
    }

    #[test]
    fn debug_nonempty() {
        let mut q = EventQueue::new();
        q.push(Cycle(1), ());
        assert!(format!("{q:?}").contains("EventQueue"));
    }

    /// Events scheduled more than a full wheel revolution ahead (and a mix
    /// of near/far pushes landing in the *same* wheel slot from different
    /// revolutions) must still pop in global time order.
    #[test]
    fn far_future_events_pop_in_order() {
        let span = (SLOTS as u64) << BUCKET_SHIFT;
        let mut q = EventQueue::new();
        q.push(Cycle(7 * span + 3), 'd');
        q.push(Cycle(3), 'a'); // same slot as 'd', seven revolutions earlier
        q.push(Cycle(2 * span), 'b');
        q.push(Cycle(5 * span + 1), 'c');
        assert_eq!(q.peek_time(), Some(Cycle(3)));
        assert_eq!(q.pop(), Some((Cycle(3), 'a')));
        assert_eq!(q.pop(), Some((Cycle(2 * span), 'b')));
        assert_eq!(q.pop(), Some((Cycle(5 * span + 1), 'c')));
        assert_eq!(q.pop(), Some((Cycle(7 * span + 3), 'd')));
        assert_eq!(q.pop(), None);
    }

    /// The sparse-tail fallback is counted (and only the fallback — dense
    /// near-term traffic never touches it).
    #[test]
    fn full_scans_counts_sparse_tail_only() {
        let span = (SLOTS as u64) << BUCKET_SHIFT;
        let mut q = EventQueue::new();
        q.push(Cycle(1), 'a');
        q.push(Cycle(9 * span), 'b');
        // Dense near-term traffic: no fallback.
        assert_eq!(q.pop(), Some((Cycle(1), 'a')));
        assert_eq!(q.full_scans(), 0);
        // The survivor is nine revolutions past the cursor (a push into
        // an *empty* queue would re-aim the cursor directly, so the far
        // event must coexist with the near one): one full scan finds it.
        assert_eq!(q.pop(), Some((Cycle(9 * span), 'b')));
        assert!(q.full_scans() >= 1);
    }

    /// Pushing an earlier event after the cursor has advanced past its
    /// bucket must rewind the cursor (the memoization is a hint only).
    #[test]
    fn push_into_past_rewinds_cursor() {
        let mut q = EventQueue::new();
        q.push(Cycle(10_000), 'z');
        assert_eq!(q.peek_time(), Some(Cycle(10_000)));
        q.push(Cycle(1), 'a');
        assert_eq!(q.pop(), Some((Cycle(1), 'a')));
        assert_eq!(q.pop(), Some((Cycle(10_000), 'z')));
    }

    #[test]
    fn domain_wheels_pop_in_global_order() {
        let mut q: DomainWheels<char> = DomainWheels::new(3);
        q.push(0, Cycle(30), 'c');
        q.push(2, Cycle(10), 'a');
        q.push(1, Cycle(20), 'b');
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(Cycle(10)));
        assert_eq!(q.pop(), Some((2, Cycle(10), 'a')));
        assert_eq!(q.pop(), Some((1, Cycle(20), 'b')));
        assert_eq!(q.pop(), Some((0, Cycle(30), 'c')));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn domain_wheels_break_cross_domain_ties_by_insertion() {
        let mut q: DomainWheels<u32> = DomainWheels::new(2);
        // Same cycle, alternating domains: global push order must win.
        for i in 0..10u32 {
            q.push(i % 2, Cycle(5), i);
        }
        for i in 0..10u32 {
            assert_eq!(q.pop(), Some((i % 2, Cycle(5), i)));
        }
    }

    #[test]
    fn domain_wheels_pop_until_respects_deadline() {
        let mut q: DomainWheels<char> = DomainWheels::new(2);
        q.push(0, Cycle(10), 'a');
        q.push(1, Cycle(20), 'b');
        assert_eq!(q.pop_until(Cycle(15)), Some((0, Cycle(10), 'a')));
        assert_eq!(q.pop_until(Cycle(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn domain_wheels_seq_counter_is_shared_and_monotone() {
        let mut q: DomainWheels<()> = DomainWheels::new(2);
        assert_eq!(q.seq(), 0);
        q.push(0, Cycle(1), ());
        q.push(1, Cycle(1), ());
        assert_eq!(q.seq(), 2);
        q.set_seq(10);
        assert_eq!(q.seq(), 10);
        assert!(format!("{q:?}").contains("DomainWheels"));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn domain_wheels_seq_cannot_rewind() {
        let mut q: DomainWheels<()> = DomainWheels::new(1);
        q.push(0, Cycle(1), ());
        q.set_seq(0);
    }

    #[test]
    fn remap_seqs_reorders_ties() {
        let mut q: EventQueue<char> = EventQueue::new();
        // Provisional seqs 100/101 pushed in the "wrong" order relative to
        // the serial schedule; the remap swaps them.
        q.push_with_seq(Cycle(5), 100, 'x');
        q.push_with_seq(Cycle(5), 101, 'y');
        q.push_with_seq(Cycle(5), 7, 'z'); // pre-window seq, untouched
        q.remap_seqs(100, &[9, 8]);
        assert_eq!(q.pop(), Some((Cycle(5), 'z')));
        assert_eq!(q.pop(), Some((Cycle(5), 'y')));
        assert_eq!(q.pop(), Some((Cycle(5), 'x')));
    }

    /// The original heap-based queue, kept as the ordering oracle for the
    /// equivalence proptest below.
    mod reference {
        use super::Cycle;
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        struct Entry<E> {
            at: Cycle,
            seq: u64,
            payload: E,
        }

        impl<E> PartialEq for Entry<E> {
            fn eq(&self, other: &Self) -> bool {
                self.at == other.at && self.seq == other.seq
            }
        }

        impl<E> Eq for Entry<E> {}

        impl<E> PartialOrd for Entry<E> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        impl<E> Ord for Entry<E> {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .at
                    .cmp(&self.at)
                    .then_with(|| other.seq.cmp(&self.seq))
            }
        }

        pub struct HeapQueue<E> {
            heap: BinaryHeap<Entry<E>>,
            next_seq: u64,
        }

        impl<E> HeapQueue<E> {
            pub fn new() -> Self {
                HeapQueue {
                    heap: BinaryHeap::new(),
                    next_seq: 0,
                }
            }

            pub fn push(&mut self, at: Cycle, payload: E) {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.heap.push(Entry { at, seq, payload });
            }

            pub fn pop(&mut self) -> Option<(Cycle, E)> {
                self.heap.pop().map(|e| (e.at, e.payload))
            }

            #[inline]
            pub fn peek_time(&self) -> Option<Cycle> {
                self.heap.peek().map(|e| e.at)
            }

            pub fn len(&self) -> usize {
                self.heap.len()
            }
        }
    }

    mod prop {
        use super::reference::HeapQueue;
        use super::{Cycle, DomainWheels, EventQueue, BUCKET_SHIFT, SLOTS};
        use proptest::prelude::*;

        #[derive(Clone, Debug)]
        enum Op {
            /// Push one event at this cycle.
            Push(u64),
            /// Push a burst of events on the same cycle (FIFO tie-break
            /// stress).
            Burst(u64, u8),
            Pop,
            PopUntil(u64),
        }

        fn cycle_strategy() -> impl Strategy<Value = u64> {
            let span = (SLOTS as u64) << BUCKET_SHIFT;
            prop_oneof![
                // Dense near-term traffic, the simulator's common case.
                4 => 0u64..5_000,
                // Beyond one wheel revolution.
                2 => 0u64..20 * span,
                // Pathologically far future (sparse-tail fallback path).
                1 => 0u64..u64::MAX / 2,
            ]
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                3 => cycle_strategy().prop_map(Op::Push),
                1 => (cycle_strategy(), 2u8..6).prop_map(|(c, n)| Op::Burst(c, n)),
                3 => Just(Op::Pop),
                1 => cycle_strategy().prop_map(Op::PopUntil),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

            /// The calendar queue and the original binary heap must emit
            /// identical `(cycle, payload)` sequences — and agree on
            /// `peek_time`/`len` — under arbitrary interleaved traffic.
            #[test]
            fn calendar_matches_heap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
                let mut cal = EventQueue::new();
                let mut heap = HeapQueue::new();
                let mut payload = 0u32;
                for op in &ops {
                    match *op {
                        Op::Push(at) => {
                            cal.push(Cycle(at), payload);
                            heap.push(Cycle(at), payload);
                            payload += 1;
                        }
                        Op::Burst(at, n) => {
                            for _ in 0..n {
                                cal.push(Cycle(at), payload);
                                heap.push(Cycle(at), payload);
                                payload += 1;
                            }
                        }
                        Op::Pop => {
                            prop_assert_eq!(cal.pop(), heap.pop());
                        }
                        Op::PopUntil(deadline) => {
                            // Oracle semantics: pop only if due by deadline.
                            let expect = match heap.peek_time() {
                                Some(t) if t <= Cycle(deadline) => heap.pop(),
                                _ => None,
                            };
                            prop_assert_eq!(cal.pop_until(Cycle(deadline)), expect);
                        }
                    }
                    prop_assert_eq!(cal.peek_time(), heap.peek_time());
                    prop_assert_eq!(cal.len(), heap.len());
                }
                // Drain: the full remaining order must match exactly.
                while let Some(got) = cal.pop() {
                    prop_assert_eq!(Some(got), heap.pop());
                }
                prop_assert_eq!(heap.pop(), None);
                prop_assert!(cal.is_empty());
            }

            /// Domain-partitioned wheels must emit the same `(cycle,
            /// payload)` sequence as one wheel fed the same pushes —
            /// through same-cycle bursts landing across domains,
            /// far-future jumps, and arbitrary cross-domain
            /// interleavings. The frontier min-of-mins is the only thing
            /// standing between the partitions and the global order.
            #[test]
            fn domain_wheels_match_single_wheel(
                ops in proptest::collection::vec(op_strategy(), 1..200),
                domains in 1usize..5,
            ) {
                let mut part: DomainWheels<u32> = DomainWheels::new(domains);
                let mut single: EventQueue<u32> = EventQueue::new();
                let mut payload = 0u32;
                // Deterministic round-robin domain assignment: bursts
                // spread consecutive same-cycle events across domains.
                let dom = |p: u32| (p as usize % domains) as u32;
                for op in &ops {
                    match *op {
                        Op::Push(at) => {
                            part.push(dom(payload), Cycle(at), payload);
                            single.push(Cycle(at), payload);
                            payload += 1;
                        }
                        Op::Burst(at, n) => {
                            for _ in 0..n {
                                part.push(dom(payload), Cycle(at), payload);
                                single.push(Cycle(at), payload);
                                payload += 1;
                            }
                        }
                        Op::Pop => {
                            let got = part.pop().map(|(_, at, p)| (at, p));
                            prop_assert_eq!(got, single.pop());
                        }
                        Op::PopUntil(deadline) => {
                            let got = part.pop_until(Cycle(deadline)).map(|(_, at, p)| (at, p));
                            prop_assert_eq!(got, single.pop_until(Cycle(deadline)));
                        }
                    }
                    prop_assert_eq!(part.peek_time(), single.peek_time());
                    prop_assert_eq!(part.len(), single.len());
                }
                while let Some((d, at, p)) = part.pop() {
                    // The winning domain must be the one the payload was
                    // assigned to — the frontier may not cross wheels.
                    prop_assert_eq!(d, dom(p));
                    prop_assert_eq!(Some((at, p)), single.pop());
                }
                prop_assert_eq!(single.pop(), None);
                prop_assert!(part.is_empty());
            }
        }
    }
}
