//! A stable min-priority event queue keyed by [`Cycle`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::clock::Cycle;

/// One scheduled entry: time, tie-break sequence number, payload.
struct Entry<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want min-time first and,
        // within a time, FIFO insertion order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// Events with equal timestamps pop in insertion order, which keeps the
/// whole simulation reproducible run-to-run.
///
/// # Example
///
/// ```
/// use asap_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), 'x');
/// q.push(Cycle(3), 'y');
/// q.push(Cycle(1), 'z');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['z', 'x', 'y']);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at time `at`.
    pub fn push(&mut self, at: Cycle, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Removes the earliest event only if it fires at or before `deadline`.
    pub fn pop_until(&mut self, deadline: Cycle) -> Option<(Cycle, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Iterates over all pending payloads in unspecified order (used for
    /// state queries such as store-forwarding against in-flight traffic).
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.heap.iter().map(|e| &e.payload)
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_at", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(5), i)));
        }
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), 'a');
        q.push(Cycle(20), 'b');
        assert_eq!(q.pop_until(Cycle(15)), Some((Cycle(10), 'a')));
        assert_eq!(q.pop_until(Cycle(15)), None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_empty() {
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(2), "b");
        q.push(Cycle(1), "a");
        assert_eq!(q.pop(), Some((Cycle(1), "a")));
        q.push(Cycle(1), "c"); // earlier than "b" even though pushed later
        assert_eq!(q.pop(), Some((Cycle(1), "c")));
        assert_eq!(q.pop(), Some((Cycle(2), "b")));
    }

    #[test]
    fn iter_sees_all_pending() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), 'a');
        q.push(Cycle(1), 'b');
        let mut all: Vec<char> = q.iter().copied().collect();
        all.sort_unstable();
        assert_eq!(all, ['a', 'b']);
        q.pop();
        assert_eq!(q.iter().count(), 1);
    }

    #[test]
    fn debug_nonempty() {
        let mut q = EventQueue::new();
        q.push(Cycle(1), ());
        assert!(format!("{q:?}").contains("EventQueue"));
    }
}
