//! Per-thread virtual clocks and the min-clock scheduling rule.

use crate::clock::Cycle;

/// The local clocks of all simulated threads plus run/finish state.
///
/// The simulation driver repeatedly asks for [`next_runnable`], runs one
/// *step* of that thread (typically one transaction — begin, critical
/// section, end), and records the thread's new local clock. Picking the
/// thread with the smallest clock keeps cross-thread interactions causally
/// ordered at step granularity and makes the schedule deterministic (ties
/// break toward the lowest thread id).
///
/// [`next_runnable`]: ThreadClocks::next_runnable
///
/// # Example
///
/// ```
/// use asap_sim::{Cycle, ThreadClocks};
///
/// let mut clocks = ThreadClocks::new(2);
/// assert_eq!(clocks.next_runnable(), Some(0));
/// clocks.advance(0, Cycle(100));
/// assert_eq!(clocks.next_runnable(), Some(1)); // thread 1 is now earliest
/// clocks.finish(1);
/// assert_eq!(clocks.next_runnable(), Some(0));
/// clocks.finish(0);
/// assert_eq!(clocks.next_runnable(), None);
/// ```
#[derive(Clone, Debug)]
pub struct ThreadClocks {
    clocks: Vec<Cycle>,
    finished: Vec<bool>,
}

impl ThreadClocks {
    /// Creates clocks for `n` threads, all at time zero and runnable.
    pub fn new(n: usize) -> Self {
        ThreadClocks {
            clocks: vec![Cycle::ZERO; n],
            finished: vec![false; n],
        }
    }

    /// Number of threads.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Whether there are no threads at all.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// The current local clock of thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn clock(&self, t: usize) -> Cycle {
        self.clocks[t]
    }

    /// Sets thread `t`'s clock to `now`.
    ///
    /// # Panics
    ///
    /// Panics if the clock would move backwards — local clocks are monotone.
    pub fn advance(&mut self, t: usize, now: Cycle) {
        assert!(
            now >= self.clocks[t],
            "thread {t} clock moved backwards: {:?} -> {now:?}",
            self.clocks[t]
        );
        self.clocks[t] = now;
    }

    /// Marks thread `t` as finished: it will never be scheduled again.
    pub fn finish(&mut self, t: usize) {
        self.finished[t] = true;
    }

    /// Whether thread `t` has finished.
    pub fn is_finished(&self, t: usize) -> bool {
        self.finished[t]
    }

    /// The unfinished thread with the smallest local clock, if any.
    ///
    /// Ties break toward the lowest thread id, keeping schedules
    /// deterministic.
    pub fn next_runnable(&self) -> Option<usize> {
        self.clocks
            .iter()
            .enumerate()
            .filter(|(t, _)| !self.finished[*t])
            .min_by_key(|(t, c)| (**c, *t))
            .map(|(t, _)| t)
    }

    /// The maximum clock across all threads — the makespan of the run.
    pub fn makespan(&self) -> Cycle {
        self.clocks.iter().copied().max().unwrap_or(Cycle::ZERO)
    }

    /// Whether every thread has finished.
    pub fn all_finished(&self) -> bool {
        self.finished.iter().all(|f| *f)
    }

    /// Clears all finished flags (a new run over the same threads), keeping
    /// the clocks monotone.
    pub fn restart(&mut self) {
        self.finished.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_clock_scheduling_with_tiebreak() {
        let mut c = ThreadClocks::new(3);
        assert_eq!(c.next_runnable(), Some(0)); // tie -> lowest id
        c.advance(0, Cycle(10));
        c.advance(1, Cycle(5));
        c.advance(2, Cycle(5));
        assert_eq!(c.next_runnable(), Some(1));
    }

    #[test]
    fn finished_threads_are_skipped() {
        let mut c = ThreadClocks::new(2);
        c.finish(0);
        assert_eq!(c.next_runnable(), Some(1));
        assert!(c.is_finished(0));
        assert!(!c.all_finished());
        c.finish(1);
        assert_eq!(c.next_runnable(), None);
        assert!(c.all_finished());
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn clocks_are_monotone() {
        let mut c = ThreadClocks::new(1);
        c.advance(0, Cycle(10));
        c.advance(0, Cycle(5));
    }

    #[test]
    fn makespan_is_max_clock() {
        let mut c = ThreadClocks::new(2);
        c.advance(0, Cycle(7));
        c.advance(1, Cycle(3));
        assert_eq!(c.makespan(), Cycle(7));
    }

    #[test]
    fn empty_makespan_is_zero() {
        let c = ThreadClocks::new(0);
        assert_eq!(c.makespan(), Cycle::ZERO);
        assert!(c.is_empty());
        assert_eq!(c.next_runnable(), None);
    }

    #[test]
    fn len_reports_thread_count() {
        assert_eq!(ThreadClocks::new(5).len(), 5);
    }

    #[test]
    fn restart_clears_finished_keeps_clocks() {
        let mut c = ThreadClocks::new(2);
        c.advance(0, Cycle(9));
        c.finish(0);
        c.finish(1);
        assert!(c.all_finished());
        c.restart();
        assert!(!c.is_finished(0));
        assert_eq!(c.clock(0), Cycle(9));
    }
}
