//! System configuration mirroring Table 2 of the paper.
//!
//! The defaults reproduce the evaluated system: 18 OoO cores, a three-level
//! cache hierarchy (32KB L1 / 1MB L2 / 8MB shared LLC), two memory
//! controllers with two channels each, 128 WPQ entries per channel, DRAM +
//! battery-backed-DRAM persistent memory, and ASAP's structure sizes
//! (4-entry CL List per core, 128-entry Dependence List and LH-WPQ per
//! channel, 1KB bloom filter per channel).

/// Cache line size in bytes, fixed at 64 throughout the model.
pub const LINE_BYTES: u64 = 64;

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into whole sets.
    pub fn sets(&self) -> u64 {
        let lines = self.size_bytes / LINE_BYTES;
        assert!(
            lines > 0 && lines.is_multiple_of(self.ways as u64),
            "cache geometry must divide into whole sets"
        );
        lines / self.ways as u64
    }
}

/// Memory-system timing and sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// Number of memory controllers.
    pub controllers: u32,
    /// Channels per controller.
    pub channels_per_mc: u32,
    /// WPQ entries per channel.
    pub wpq_entries: u32,
    /// DRAM array access latency in cycles (row activation + transfer).
    pub dram_latency: u64,
    /// Per-channel service time for one 64B write, in cycles (bandwidth).
    pub dram_write_service: u64,
    /// PM latency multiplier relative to battery-backed DRAM (Fig. 10
    /// sweeps 1, 2, 4, 16).
    pub pm_latency_mult: u64,
    /// On-chip hop from LLC/cache controller to a memory controller.
    pub mc_hop_latency: u64,
    /// Cycles an accepted entry rests in the WPQ before the controller
    /// writes it out under light load (writes yield to reads; lazy
    /// draining is what gives the §5.1 dropping optimizations their
    /// window). 0 = drain eagerly.
    pub wpq_residency: u64,
    /// Occupancy at which the controller drains eagerly regardless of
    /// residency (backpressure threshold).
    pub wpq_drain_watermark: u32,
}

impl MemConfig {
    /// Total number of memory channels.
    pub fn num_channels(&self) -> u32 {
        self.controllers * self.channels_per_mc
    }

    /// PM array access latency in cycles.
    pub fn pm_latency(&self) -> u64 {
        self.dram_latency * self.pm_latency_mult
    }

    /// Per-channel service time for one 64B PM write.
    pub fn pm_write_service(&self) -> u64 {
        self.dram_write_service * self.pm_latency_mult
    }
}

/// Sizes of ASAP's hardware structures (§4.3, §6.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsapConfig {
    /// Modified Cache Line List entries per core (paper: 4).
    pub cl_list_entries: u32,
    /// CLPtr slots per CL List entry (paper: 8).
    pub clptr_slots: u32,
    /// Dependence List entries per channel (paper: 128).
    pub dep_list_entries: u32,
    /// Dep slots per Dependence List entry (paper: 4).
    pub dep_slots: u32,
    /// LH-WPQ entries per channel (paper: 128; §7.4 evaluates 16).
    pub lh_wpq_entries: u32,
    /// Bloom filter size in bits per channel (paper: 1KB = 8192 bits).
    pub bloom_bits: u32,
    /// Writes to *other* lines before a dirty line's DPO is initiated
    /// (paper: empirically 4 — §4.6.2).
    pub dpo_distance: u32,
    /// Log-record data entries per header line (paper: 7 — Fig. 5a).
    pub log_entries_per_record: u32,
    /// §7.3 NUMA extension: Dependence List entries track whether a RID
    /// exists as a dependence in a remote list, so a commit broadcast
    /// only messages the channels that hold it. Affects the
    /// `asap.broadcast.messages` statistic (commits are asynchronous, so
    /// broadcast traffic is off the critical path either way).
    pub numa_broadcast_filter: bool,
}

impl AsapConfig {
    /// CL List bytes per core (§6.2: 4 entries × [8 CLPtrs × 1B + 2-bit
    /// state + 4B RID] ≈ 49B with the paper's parameters).
    pub fn cl_list_bytes_per_core(&self) -> u64 {
        // 1B per CLPtr, 2-bit state (bit-packed across entries), 4B RID.
        let entry_bits = u64::from(self.clptr_slots) * 8 + 2 + 32;
        (u64::from(self.cl_list_entries) * entry_bits).div_ceil(8)
    }

    /// Dependence List bytes per channel (§6.2: 128 entries × [4 Deps ×
    /// 4B + 2-bit state + 4B RID]).
    pub fn dep_list_bytes_per_channel(&self) -> u64 {
        let entry_bits = u64::from(self.dep_slots) * 32 + 2 + 32;
        (u64::from(self.dep_list_entries) * entry_bits).div_ceil(8)
    }

    /// LH-WPQ bytes per channel (§6.2: 70B per entry — 6B LogHeaderAddr
    /// plus the 64B LogHeader).
    pub fn lh_wpq_bytes_per_channel(&self) -> u64 {
        u64::from(self.lh_wpq_entries) * (6 + 64)
    }

    /// Bloom filter bytes per channel (§6.2 / Table 2: 1KB).
    pub fn bloom_bytes_per_channel(&self) -> u64 {
        u64::from(self.bloom_bits).div_ceil(8)
    }
}

/// The complete simulated system configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of cores (paper: 18).
    pub cores: u32,
    /// Per-core L1 data cache.
    pub l1: CacheConfig,
    /// Per-core L2 cache.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// Memory controllers, channels, WPQ, DRAM/PM timing.
    pub mem: MemConfig,
    /// ASAP hardware structure sizes.
    pub asap: AsapConfig,
    /// Cost in cycles of one ALU/compute step charged by workloads.
    pub compute_cost: u64,
    /// Cost in cycles of retiring a store into the L1 (store buffer hit).
    pub store_cost: u64,
    /// Cost of a lock acquisition (uncontended CAS + fence).
    pub lock_cost: u64,
}

impl SystemConfig {
    /// The Table 2 configuration of the paper.
    pub fn table2() -> Self {
        SystemConfig {
            cores: 18,
            l1: CacheConfig {
                size_bytes: 32 << 10,
                ways: 8,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 1 << 20,
                ways: 16,
                latency: 14,
            },
            llc: CacheConfig {
                size_bytes: 8 << 20,
                ways: 16,
                latency: 42,
            },
            mem: MemConfig {
                controllers: 2,
                channels_per_mc: 2,
                wpq_entries: 128,
                dram_latency: 150,
                dram_write_service: 12,
                pm_latency_mult: 1,
                mc_hop_latency: 40,
                wpq_residency: 1500,
                wpq_drain_watermark: 32,
            },
            asap: AsapConfig {
                cl_list_entries: 4,
                clptr_slots: 8,
                dep_list_entries: 128,
                dep_slots: 4,
                lh_wpq_entries: 128,
                bloom_bits: 8 * 1024,
                dpo_distance: 4,
                log_entries_per_record: 7,
                numa_broadcast_filter: false,
            },
            compute_cost: 1,
            store_cost: 1,
            lock_cost: 20,
        }
    }

    /// A scaled-down configuration for fast unit tests: 4 cores, small
    /// caches (so evictions actually happen), identical timing shape.
    pub fn small() -> Self {
        let mut c = Self::table2();
        c.cores = 4;
        c.l1 = CacheConfig {
            size_bytes: 4 << 10,
            ways: 4,
            latency: 4,
        };
        c.l2 = CacheConfig {
            size_bytes: 16 << 10,
            ways: 8,
            latency: 14,
        };
        c.llc = CacheConfig {
            size_bytes: 64 << 10,
            ways: 8,
            latency: 42,
        };
        c
    }

    /// Returns this configuration with a different PM latency multiplier.
    pub fn with_pm_latency_mult(mut self, mult: u64) -> Self {
        self.mem.pm_latency_mult = mult;
        self
    }

    /// Returns this configuration with a different LH-WPQ size (§7.4).
    pub fn with_lh_wpq_entries(mut self, entries: u32) -> Self {
        self.asap.lh_wpq_entries = entries;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("cores must be nonzero".into());
        }
        if self.mem.num_channels() == 0 {
            return Err("need at least one memory channel".into());
        }
        if self.asap.clptr_slots == 0 || self.asap.dep_slots == 0 {
            return Err("ASAP slot counts must be nonzero".into());
        }
        if self.asap.log_entries_per_record == 0 || self.asap.log_entries_per_record > 7 {
            return Err("log record holds 1..=7 data entries (64B header)".into());
        }
        for (name, c) in [("l1", &self.l1), ("l2", &self.l2), ("llc", &self.llc)] {
            let lines = c.size_bytes / LINE_BYTES;
            if lines == 0 || !lines.is_multiple_of(c.ways as u64) {
                return Err(format!("{name} geometry invalid"));
            }
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::table2()
    }
}

/// Every `ASAP_`-prefixed environment variable the simulator and its
/// harnesses understand. [`warn_unknown_asap_env`] checks the process
/// environment against this registry so typos (`ASAP_TRACE_CAPP`, …) are
/// reported instead of silently ignored.
pub const KNOWN_ASAP_ENV: &[&str] = &[
    "ASAP_BENCHES",
    "ASAP_CELL_JOBS",
    "ASAP_CRASH_SWEEP",
    "ASAP_DEBUG_RECOVERY",
    "ASAP_EVENTS",
    "ASAP_HTTP",
    "ASAP_JOBS",
    "ASAP_LOG",
    "ASAP_MICRO_ITERS",
    "ASAP_OPS",
    "ASAP_PERF_GATE",
    "ASAP_PROGRESS",
    "ASAP_REPORT_OUT",
    "ASAP_RUNCACHE",
    "ASAP_RUNCACHE_CAP",
    "ASAP_RUNCACHE_DIR",
    "ASAP_SNAP_BUDGET",
    "ASAP_SWEEP_JOBS",
    "ASAP_TELEMETRY",
    "ASAP_TELEMETRY_OUT",
    "ASAP_TELEMETRY_PERIOD",
    "ASAP_THREADS",
    "ASAP_TRACE",
    "ASAP_TRACE_CAP",
    "ASAP_WALLCLOCK",
];

/// Returns the `ASAP_`-prefixed names from `names` that are not in
/// [`KNOWN_ASAP_ENV`], sorted. Pure so it is testable without touching the
/// process environment.
pub fn unknown_asap_vars<I, S>(names: I) -> Vec<String>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut out: Vec<String> = names
        .into_iter()
        .map(Into::into)
        .filter(|n| n.starts_with("ASAP_") && !KNOWN_ASAP_ENV.contains(&n.as_str()))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Scans the process environment once and warns on stderr about any
/// unrecognized `ASAP_`-prefixed variable. Harness entry points call this;
/// repeat calls are no-ops.
pub fn warn_unknown_asap_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let names = std::env::vars_os().filter_map(|(k, _)| k.into_string().ok());
        for name in unknown_asap_vars(names) {
            crate::obs_warn!(
                "warning: unrecognized environment variable {name} \
                 (known ASAP_* knobs: {})",
                KNOWN_ASAP_ENV.join(", ")
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let c = SystemConfig::table2();
        assert_eq!(c.cores, 18);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.latency, 4);
        assert_eq!(c.l2.latency, 14);
        assert_eq!(c.llc.latency, 42);
        assert_eq!(c.mem.num_channels(), 4);
        assert_eq!(c.mem.wpq_entries, 128);
        assert_eq!(c.asap.cl_list_entries, 4);
        assert_eq!(c.asap.dep_list_entries, 128);
        assert_eq!(c.asap.lh_wpq_entries, 128);
        assert_eq!(c.asap.dpo_distance, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cache_sets_computed() {
        let c = SystemConfig::table2();
        assert_eq!(c.l1.sets(), 64); // 32KB / 64B / 8 ways
        assert_eq!(c.llc.sets(), 8192); // 8MB / 64B / 16 ways
    }

    #[test]
    fn pm_latency_scales_with_multiplier() {
        let c = SystemConfig::table2().with_pm_latency_mult(16);
        assert_eq!(c.mem.pm_latency(), 150 * 16);
        assert_eq!(c.mem.pm_write_service(), 12 * 16);
    }

    #[test]
    fn with_lh_wpq_entries_overrides() {
        let c = SystemConfig::table2().with_lh_wpq_entries(16);
        assert_eq!(c.asap.lh_wpq_entries, 16);
    }

    #[test]
    fn small_config_is_valid() {
        assert!(SystemConfig::small().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let mut c = SystemConfig::table2();
        c.l1.size_bytes = 100; // not a whole number of sets
        assert!(c.validate().is_err());
        let mut c = SystemConfig::table2();
        c.cores = 0;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::table2();
        c.asap.log_entries_per_record = 9;
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_table2() {
        assert_eq!(SystemConfig::default(), SystemConfig::table2());
    }

    /// §6.2's structure-size arithmetic with the paper's parameters.
    #[test]
    fn sec62_structure_sizes_match_paper() {
        let a = SystemConfig::table2().asap;
        // "The CL List in each core has 4 entries, and its size is 49B
        // (8 CLPtrs/entry, 1B/CLPtr, 2 bits/State, 4B/RID)."
        assert_eq!(a.cl_list_bytes_per_core(), 49);
        // "The Dependence List has 128 entries per memory channel
        // (4 Dep/entry, 4B/Dep, 2 bits/State, and 4B/RID)."
        assert_eq!(a.dep_list_bytes_per_channel(), 128 * 20 + 32);
        // "The LH-WPQ has 70B/entry (6B LogHeaderAddr, 64B/LogHeader)."
        assert_eq!(a.lh_wpq_bytes_per_channel(), 128 * 70);
        // Table 2: "Bloom filter: 1KB/channel".
        assert_eq!(a.bloom_bytes_per_channel(), 1024);
    }

    #[test]
    fn env_registry_flags_typos_only() {
        let names = [
            "ASAP_TRACE",      // known
            "ASAP_TRACE_CAPP", // typo
            "ASAP_TELEMETRY",  // known
            "ASAP_TELEMETRY_PERIOD",
            "PATH",      // non-ASAP: ignored
            "ASAPX_FOO", // no underscore prefix match: ignored
            "ASAP_FRobnicate",
        ];
        let unknown = unknown_asap_vars(names);
        assert_eq!(unknown, vec!["ASAP_FRobnicate", "ASAP_TRACE_CAPP"]);
    }

    #[test]
    fn env_registry_accepts_all_known() {
        assert!(unknown_asap_vars(KNOWN_ASAP_ENV.iter().map(|s| s.to_string())).is_empty());
        // Registry stays sorted so the warning text is stable.
        let mut sorted = KNOWN_ASAP_ENV.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, KNOWN_ASAP_ENV);
    }

    #[test]
    fn env_registry_dedups() {
        let unknown = unknown_asap_vars(["ASAP_OOPS", "ASAP_OOPS"]);
        assert_eq!(unknown, vec!["ASAP_OOPS"]);
    }

    #[test]
    fn warn_unknown_asap_env_is_idempotent() {
        warn_unknown_asap_env();
        warn_unknown_asap_env();
    }
}
