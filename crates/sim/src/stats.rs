//! Simulation statistics: named counters and log-bucketed distributions.
//!
//! Every sampled quantity is kept as a [`Histogram`]: an exact [`Summary`]
//! (count / sum / sum of squares / min / max) plus HdrHistogram-style
//! log-bucketed counts giving p50/p95/p99 within a bounded relative error
//! (≤ 12.5%, from 8 sub-buckets per octave). Bucket counts merge exactly
//! across registries, so quantiles of a merged run equal quantiles of the
//! concatenated sample stream — the property tests in this module rely on it.

use std::collections::BTreeMap;
use std::fmt;

use crate::json;

/// Sub-bucket resolution: each power-of-two octave splits into `2^SUB_BITS`
/// linear sub-buckets. Values below `2^SUB_BITS` are exact.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;

/// A running summary of an observed quantity (e.g. cycles per atomic region).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples (u128: immune to overflow for any u64 stream).
    pub sum: u128,
    /// Sum of squared samples (for variance; u128 to avoid overflow).
    pub sum_sq: u128,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Summary {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += u128::from(v);
        // Saturating: two squares of ~u64::MAX exceed u128. Saturation is
        // commutative and associative, so merges stay order-independent.
        self.sum_sq = self.sum_sq.saturating_add(u128::from(v) * u128::from(v));
    }

    /// Arithmetic mean of the samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Population variance of the samples, or 0.0 when empty.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.mean();
        // E[x^2] - E[x]^2, clamped: the two terms are near-equal for tight
        // distributions and f64 rounding can drive the difference negative.
        (self.sum_sq as f64 / n - mean * mean).max(0.0)
    }

    /// Population standard deviation of the samples, or 0.0 when empty.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Folds another summary's samples into this one, exactly.
    pub fn merge_from(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq = self.sum_sq.saturating_add(other.sum_sq);
    }
}

/// A log-bucketed histogram: an exact [`Summary`] plus per-bucket counts
/// supporting quantile queries and exact merges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    summary: Summary,
    /// Bucket counts, indexed by [`bucket_index`]; grown on demand.
    counts: Vec<u64>,
}

/// Maps a sample to its bucket index. Values below `SUB` map exactly;
/// larger values share an octave split into `SUB` linear sub-buckets.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = msb - SUB_BITS;
    let sub = (v >> octave) & (SUB - 1);
    (SUB + u64::from(octave) * SUB + sub) as usize
}

/// The inclusive value range `[lo, hi]` covered by bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    let index = index as u64;
    if index < SUB {
        return (index, index);
    }
    let octave = index / SUB - 1;
    let sub = index % SUB;
    let lo = (SUB + sub) << octave;
    (lo, lo + ((1u64 << octave) - 1))
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.summary.record(v);
        let i = bucket_index(v);
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
    }

    /// The exact running summary (count, sum, min, max, variance).
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.summary.count
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded samples, or 0 when
    /// empty. Exact for values below 8; within one sub-bucket (≤ 12.5%
    /// relative error) above, linearly interpolated inside the bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.summary.count;
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest value with at least ceil(q*n) samples
        // at or below it.
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let (lo, hi) = bucket_bounds(i);
                // within is 1..=c; interpolate in u128 — top-octave widths
                // (~2^61) times a count overflow u64.
                let within = rank - cum;
                let interp = u128::from(hi - lo) * u128::from(within) / u128::from(c);
                let est = lo + interp as u64;
                // The exact extremes are known; never report outside them.
                return est.clamp(self.summary.min, self.summary.max);
            }
            cum += c;
        }
        self.summary.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> u64 {
        self.summary.max
    }

    /// Folds another histogram into this one. Bucket counts add, so the
    /// result is identical to a histogram of the concatenated sample
    /// streams — not an approximation.
    pub fn merge_from(&mut self, other: &Histogram) {
        self.summary.merge_from(&other.summary);
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
    }

    /// Renders the histogram as a lossless JSON object: the exact summary
    /// plus the raw bucket counts, so [`Histogram::from_exact_json`]
    /// reconstructs a bit-identical histogram. The 128-bit sums are
    /// emitted as decimal *strings* — they can exceed what any JSON
    /// number representation keeps exact.
    ///
    /// This is the persistence format of the run-result cache; the
    /// derived-quantile report for humans is [`Histogram::to_json`].
    pub fn to_exact_json(&self) -> String {
        let s = &self.summary;
        let mut counts = String::from("[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                counts.push(',');
            }
            counts.push_str(&c.to_string());
        }
        counts.push(']');
        format!(
            "{{\"count\":{},\"sum\":\"{}\",\"sum_sq\":\"{}\",\"min\":{},\"max\":{},\
             \"buckets\":{counts}}}",
            s.count, s.sum, s.sum_sq, s.min, s.max,
        )
    }

    /// Reconstructs a histogram from [`Histogram::to_exact_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed field.
    pub fn from_exact_json(v: &json::Value) -> Result<Histogram, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("histogram: missing {k}"));
        let int = |k: &str| {
            field(k)?
                .as_u64()
                .ok_or_else(|| format!("histogram: {k} not a u64"))
        };
        let big = |k: &str| -> Result<u128, String> {
            field(k)?
                .as_str()
                .and_then(|s| s.parse::<u128>().ok())
                .ok_or_else(|| format!("histogram: {k} not a u128 string"))
        };
        let counts = field("buckets")?
            .as_array()
            .ok_or("histogram: buckets not an array")?
            .iter()
            .map(|c| c.as_u64().ok_or("histogram: bucket count not a u64"))
            .collect::<Result<Vec<u64>, _>>()?;
        Ok(Histogram {
            summary: Summary {
                count: int("count")?,
                sum: big("sum")?,
                sum_sq: big("sum_sq")?,
                min: int("min")?,
                max: int("max")?,
            },
            counts,
        })
    }

    /// Renders the histogram as a JSON object.
    pub fn to_json(&self) -> String {
        let s = &self.summary;
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
             \"stddev\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            s.count,
            s.sum,
            s.min,
            s.max,
            json::num(s.mean()),
            json::num(s.stddev()),
            self.p50(),
            self.p95(),
            self.p99(),
        )
    }
}

/// A registry of named counters and distributions produced by a simulation
/// run.
///
/// Names are free-form dotted strings (`"pm.write.lpo"`). The registry is
/// ordered (BTreeMap) so reports are stable.
///
/// # Example
///
/// ```
/// use asap_sim::Stats;
///
/// let mut s = Stats::new();
/// s.add("pm.write", 3);
/// s.bump("pm.write");
/// assert_eq!(s.get("pm.write"), 4);
/// s.sample("region.cycles", 120);
/// assert_eq!(s.summary("region.cycles").unwrap().mean(), 120.0);
/// assert_eq!(s.histogram("region.cycles").unwrap().p50(), 120);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
    summaries: BTreeMap<String, Histogram>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Adds `v` to counter `name`, creating it at zero if absent.
    ///
    /// The existing-counter path avoids allocating: counters are bumped
    /// millions of times per run but created only once each.
    pub fn add(&mut self, name: &str, v: u64) {
        if v == 0 {
            return;
        }
        if let Some(c) = self.counters.get_mut(name) {
            *c += v;
        } else {
            self.counters.insert(name.to_owned(), v);
        }
    }

    /// Increments counter `name` by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into distribution `name` (allocation-free once the
    /// distribution exists, like [`add`](Self::add)).
    pub fn sample(&mut self, name: &str, v: u64) {
        if let Some(h) = self.summaries.get_mut(name) {
            h.record(v);
        } else {
            let mut h = Histogram::default();
            h.record(v);
            self.summaries.insert(name.to_owned(), h);
        }
    }

    /// Returns the summary of distribution `name`, if any samples were
    /// recorded.
    pub fn summary(&self, name: &str) -> Option<&Summary> {
        self.summaries.get(name).map(|h| h.summary())
    }

    /// Returns the full histogram of distribution `name`, if any samples
    /// were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.summaries.get(name)
    }

    /// Discards all samples of distribution `name` (e.g. to exclude a setup
    /// phase from steady-state measurements).
    pub fn reset_summary(&mut self, name: &str) {
        self.summaries.remove(name);
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all distribution summaries in name order.
    pub fn summaries(&self) -> impl Iterator<Item = (&str, &Summary)> {
        self.summaries
            .iter()
            .map(|(k, v)| (k.as_str(), v.summary()))
    }

    /// Iterates over all distributions in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.summaries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry into this one. Counters add; distributions
    /// merge per bucket, so merged quantiles equal quantiles of the
    /// concatenated samples.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.summaries {
            self.summaries.entry(k.clone()).or_default().merge_from(h);
        }
    }

    /// Renders the whole registry losslessly (counters verbatim, each
    /// distribution via [`Histogram::to_exact_json`]), compact and
    /// canonical: [`Stats::from_exact_json`] reconstructs an identical
    /// registry, and identical registries serialize byte-identically.
    pub fn to_exact_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json::escape(k), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.summaries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json::escape(k), h.to_exact_json()));
        }
        out.push_str("}}");
        out
    }

    /// Reconstructs a registry from [`Stats::to_exact_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed field.
    pub fn from_exact_json(v: &json::Value) -> Result<Stats, String> {
        let counters = v
            .get("counters")
            .and_then(json::Value::as_object)
            .ok_or("stats: missing counters object")?
            .iter()
            .map(|(k, c)| {
                c.as_u64()
                    .map(|c| (k.clone(), c))
                    .ok_or_else(|| format!("stats: counter {k} not a u64"))
            })
            .collect::<Result<BTreeMap<String, u64>, _>>()?;
        let summaries = v
            .get("histograms")
            .and_then(json::Value::as_object)
            .ok_or("stats: missing histograms object")?
            .iter()
            .map(|(k, h)| Histogram::from_exact_json(h).map(|h| (k.clone(), h)))
            .collect::<Result<BTreeMap<String, Histogram>, _>>()?;
        Ok(Stats {
            counters,
            summaries,
        })
    }

    /// Renders the whole registry as a JSON object:
    /// `{"counters": {...}, "histograms": {name: {count, ..., p99}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json::escape(k), v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.summaries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json::escape(k), h.to_json()));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k} = {v}")?;
        }
        for (k, h) in &self.summaries {
            let s = h.summary();
            writeln!(
                f,
                "{k}: n={} mean={:.1} min={} p50={} p95={} p99={} max={}",
                s.count,
                s.mean(),
                s.min,
                h.p50(),
                h.p95(),
                h.p99(),
                s.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.add("a", 2);
        s.add("a", 3);
        s.bump("a");
        assert_eq!(s.get("a"), 6);
        assert_eq!(s.get("missing"), 0);
    }

    #[test]
    fn add_zero_does_not_create_counter() {
        let mut s = Stats::new();
        s.add("z", 0);
        assert_eq!(s.counters().count(), 0);
    }

    #[test]
    fn summary_tracks_min_max_mean() {
        let mut s = Stats::new();
        s.sample("lat", 10);
        s.sample("lat", 30);
        s.sample("lat", 20);
        let sum = s.summary("lat").unwrap();
        assert_eq!(sum.count, 3);
        assert_eq!(sum.min, 10);
        assert_eq!(sum.max, 30);
        assert!((sum.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_mean_is_zero() {
        assert_eq!(Summary::default().mean(), 0.0);
        assert_eq!(Summary::default().variance(), 0.0);
        assert_eq!(Summary::default().stddev(), 0.0);
    }

    #[test]
    fn variance_matches_definition() {
        let mut s = Summary::default();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            s.record(v);
        }
        // Classic example: mean 5, population variance 4, stddev 2.
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.variance() - 4.0).abs() < 1e-9);
        assert!((s.stddev() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn variance_zero_for_constant_samples() {
        let mut s = Summary::default();
        for _ in 0..100 {
            s.record(1_000_000);
        }
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_combines_both_kinds() {
        let mut a = Stats::new();
        a.add("c", 1);
        a.sample("s", 5);
        let mut b = Stats::new();
        b.add("c", 2);
        b.sample("s", 15);
        b.sample("t", 1);
        a.merge(&b);
        assert_eq!(a.get("c"), 3);
        let s = a.summary("s").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 20);
        assert_eq!(a.summary("t").unwrap().count, 1);
    }

    #[test]
    fn display_lists_everything() {
        let mut s = Stats::new();
        s.add("x", 1);
        s.sample("y", 2);
        let out = s.to_string();
        assert!(out.contains("x = 1"));
        assert!(out.contains("y: n=1"));
    }

    #[test]
    fn reset_summary_discards_samples() {
        let mut s = Stats::new();
        s.sample("x", 5);
        s.reset_summary("x");
        assert!(s.summary("x").is_none());
        s.sample("x", 7);
        assert_eq!(s.summary("x").unwrap().count, 1);
    }

    #[test]
    fn counters_iterate_in_name_order() {
        let mut s = Stats::new();
        s.add("b", 1);
        s.add("a", 1);
        let names: Vec<&str> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn bucket_index_monotone_and_bounds_consistent() {
        let mut prev = None;
        for v in (0..2048u64).chain([1 << 20, (1 << 20) + 1, u64::MAX - 1, u64::MAX]) {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
            if let Some((pv, pi)) = prev {
                assert!(i >= pi, "index not monotone at {pv}->{v}");
            }
            prev = Some((v, i));
        }
    }

    #[test]
    fn small_values_have_exact_quantiles() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let est = h.quantile(q) as f64;
            assert!(
                (est - exact).abs() / exact <= 0.125,
                "q={q} est={est} exact={exact}"
            );
        }
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn histogram_merge_equals_concatenation() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut both = Histogram::default();
        for v in [3u64, 17, 400, 12_345, 9] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 1 << 30, 250, 250, 8] {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a, both);
    }

    mod merge_properties {
        use super::*;
        use proptest::prelude::*;

        fn hist_of(samples: &[u64]) -> Histogram {
            let mut h = Histogram::default();
            for &v in samples {
                h.record(v);
            }
            h
        }

        proptest! {
            // Per-bucket merge is exact: a merged histogram is
            // indistinguishable from one built over the concatenated
            // sample stream — counts, sum, max, and every quantile.
            #[test]
            fn merged_equals_histogram_of_concatenation(
                a in proptest::collection::vec(0u64..=u64::MAX, 0..200),
                b in proptest::collection::vec(0u64..1_000_000, 0..200),
            ) {
                let mut merged = hist_of(&a);
                merged.merge_from(&hist_of(&b));
                let mut concat = a.clone();
                concat.extend_from_slice(&b);
                let both = hist_of(&concat);
                prop_assert_eq!(&merged, &both);
                for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                    prop_assert_eq!(merged.quantile(q), both.quantile(q));
                }
                prop_assert_eq!(merged.count(), a.len() as u64 + b.len() as u64);
                prop_assert_eq!(merged.max(), both.max());
            }

            // Merging is commutative: order of operands never matters.
            #[test]
            fn merge_is_commutative(
                a in proptest::collection::vec(0u64..=u64::MAX, 0..120),
                b in proptest::collection::vec(0u64..=u64::MAX, 0..120),
            ) {
                let mut ab = hist_of(&a);
                ab.merge_from(&hist_of(&b));
                let mut ba = hist_of(&b);
                ba.merge_from(&hist_of(&a));
                prop_assert_eq!(&ab, &ba);
            }
        }
    }

    #[test]
    fn quantile_empty_histogram_is_zero() {
        let h = Histogram::default();
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
    }

    #[test]
    fn quantile_single_sample_is_that_sample() {
        let mut h = Histogram::default();
        h.record(42);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 42);
        }
    }

    #[test]
    fn quantile_extremes_hit_min_and_max() {
        let mut h = Histogram::default();
        for v in [3u64, 10, 17, 1000, 65_536] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.quantile(1.0), 65_536);
        // Out-of-range q clamps rather than panicking.
        assert_eq!(h.quantile(-1.0), 3);
        assert_eq!(h.quantile(2.0), 65_536);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Histogram::default();
        for v in 0..500u64 {
            h.record(v * v % 10_000 + 1);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let vals: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1], "quantiles not monotone: {vals:?}");
        }
    }

    #[test]
    fn merged_histogram_quantiles_stay_monotone_and_bounded() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in 1..200u64 {
            a.record(v);
        }
        for v in 5_000..5_300u64 {
            b.record(v);
        }
        a.merge_from(&b);
        let (p50, p95, p99) = (a.quantile(0.5), a.quantile(0.95), a.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
        assert_eq!(a.quantile(0.0), 1);
        assert_eq!(a.quantile(1.0), 5_299);
        // Median of the merged distribution lies in b's range (300 of 499
        // samples are from b), p50 rank = ceil(0.5*499) = 250 → b's bucket.
        assert!(p50 >= 200, "median should come from the merged-in data");
    }

    #[test]
    fn exact_json_round_trips_bit_identically() {
        let mut s = Stats::new();
        s.add("pm.write.total", u64::MAX);
        s.add("plain", 3);
        s.sample("region.cycles", 0);
        s.sample("region.cycles", u64::MAX);
        s.sample("region.cycles", u64::MAX); // sum_sq saturates u128
        s.sample("weird \"name\"\n", 42);
        let text = s.to_exact_json();
        let back = Stats::from_exact_json(&json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, s);
        // Canonical: re-serialization is byte-identical.
        assert_eq!(back.to_exact_json(), text);
        // The derived report of the reconstruction matches too.
        assert_eq!(back.to_json(), s.to_json());
        // Empty registry round-trips.
        let empty = Stats::new();
        let t = empty.to_exact_json();
        assert_eq!(
            Stats::from_exact_json(&json::parse(&t).unwrap()).unwrap(),
            empty
        );
    }

    #[test]
    fn exact_json_rejects_malformed() {
        let bad = [
            "{}",
            "{\"counters\":{},\"histograms\":{\"h\":{}}}",
            "{\"counters\":{\"c\":-1},\"histograms\":{}}",
            "{\"counters\":{\"c\":1.5},\"histograms\":{}}",
            "{\"counters\":{},\"histograms\":{\"h\":{\"count\":1,\"sum\":1,\
             \"sum_sq\":\"1\",\"min\":1,\"max\":1,\"buckets\":[1]}}}",
        ];
        for text in bad {
            let v = json::parse(text).expect("parses as JSON");
            assert!(Stats::from_exact_json(&v).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn stats_json_contains_quantiles() {
        let mut s = Stats::new();
        s.add("pm.write.total", 7);
        for v in 1..100u64 {
            s.sample("region.cycles", v * 10);
        }
        let j = s.to_json();
        assert!(j.contains("\"pm.write.total\": 7"));
        assert!(j.contains("\"region.cycles\""));
        assert!(j.contains("\"p50\":"));
        assert!(j.contains("\"p95\":"));
        assert!(j.contains("\"p99\":"));
    }
}
