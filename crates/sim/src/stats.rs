//! Simulation statistics: named counters and simple distributions.

use std::collections::BTreeMap;
use std::fmt;

/// A running summary of an observed quantity (e.g. cycles per atomic region).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Summary {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Arithmetic mean of the samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A registry of named counters and summaries produced by a simulation run.
///
/// Names are free-form dotted strings (`"pm.write.lpo"`). The registry is
/// ordered (BTreeMap) so reports are stable.
///
/// # Example
///
/// ```
/// use asap_sim::Stats;
///
/// let mut s = Stats::new();
/// s.add("pm.write", 3);
/// s.bump("pm.write");
/// assert_eq!(s.get("pm.write"), 4);
/// s.sample("region.cycles", 120);
/// assert_eq!(s.summary("region.cycles").unwrap().mean(), 120.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
    summaries: BTreeMap<String, Summary>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Adds `v` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, v: u64) {
        if v == 0 {
            return;
        }
        *self.counters.entry(name.to_owned()).or_insert(0) += v;
    }

    /// Increments counter `name` by one.
    pub fn bump(&mut self, name: &str) {
        *self.counters.entry(name.to_owned()).or_insert(0) += 1;
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into summary `name`.
    pub fn sample(&mut self, name: &str, v: u64) {
        self.summaries.entry(name.to_owned()).or_default().record(v);
    }

    /// Returns summary `name`, if any samples were recorded.
    pub fn summary(&self, name: &str) -> Option<&Summary> {
        self.summaries.get(name)
    }

    /// Discards all samples of summary `name` (e.g. to exclude a setup
    /// phase from steady-state measurements).
    pub fn reset_summary(&mut self, name: &str) {
        self.summaries.remove(name);
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all summaries in name order.
    pub fn summaries(&self) -> impl Iterator<Item = (&str, &Summary)> {
        self.summaries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry into this one (counters add, samples merge).
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, s) in &other.summaries {
            let dst = self.summaries.entry(k.clone()).or_default();
            if s.count > 0 {
                if dst.count == 0 {
                    *dst = *s;
                } else {
                    dst.count += s.count;
                    dst.sum += s.sum;
                    dst.min = dst.min.min(s.min);
                    dst.max = dst.max.max(s.max);
                }
            }
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k} = {v}")?;
        }
        for (k, s) in &self.summaries {
            writeln!(
                f,
                "{k}: n={} mean={:.1} min={} max={}",
                s.count,
                s.mean(),
                s.min,
                s.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.add("a", 2);
        s.add("a", 3);
        s.bump("a");
        assert_eq!(s.get("a"), 6);
        assert_eq!(s.get("missing"), 0);
    }

    #[test]
    fn add_zero_does_not_create_counter() {
        let mut s = Stats::new();
        s.add("z", 0);
        assert_eq!(s.counters().count(), 0);
    }

    #[test]
    fn summary_tracks_min_max_mean() {
        let mut s = Stats::new();
        s.sample("lat", 10);
        s.sample("lat", 30);
        s.sample("lat", 20);
        let sum = s.summary("lat").unwrap();
        assert_eq!(sum.count, 3);
        assert_eq!(sum.min, 10);
        assert_eq!(sum.max, 30);
        assert!((sum.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_mean_is_zero() {
        assert_eq!(Summary::default().mean(), 0.0);
    }

    #[test]
    fn merge_combines_both_kinds() {
        let mut a = Stats::new();
        a.add("c", 1);
        a.sample("s", 5);
        let mut b = Stats::new();
        b.add("c", 2);
        b.sample("s", 15);
        b.sample("t", 1);
        a.merge(&b);
        assert_eq!(a.get("c"), 3);
        let s = a.summary("s").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 20);
        assert_eq!(a.summary("t").unwrap().count, 1);
    }

    #[test]
    fn display_lists_everything() {
        let mut s = Stats::new();
        s.add("x", 1);
        s.sample("y", 2);
        let out = s.to_string();
        assert!(out.contains("x = 1"));
        assert!(out.contains("y: n=1"));
    }

    #[test]
    fn reset_summary_discards_samples() {
        let mut s = Stats::new();
        s.sample("x", 5);
        s.reset_summary("x");
        assert!(s.summary("x").is_none());
        s.sample("x", 7);
        assert_eq!(s.summary("x").unwrap().count, 1);
    }

    #[test]
    fn counters_iterate_in_name_order() {
        let mut s = Stats::new();
        s.add("b", 1);
        s.add("a", 1);
        let names: Vec<&str> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
