//! Virtual-time telemetry sampler with decimating, bounded buffers.
//!
//! When telemetry is enabled ([`TelemetrySettings`], env knobs
//! `ASAP_TELEMETRY` / `ASAP_TELEMETRY_PERIOD`), the machine samples a set
//! of registered gauges — WPQ occupancy per channel, hardware log fill,
//! uncommitted region count, dependency-wait depth, dirty-line count,
//! store-buffer depth — every `period` *simulated* cycles into a
//! [`TimeSeries`].
//!
//! Sampling is driven by virtual time only, so an enabled run is still
//! bit-deterministic and serial/parallel harness results stay identical.
//! Memory is bounded for any run length by *decimation*: when the buffer
//! reaches its capacity, every other sample is discarded and the sampling
//! period doubles. A run of any length therefore holds at most `cap`
//! points at a resolution matched to its duration, and the total number of
//! samples ever taken is `O(cap · log(run_cycles / period))`.

use crate::clock::Cycle;
use crate::json;

/// Default sampling period, in simulated cycles.
pub const DEFAULT_TELEMETRY_PERIOD: u64 = 1024;

/// Default point capacity of each series before decimation kicks in.
pub const DEFAULT_TELEMETRY_CAP: usize = 512;

/// Telemetry configuration carried by machine/workload configs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetrySettings {
    /// Whether the sampler records anything at all.
    pub enabled: bool,
    /// Initial sampling period in simulated cycles (doubles on decimation).
    pub period: u64,
    /// Maximum number of retained sample points.
    pub cap: usize,
}

impl TelemetrySettings {
    /// Telemetry off (the default).
    pub fn disabled() -> Self {
        TelemetrySettings {
            enabled: false,
            period: DEFAULT_TELEMETRY_PERIOD,
            cap: DEFAULT_TELEMETRY_CAP,
        }
    }

    /// Telemetry on with the default period and capacity.
    pub fn enabled() -> Self {
        TelemetrySettings {
            enabled: true,
            ..TelemetrySettings::disabled()
        }
    }

    /// Returns a copy with the given initial sampling period (min 1).
    pub fn with_period(mut self, period: u64) -> Self {
        self.period = period.max(1);
        self
    }

    /// Reads `ASAP_TELEMETRY` (any non-empty value other than `0` enables)
    /// and `ASAP_TELEMETRY_PERIOD` (cycles per sample, default
    /// [`DEFAULT_TELEMETRY_PERIOD`]).
    pub fn from_env() -> Self {
        let enabled = std::env::var("ASAP_TELEMETRY")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        let period = std::env::var("ASAP_TELEMETRY_PERIOD")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(DEFAULT_TELEMETRY_PERIOD)
            .max(1);
        TelemetrySettings {
            enabled,
            period,
            cap: DEFAULT_TELEMETRY_CAP,
        }
    }
}

impl Default for TelemetrySettings {
    fn default() -> Self {
        TelemetrySettings::disabled()
    }
}

/// A set of named gauge series sharing one timestamp column, stored in a
/// fixed-capacity decimating buffer.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    enabled: bool,
    cap: usize,
    period: u64,
    next_due: u64,
    decimations: u32,
    names: Vec<String>,
    times: Vec<u64>,
    values: Vec<Vec<u64>>,
}

impl TimeSeries {
    /// A sampler that records nothing ([`TimeSeries::due`] is always false).
    pub fn disabled() -> Self {
        TimeSeries::new(TelemetrySettings::disabled(), Vec::new())
    }

    /// Creates a sampler for the given gauge names. The first sample is due
    /// at cycle 0 so every enabled run records its initial state.
    pub fn new(settings: TelemetrySettings, names: Vec<String>) -> Self {
        let values = names.iter().map(|_| Vec::new()).collect();
        TimeSeries {
            enabled: settings.enabled,
            cap: settings.cap.max(8),
            period: settings.period.max(1),
            next_due: 0,
            decimations: 0,
            names,
            times: Vec::new(),
            values,
        }
    }

    /// Whether the sampler records at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// True when a sample should be taken at cycle `now`. One predictable
    /// branch when telemetry is disabled.
    #[inline]
    pub fn due(&self, now: Cycle) -> bool {
        self.enabled && now.0 >= self.next_due
    }

    /// Records one sample. `vals` must match the registered gauge names.
    /// The caller is expected to gate on [`TimeSeries::due`]; recording
    /// advances the next due time to the following period boundary.
    pub fn record(&mut self, now: Cycle, vals: &[u64]) {
        if !self.enabled {
            return;
        }
        assert_eq!(
            vals.len(),
            self.names.len(),
            "gauge arity mismatch in telemetry sample"
        );
        self.times.push(now.0);
        for (col, v) in self.values.iter_mut().zip(vals) {
            col.push(*v);
        }
        self.next_due = (now.0 / self.period + 1) * self.period;
        if self.times.len() >= self.cap {
            self.decimate();
        }
    }

    /// Drops every other sample and doubles the period: resolution halves,
    /// memory stays bounded for any run length.
    fn decimate(&mut self) {
        retain_even(&mut self.times);
        for col in &mut self.values {
            retain_even(col);
        }
        self.period *= 2;
        self.decimations += 1;
        if let Some(last) = self.times.last() {
            self.next_due = (last / self.period + 1) * self.period;
        }
    }

    /// Number of retained sample points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Current sampling period (initial period × 2^decimations).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// How many times the buffer halved its resolution.
    pub fn decimations(&self) -> u32 {
        self.decimations
    }

    /// Registered gauge names, in recording order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The shared timestamp column (simulated cycles).
    pub fn times(&self) -> &[u64] {
        &self.times
    }

    /// The value column for the named gauge, if registered.
    pub fn series(&self, name: &str) -> Option<&[u64]> {
        let i = self.names.iter().position(|n| n == name)?;
        Some(&self.values[i])
    }

    /// Serializes the series as one JSON object:
    /// `{"period":…,"decimations":…,"t":[…],"series":{name:[…],…}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.times.len() * 8 * (1 + self.names.len()));
        out.push_str(&format!(
            "{{\"period\":{},\"decimations\":{},\"t\":",
            self.period, self.decimations
        ));
        push_u64_array(&mut out, &self.times);
        out.push_str(",\"series\":{");
        for (i, (name, col)) in self.names.iter().zip(&self.values).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&json::escape(name));
            out.push_str("\":");
            push_u64_array(&mut out, col);
        }
        out.push_str("}}");
        out
    }
}

/// Keeps elements at even indices (0, 2, 4, …).
fn retain_even(v: &mut Vec<u64>) {
    let mut i = 0;
    v.retain(|_| {
        let keep = i % 2 == 0;
        i += 1;
        keep
    });
}

fn push_u64_array(out: &mut String, vals: &[u64]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(cap: usize, period: u64) -> TimeSeries {
        let settings = TelemetrySettings {
            enabled: true,
            period,
            cap,
        };
        TimeSeries::new(settings, vec!["a".into(), "b".into()])
    }

    #[test]
    fn disabled_records_nothing_and_is_never_due() {
        let mut ts = TimeSeries::disabled();
        assert!(!ts.due(Cycle(0)));
        ts.record(Cycle(0), &[]);
        assert!(ts.is_empty());
    }

    #[test]
    fn due_follows_period_boundaries() {
        let mut ts = series(64, 100);
        assert!(ts.due(Cycle(0)));
        ts.record(Cycle(0), &[1, 2]);
        assert!(!ts.due(Cycle(99)));
        assert!(ts.due(Cycle(100)));
        ts.record(Cycle(137), &[3, 4]);
        // Next boundary after 137 is 200, not 237.
        assert!(!ts.due(Cycle(199)));
        assert!(ts.due(Cycle(200)));
        assert_eq!(ts.times(), &[0, 137]);
        assert_eq!(ts.series("a").unwrap(), &[1, 3]);
        assert_eq!(ts.series("b").unwrap(), &[2, 4]);
        assert!(ts.series("zzz").is_none());
    }

    #[test]
    fn decimation_halves_points_and_doubles_period() {
        let mut ts = series(8, 10);
        let mut t = 0;
        while ts.decimations() == 0 {
            if ts.due(Cycle(t)) {
                ts.record(Cycle(t), &[t, 2 * t]);
            }
            t += 10;
        }
        assert_eq!(ts.period(), 20);
        assert_eq!(ts.len(), 4);
        // Survivors are the even-indexed original samples.
        assert_eq!(ts.times(), &[0, 20, 40, 60]);
        assert_eq!(ts.series("a").unwrap(), &[0, 20, 40, 60]);
    }

    #[test]
    fn memory_stays_bounded_for_long_runs() {
        let mut ts = series(16, 1);
        let mut samples_taken = 0u64;
        for t in 0..100_000u64 {
            if ts.due(Cycle(t)) {
                ts.record(Cycle(t), &[t, t]);
                samples_taken += 1;
            }
        }
        assert!(ts.len() < 16, "buffer exceeded its cap: {}", ts.len());
        // Total work is O(cap · log(run/period)), not O(run).
        assert!(
            samples_taken < 16 * 20,
            "took {samples_taken} samples for a 100k-cycle run"
        );
        assert!(ts.period() > 1024);
    }

    #[test]
    fn json_round_trips_through_parser() {
        let mut ts = series(8, 10);
        ts.record(Cycle(0), &[1, 2]);
        ts.record(Cycle(10), &[3, 4]);
        let text = ts.to_json();
        let v = json::parse(&text).expect("telemetry JSON parses");
        assert_eq!(json::parse(&v.to_json()).unwrap(), v);
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("period").unwrap().as_f64(), Some(10.0));
        let t = obj.get("t").unwrap().as_array().unwrap();
        assert_eq!(t.len(), 2);
    }
}
