//! Content-addressed fingerprints for memoizing simulation results.
//!
//! The simulator is deterministic by construction: a [`RunResult`] is a
//! pure function of the binary and the complete workload specification
//! (system configuration, benchmark parameters, observability settings).
//! That purity makes results *content-addressable* — hash the inputs,
//! key a cache with the hash, and a re-run of an unchanged cell is a
//! lookup instead of a simulation. This module provides the two halves
//! of the key:
//!
//! - **Cell fingerprint** — a canonical byte serialization of every
//!   behavior-affecting input ([`Canon`]) folded into a 128-bit hash
//!   ([`Fingerprint`]). The encoding is *canonical*: fixed field order,
//!   fixed widths, length-prefixed strings, explicit option tags — two
//!   equal specs always produce identical bytes, and (collision aside)
//!   two differing specs always produce different bytes. The workloads
//!   crate encodes its `WorkloadSpec` with this; this module supplies
//!   the encoders for the types it owns ([`SystemConfig`],
//!   [`TraceSettings`], [`TelemetrySettings`]).
//! - **Build fingerprint** — a hash of the running executable's bytes
//!   ([`build_fingerprint`]). Any recompile — new code, new flags, new
//!   toolchain — changes the executable and thereby invalidates every
//!   persistent cache entry automatically. There is no schema version
//!   to bump and therefore none to forget.
//!
//! The hash is the same dependency-free multiply-xor fold the simulator
//! uses for its address-keyed maps (`asap_pmem::hash`), widened to 128
//! bits by running two independently-parameterized 64-bit folds over
//! the same bytes. It is seed-free and stable across processes — a
//! fingerprint computed today matches one computed tomorrow by the same
//! binary, which is exactly what a persistent cache requires. It is not
//! cryptographic; the threat model is accidental collision between a
//! few thousand cache cells, not an adversary.
//!
//! [`RunResult`]: ../../asap_workloads/driver/struct.RunResult.html
//! [`SystemConfig`]: crate::SystemConfig

use std::fmt;
use std::io::Read;
use std::sync::OnceLock;

use crate::config::{AsapConfig, CacheConfig, MemConfig, SystemConfig};
use crate::timeseries::TelemetrySettings;
use crate::trace::TraceSettings;

/// Fibonacci multiplier of the simulator's address hasher (lane 0).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;
/// Second independent odd multiplier (lane 1): the 64-bit golden-ratio
/// constant of splitmix64's increment, unrelated to [`FIB`]'s usage here.
const FIB2: u64 = 0xBF58_476D_1CE4_E5B9;
/// Distinct lane-1 seed so the two lanes differ even on empty input.
const LANE1_SEED: u64 = 0x94D0_49BB_1331_11EB;

/// A 128-bit content fingerprint: two independent 64-bit multiply-xor
/// lanes over the same canonical byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub [u64; 2]);

impl Fingerprint {
    /// The fingerprint as 32 lowercase hex characters (filename-safe).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// A canonical, append-only byte encoder. Writers are fixed-width
/// little-endian (or length-prefixed, for strings), so an encoding is a
/// prefix-free function of the written value sequence: no two distinct
/// value sequences share a byte stream.
#[derive(Clone, Debug, Default)]
pub struct Canon {
    buf: Vec<u8>,
}

impl Canon {
    /// An empty encoder.
    pub fn new() -> Self {
        Canon::default()
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32` (widened: one integer width on the wire keeps the
    /// encoding trivially unambiguous).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.u64(u64::from(v))
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.buf.push(u8::from(v));
        self
    }

    /// Appends an `Option<u64>` with an explicit presence tag, so
    /// `None` and `Some(0)` encode differently.
    pub fn opt_u64(&mut self, v: Option<u64>) -> &mut Self {
        match v {
            None => self.bool(false),
            Some(v) => self.bool(true).u64(v),
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// The canonical bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Hashes the canonical bytes into a [`Fingerprint`].
    pub fn fingerprint(&self) -> Fingerprint {
        hash_bytes(&self.buf)
    }
}

/// One multiply-xor lane over 8-byte words (zero-padded tail), finished
/// with an avalanche fold. The length is folded in first so streams that
/// differ only by trailing zero bytes hash differently.
fn lane(bytes: &[u8], seed: u64, mult: u64) -> u64 {
    let mut h = (seed ^ bytes.len() as u64).wrapping_mul(mult);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h = (h ^ u64::from_le_bytes(w)).wrapping_mul(mult);
        h ^= h >> 29;
    }
    h ^ (h >> 32)
}

/// Hashes a byte slice into a [`Fingerprint`] (two independent lanes).
pub fn hash_bytes(bytes: &[u8]) -> Fingerprint {
    Fingerprint([lane(bytes, 0, FIB), lane(bytes, LANE1_SEED, FIB2)])
}

/// Canonically encodes a [`CacheConfig`].
pub fn canon_cache_config(c: &mut Canon, cfg: &CacheConfig) {
    c.u64(cfg.size_bytes).u32(cfg.ways).u64(cfg.latency);
}

/// Canonically encodes a [`MemConfig`].
pub fn canon_mem_config(c: &mut Canon, m: &MemConfig) {
    c.u32(m.controllers)
        .u32(m.channels_per_mc)
        .u32(m.wpq_entries)
        .u64(m.dram_latency)
        .u64(m.dram_write_service)
        .u64(m.pm_latency_mult)
        .u64(m.mc_hop_latency)
        .u64(m.wpq_residency)
        .u32(m.wpq_drain_watermark);
}

/// Canonically encodes an [`AsapConfig`].
pub fn canon_asap_config(c: &mut Canon, a: &AsapConfig) {
    c.u32(a.cl_list_entries)
        .u32(a.clptr_slots)
        .u32(a.dep_list_entries)
        .u32(a.dep_slots)
        .u32(a.lh_wpq_entries)
        .u32(a.bloom_bits)
        .u32(a.dpo_distance)
        .u32(a.log_entries_per_record)
        .bool(a.numa_broadcast_filter);
}

/// Canonically encodes a full [`SystemConfig`]. Every field participates:
/// omitting one here would alias two different simulated systems onto one
/// cache cell, which is why the workloads crate's fingerprint tests
/// mutate each field in turn and assert distinctness.
pub fn canon_system_config(c: &mut Canon, s: &SystemConfig) {
    c.u32(s.cores);
    canon_cache_config(c, &s.l1);
    canon_cache_config(c, &s.l2);
    canon_cache_config(c, &s.llc);
    canon_mem_config(c, &s.mem);
    canon_asap_config(c, &s.asap);
    c.u64(s.compute_cost).u64(s.store_cost).u64(s.lock_cost);
}

/// Canonically encodes [`TraceSettings`]. Tracing changes no simulated
/// numbers, but it changes what a run *exports* (`chrome_trace`,
/// `trace_dump` on the result) — a cached result must carry the same
/// artifacts a fresh run would.
pub fn canon_trace_settings(c: &mut Canon, t: &TraceSettings) {
    c.bool(t.enabled).u64(t.cap as u64);
}

/// Canonically encodes [`TelemetrySettings`] (same rationale as
/// [`canon_trace_settings`]: the sampler changes the exported artifacts).
pub fn canon_telemetry_settings(c: &mut Canon, t: &TelemetrySettings) {
    c.bool(t.enabled).u64(t.period).u64(t.cap as u64);
}

/// The build fingerprint: a hash of the running executable's bytes,
/// computed once per process. Returns `None` when the executable cannot
/// be located or read (callers should then disable persistent caching
/// rather than risk serving results from a different binary).
pub fn build_fingerprint() -> Option<Fingerprint> {
    static BUILD: OnceLock<Option<Fingerprint>> = OnceLock::new();
    *BUILD.get_or_init(|| {
        let exe = std::env::current_exe().ok()?;
        let mut f = std::fs::File::open(exe).ok()?;
        // Stream in 1MB chunks: executables are tens of MB and this runs
        // once; two rolling lanes keep memory flat.
        let mut l0 = FIB;
        let mut l1 = LANE1_SEED;
        let mut total = 0u64;
        let mut buf = vec![0u8; 1 << 20];
        loop {
            let n = f.read(&mut buf).ok()?;
            if n == 0 {
                break;
            }
            total += n as u64;
            let fp = hash_bytes(&buf[..n]);
            l0 = (l0 ^ fp.0[0]).wrapping_mul(FIB);
            l1 = (l1 ^ fp.0[1]).wrapping_mul(FIB2);
        }
        l0 ^= total;
        l1 ^= total.rotate_left(32);
        Some(Fingerprint([l0 ^ (l0 >> 32), l1 ^ (l1 >> 32)]))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_is_32_lowercase_chars() {
        let fp = hash_bytes(b"hello");
        let hex = fp.hex();
        assert_eq!(hex.len(), 32);
        assert!(hex
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        assert_eq!(fp.to_string(), hex);
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        // Trailing zero bytes must matter (length is folded in).
        assert_ne!(hash_bytes(b"x"), hash_bytes(b"x\0"));
        assert_ne!(hash_bytes(b"x\0"), hash_bytes(b"x\0\0"));
        // The two lanes are independently parameterized.
        let fp = hash_bytes(b"lanes");
        assert_ne!(fp.0[0], fp.0[1]);
    }

    #[test]
    fn canon_writers_are_prefix_free() {
        // Same total content, different write boundaries => different
        // bytes (strings are length-prefixed).
        let mut a = Canon::new();
        a.str("ab").str("c");
        let mut b = Canon::new();
        b.str("a").str("bc");
        assert_ne!(a.bytes(), b.bytes());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Option tags distinguish None from Some(0).
        let mut none = Canon::new();
        none.opt_u64(None);
        let mut some = Canon::new();
        some.opt_u64(Some(0));
        assert_ne!(none.bytes(), some.bytes());
    }

    #[test]
    fn system_config_fingerprint_sees_every_field() {
        let base = SystemConfig::table2();
        let fp = |s: &SystemConfig| {
            let mut c = Canon::new();
            canon_system_config(&mut c, s);
            c.fingerprint()
        };
        let base_fp = fp(&base);
        assert_eq!(base_fp, fp(&base), "fingerprint must be deterministic");
        let mut mutants: Vec<SystemConfig> = Vec::new();
        macro_rules! mutant {
            ($field:ident . $($rest:tt)*) => {{
                let mut m = base;
                m.$field.$($rest)*;
                mutants.push(m);
            }};
            ($field:ident = $v:expr) => {{
                let mut m = base;
                m.$field = $v;
                mutants.push(m);
            }};
        }
        mutant!(cores = 17);
        mutant!(l1.size_bytes = 64 << 10);
        mutant!(l1.ways = 4);
        mutant!(l1.latency = 5);
        mutant!(l2.latency = 15);
        mutant!(llc.size_bytes = 4 << 20);
        mutant!(mem.controllers = 1);
        mutant!(mem.channels_per_mc = 4);
        mutant!(mem.wpq_entries = 64);
        mutant!(mem.dram_latency = 151);
        mutant!(mem.dram_write_service = 13);
        mutant!(mem.pm_latency_mult = 4);
        mutant!(mem.mc_hop_latency = 41);
        mutant!(mem.wpq_residency = 0);
        mutant!(mem.wpq_drain_watermark = 16);
        mutant!(asap.cl_list_entries = 8);
        mutant!(asap.clptr_slots = 4);
        mutant!(asap.dep_list_entries = 64);
        mutant!(asap.dep_slots = 2);
        mutant!(asap.lh_wpq_entries = 16);
        mutant!(asap.bloom_bits = 4096);
        mutant!(asap.dpo_distance = 2);
        mutant!(asap.log_entries_per_record = 3);
        mutant!(asap.numa_broadcast_filter = true);
        mutant!(compute_cost = 2);
        mutant!(store_cost = 2);
        mutant!(lock_cost = 21);
        for m in &mutants {
            assert_ne!(fp(m), base_fp, "mutation not seen: {m:?}");
        }
        // All mutants are pairwise distinct too (no aliasing between
        // different fields holding swapped values).
        let mut fps: Vec<Fingerprint> = mutants.iter().map(fp).collect();
        fps.push(base_fp);
        fps.sort();
        let before = fps.len();
        fps.dedup();
        assert_eq!(fps.len(), before, "fingerprint collision among mutants");
    }

    #[test]
    fn settings_fingerprints_differ() {
        let fp_trace = |t: &TraceSettings| {
            let mut c = Canon::new();
            canon_trace_settings(&mut c, t);
            c.fingerprint()
        };
        assert_ne!(
            fp_trace(&TraceSettings::disabled()),
            fp_trace(&TraceSettings::enabled())
        );
        assert_ne!(
            fp_trace(&TraceSettings::with_cap(16)),
            fp_trace(&TraceSettings::with_cap(17))
        );
        let fp_tel = |t: &TelemetrySettings| {
            let mut c = Canon::new();
            canon_telemetry_settings(&mut c, t);
            c.fingerprint()
        };
        assert_ne!(
            fp_tel(&TelemetrySettings::disabled()),
            fp_tel(&TelemetrySettings::enabled())
        );
        assert_ne!(
            fp_tel(&TelemetrySettings::enabled()),
            fp_tel(&TelemetrySettings::enabled().with_period(64))
        );
    }

    #[test]
    fn build_fingerprint_is_cached_and_stable() {
        let a = build_fingerprint();
        let b = build_fingerprint();
        assert_eq!(a, b);
        // In a test binary the executable is always readable.
        assert!(a.is_some());
    }
}
