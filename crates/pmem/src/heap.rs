//! A deterministic first-fit allocator over a physical address range.
//!
//! Used for the persistent heap (`asap_malloc`/`asap_free`) and for
//! carving out per-thread log buffers. Allocations are cache-line aligned
//! so that a region's log entries and ownership tracking operate on whole
//! lines, matching the hardware's line-granular LPOs/DPOs.

use std::collections::BTreeMap;
use std::fmt;

use crate::addr::{PmAddr, LINE_BYTES};

/// Error returned when an allocation cannot be satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// No free range large enough.
    OutOfMemory {
        /// Bytes requested (after line-size round-up).
        requested: u64,
    },
    /// `free` called on an address that is not an allocation start.
    NotAllocated {
        /// The offending address.
        addr: PmAddr,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "out of simulated memory allocating {requested} bytes")
            }
            AllocError::NotAllocated { addr } => {
                write!(f, "free of non-allocated address {addr}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// First-fit allocator with coalescing free, over `[base, base + size)`.
///
/// Deterministic: the same allocation/free sequence always produces the same
/// addresses, which keeps whole simulations reproducible.
///
/// # Example
///
/// ```
/// use asap_pmem::{PmAddr, RangeAllocator, PM_BASE};
///
/// # fn main() -> Result<(), asap_pmem::AllocError> {
/// let mut heap = RangeAllocator::new(PmAddr(PM_BASE), 1 << 20);
/// let a = heap.alloc(100)?;
/// let b = heap.alloc(100)?;
/// assert_ne!(a, b);
/// heap.free(a)?;
/// let c = heap.alloc(100)?; // first fit reuses the freed range
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct RangeAllocator {
    base: PmAddr,
    size: u64,
    /// Free ranges: start -> length. Non-adjacent (always coalesced).
    free: BTreeMap<u64, u64>,
    /// Live allocations: start -> length.
    live: BTreeMap<u64, u64>,
}

impl RangeAllocator {
    /// Creates an allocator over `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not cache-line aligned or `size` is zero.
    pub fn new(base: PmAddr, size: u64) -> Self {
        assert!(
            base.0.is_multiple_of(LINE_BYTES),
            "allocator base must be line-aligned"
        );
        assert!(size > 0, "allocator size must be nonzero");
        let mut free = BTreeMap::new();
        free.insert(base.0, size);
        RangeAllocator {
            base,
            size,
            free,
            live: BTreeMap::new(),
        }
    }

    /// Allocates `len` bytes (rounded up to whole cache lines).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfMemory`] if no free range fits.
    pub fn alloc(&mut self, len: u64) -> Result<PmAddr, AllocError> {
        let len = round_up_lines(len.max(1));
        let found = self
            .free
            .iter()
            .find(|(_, &flen)| flen >= len)
            .map(|(&start, &flen)| (start, flen));
        let (start, flen) = found.ok_or(AllocError::OutOfMemory { requested: len })?;
        self.free.remove(&start);
        if flen > len {
            self.free.insert(start + len, flen - len);
        }
        self.live.insert(start, len);
        Ok(PmAddr(start))
    }

    /// Frees a previous allocation, coalescing with neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NotAllocated`] if `addr` was not returned by
    /// [`alloc`](Self::alloc) (or was already freed).
    pub fn free(&mut self, addr: PmAddr) -> Result<(), AllocError> {
        let len = self
            .live
            .remove(&addr.0)
            .ok_or(AllocError::NotAllocated { addr })?;
        let mut start = addr.0;
        let mut size = len;
        // Coalesce with the predecessor if adjacent.
        if let Some((&pstart, &plen)) = self.free.range(..start).next_back() {
            if pstart + plen == start {
                self.free.remove(&pstart);
                start = pstart;
                size += plen;
            }
        }
        // Coalesce with the successor if adjacent.
        if let Some(&slen) = self.free.get(&(addr.0 + len)) {
            self.free.remove(&(addr.0 + len));
            size += slen;
        }
        self.free.insert(start, size);
        Ok(())
    }

    /// The size in bytes of the live allocation starting at `addr`.
    pub fn allocation_len(&self, addr: PmAddr) -> Option<u64> {
        self.live.get(&addr.0).copied()
    }

    /// Total bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.live.values().sum()
    }

    /// Total bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free.values().sum()
    }

    /// The managed range's base address.
    pub fn base(&self) -> PmAddr {
        self.base
    }

    /// The managed range's total size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Iterates over live allocations as `(start, len)` in address order.
    pub fn live_allocations(&self) -> impl Iterator<Item = (PmAddr, u64)> + '_ {
        self.live.iter().map(|(&a, &l)| (PmAddr(a), l))
    }
}

impl fmt::Debug for RangeAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RangeAllocator")
            .field("base", &self.base)
            .field("size", &self.size)
            .field("live", &self.live.len())
            .field("free_ranges", &self.free.len())
            .finish()
    }
}

fn round_up_lines(len: u64) -> u64 {
    len.div_ceil(LINE_BYTES) * LINE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn heap() -> RangeAllocator {
        RangeAllocator::new(PmAddr(0), 64 * 1024)
    }

    #[test]
    fn allocations_are_line_aligned_and_disjoint() {
        let mut h = heap();
        let a = h.alloc(1).unwrap();
        let b = h.alloc(65).unwrap();
        assert_eq!(a.0 % 64, 0);
        assert_eq!(b.0 % 64, 0);
        assert_eq!(h.allocation_len(a), Some(64));
        assert_eq!(h.allocation_len(b), Some(128));
        assert!(b.0 >= a.0 + 64);
    }

    #[test]
    fn accounting_adds_up() {
        let mut h = heap();
        let total = h.free_bytes();
        let a = h.alloc(100).unwrap();
        assert_eq!(h.live_bytes() + h.free_bytes(), total);
        h.free(a).unwrap();
        assert_eq!(h.free_bytes(), total);
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    fn free_coalesces_both_sides() {
        let mut h = heap();
        let a = h.alloc(64).unwrap();
        let b = h.alloc(64).unwrap();
        let c = h.alloc(64).unwrap();
        let _d = h.alloc(64).unwrap(); // guard so c has a live successor
        h.free(a).unwrap();
        h.free(c).unwrap();
        h.free(b).unwrap(); // merges with both neighbours
                            // After coalescing we can allocate the whole 3-line span again.
        let big = h.alloc(192).unwrap();
        assert_eq!(big, a);
    }

    #[test]
    fn oom_is_reported() {
        let mut h = RangeAllocator::new(PmAddr(0), 128);
        h.alloc(128).unwrap();
        let err = h.alloc(1).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { requested: 64 }));
        assert!(err.to_string().contains("out of simulated memory"));
    }

    #[test]
    fn double_free_is_an_error() {
        let mut h = heap();
        let a = h.alloc(64).unwrap();
        h.free(a).unwrap();
        assert!(matches!(h.free(a), Err(AllocError::NotAllocated { .. })));
    }

    #[test]
    fn free_of_interior_address_is_an_error() {
        let mut h = heap();
        let a = h.alloc(128).unwrap();
        assert!(h.free(PmAddr(a.0 + 64)).is_err());
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn misaligned_base_panics() {
        let _ = RangeAllocator::new(PmAddr(3), 1024);
    }

    #[test]
    fn live_allocations_iterates_in_order() {
        let mut h = heap();
        let a = h.alloc(64).unwrap();
        let b = h.alloc(64).unwrap();
        let v: Vec<_> = h.live_allocations().collect();
        assert_eq!(v, vec![(a, 64), (b, 64)]);
    }

    #[test]
    fn zero_len_alloc_rounds_to_one_line() {
        let mut h = heap();
        let a = h.alloc(0).unwrap();
        assert_eq!(h.allocation_len(a), Some(64));
    }

    proptest! {
        #[test]
        fn prop_alloc_free_never_leaks(ops in proptest::collection::vec((any::<bool>(), 1u64..512), 1..64)) {
            let mut h = RangeAllocator::new(PmAddr(0), 1 << 20);
            let total = h.free_bytes();
            let mut live = Vec::new();
            for (do_alloc, len) in ops {
                if do_alloc || live.is_empty() {
                    if let Ok(a) = h.alloc(len) {
                        live.push(a);
                    }
                } else {
                    let a = live.pop().unwrap();
                    h.free(a).unwrap();
                }
                prop_assert_eq!(h.live_bytes() + h.free_bytes(), total);
            }
            for a in live {
                h.free(a).unwrap();
            }
            prop_assert_eq!(h.free_bytes(), total);
        }

        #[test]
        fn prop_live_allocations_disjoint(lens in proptest::collection::vec(1u64..300, 1..32)) {
            let mut h = RangeAllocator::new(PmAddr(0), 1 << 20);
            for len in lens {
                h.alloc(len).unwrap();
            }
            let allocs: Vec<_> = h.live_allocations().collect();
            for w in allocs.windows(2) {
                prop_assert!(w[0].0 .0 + w[0].1 <= w[1].0 .0);
            }
        }
    }
}
