//! The sparse, byte-accurate contents of main memory.

use std::cell::Cell;
use std::fmt;

use crate::addr::{LineAddr, PmAddr, LINE_BYTES, PAGE_BYTES};

/// One 4KB page of memory plus its page-table persistent bit.
struct Page {
    bytes: Box<[u8; PAGE_BYTES as usize]>,
    persistent: bool,
}

impl Page {
    fn zeroed() -> Self {
        Page {
            bytes: Box::new([0u8; PAGE_BYTES as usize]),
            persistent: false,
        }
    }
}

/// Sentinel key for an empty index slot. Page numbers are byte addresses
/// divided by `PAGE_BYTES`, so `u64::MAX` can never be a real page number.
const EMPTY: u64 = u64::MAX;

/// An open-addressed (linear-probe) map from page number to the page's slot
/// in the backing `Vec<Page>`. Supports insert and lookup only — the image
/// never frees individual pages (only [`MemoryImage::reset`] clears it),
/// so no tombstones are needed.
struct PageIndex {
    keys: Vec<u64>,
    slots: Vec<u32>,
    /// Capacity minus one; capacity is always a power of two.
    mask: usize,
    len: usize,
}

impl PageIndex {
    fn new() -> Self {
        const CAP: usize = 64;
        PageIndex {
            keys: vec![EMPTY; CAP],
            slots: vec![0; CAP],
            mask: CAP - 1,
            len: 0,
        }
    }

    /// Fibonacci hashing: multiplicative spread of the page number across
    /// the table, using the high bits (the low bits of sequential page
    /// numbers are dense and would cluster under masking alone).
    #[inline]
    fn bucket(&self, page_no: u64) -> usize {
        let h = page_no.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    /// Lookup plus the number of probe steps it took (1 = direct hit in
    /// the home bucket) — the probe count feeds the image's access
    /// statistics without a second pass.
    #[inline]
    fn get_probed(&self, page_no: u64) -> (Option<u32>, u64) {
        let mut i = self.bucket(page_no);
        let mut probes = 1u64;
        loop {
            let k = self.keys[i];
            if k == page_no {
                return (Some(self.slots[i]), probes);
            }
            if k == EMPTY {
                return (None, probes);
            }
            probes += 1;
            i = (i + 1) & self.mask;
        }
    }

    fn insert(&mut self, page_no: u64, slot: u32) {
        // Grow at 3/4 load to keep probe chains short.
        if (self.len + 1) * 4 > (self.mask + 1) * 3 {
            self.grow();
        }
        let mut i = self.bucket(page_no);
        while self.keys[i] != EMPTY {
            debug_assert_ne!(self.keys[i], page_no, "page inserted twice");
            i = (i + 1) & self.mask;
        }
        self.keys[i] = page_no;
        self.slots[i] = slot;
        self.len += 1;
    }

    fn grow(&mut self) {
        let new_cap = (self.mask + 1) * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_slots = std::mem::replace(&mut self.slots, vec![0; new_cap]);
        self.mask = new_cap - 1;
        for (k, s) in old_keys.into_iter().zip(old_slots) {
            if k == EMPTY {
                continue;
            }
            let mut i = self.bucket(k);
            while self.keys[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.keys[i] = k;
            self.slots[i] = s;
        }
    }

    fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }
}

/// Byte-accurate main-memory contents with per-page persistent bits.
///
/// In the machine model this image holds what is *in the memory modules*:
/// for PM pages, that is the durable state (plus whatever the WPQ flushes on
/// a crash — see `asap-mem`); caches hold newer dirty copies on top.
///
/// Unwritten memory reads as zero, like freshly mapped pages.
///
/// Internally pages live in a flat `Vec` reached through an open-addressed
/// page index plus a one-entry last-page cache — almost every access in a
/// simulation run touches the same page as its predecessor, so the common
/// case is one compare instead of a map walk.
///
/// # Example
///
/// ```
/// use asap_pmem::{MemoryImage, PmAddr};
///
/// let mut m = MemoryImage::new();
/// m.write(PmAddr(10), &[1, 2, 3]);
/// let mut buf = [0u8; 3];
/// m.read(PmAddr(10), &mut buf);
/// assert_eq!(buf, [1, 2, 3]);
/// assert_eq!(m.read_u64(PmAddr(4096)), 0); // untouched memory is zero
/// ```
pub struct MemoryImage {
    pages: Vec<Page>,
    index: PageIndex,
    /// Last page looked up, as `(page_no, slot)` — hit on nearly every
    /// sequential access. Invalidated by [`reset`](Self::reset).
    last: Cell<(u64, u32)>,
    /// Hot-path access statistics (plain `Cell`s, not atomics — each
    /// image belongs to one simulation). Never printed by figures;
    /// flushed to the host metrics registry after a run.
    stats: Cell<ImageStats>,
}

/// Access statistics of a [`MemoryImage`]: how hard the page lookup
/// machinery worked. `last_page_hits / lookups` is the one-entry-cache
/// hit rate; `index_probes` counts open-addressing steps (1 per
/// fall-through lookup when the table is collision-free).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImageStats {
    /// Page lookups (one per page touched by each read/write/persist-bit
    /// query).
    pub lookups: u64,
    /// Lookups answered by the one-entry last-page cache.
    pub last_page_hits: u64,
    /// Linear-probe steps taken by lookups that reached the open-addressed
    /// page index.
    pub index_probes: u64,
}

impl MemoryImage {
    /// Creates an empty (all-zero) image.
    pub fn new() -> Self {
        MemoryImage {
            pages: Vec::new(),
            index: PageIndex::new(),
            last: Cell::new((EMPTY, 0)),
            stats: Cell::new(ImageStats::default()),
        }
    }

    /// Slot of `page_no` if the page has been touched, via the last-page
    /// cache first.
    #[inline]
    fn lookup(&self, page_no: u64) -> Option<u32> {
        let mut st = self.stats.get();
        st.lookups += 1;
        let (cached_no, cached_slot) = self.last.get();
        if cached_no == page_no {
            st.last_page_hits += 1;
            self.stats.set(st);
            return Some(cached_slot);
        }
        let (slot, probes) = self.index.get_probed(page_no);
        st.index_probes += probes;
        self.stats.set(st);
        let slot = slot?;
        self.last.set((page_no, slot));
        Some(slot)
    }

    fn page_mut(&mut self, page_no: u64) -> &mut Page {
        let slot = match self.lookup(page_no) {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.pages.len()).expect("page count fits u32");
                self.pages.push(Page::zeroed());
                self.index.insert(page_no, s);
                self.last.set((page_no, s));
                s
            }
        };
        &mut self.pages[slot as usize]
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: PmAddr, buf: &mut [u8]) {
        let mut pos = addr.0;
        let mut done = 0usize;
        while done < buf.len() {
            let page_no = pos / PAGE_BYTES;
            let off = (pos % PAGE_BYTES) as usize;
            let n = (buf.len() - done).min(PAGE_BYTES as usize - off);
            match self.lookup(page_no) {
                Some(slot) => {
                    let p = &self.pages[slot as usize];
                    buf[done..done + n].copy_from_slice(&p.bytes[off..off + n]);
                }
                None => buf[done..done + n].fill(0),
            }
            done += n;
            pos += n as u64;
        }
    }

    /// Writes `data` starting at `addr`.
    pub fn write(&mut self, addr: PmAddr, data: &[u8]) {
        let mut pos = addr.0;
        let mut done = 0usize;
        while done < data.len() {
            let page_no = pos / PAGE_BYTES;
            let off = (pos % PAGE_BYTES) as usize;
            let n = (data.len() - done).min(PAGE_BYTES as usize - off);
            self.page_mut(page_no).bytes[off..off + n].copy_from_slice(&data[done..done + n]);
            done += n;
            pos += n as u64;
        }
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: PmAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: PmAddr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads one whole cache line.
    pub fn read_line(&self, line: LineAddr) -> [u8; LINE_BYTES as usize] {
        let mut buf = [0u8; LINE_BYTES as usize];
        self.read(line.base(), &mut buf);
        buf
    }

    /// Writes one whole cache line.
    pub fn write_line(&mut self, line: LineAddr, data: &[u8; LINE_BYTES as usize]) {
        self.write(line.base(), data);
    }

    /// Sets the page-table persistent bit for every page overlapping
    /// `[addr, addr + len)` — what `asap_malloc` does (§4.6).
    pub fn mark_persistent(&mut self, addr: PmAddr, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr.page();
        let last = (addr.0 + len - 1) / PAGE_BYTES;
        for p in first..=last {
            self.page_mut(p).persistent = true;
        }
    }

    /// Whether the page containing `addr` has its persistent bit set.
    pub fn is_persistent(&self, addr: PmAddr) -> bool {
        self.lookup(addr.page())
            .is_some_and(|slot| self.pages[slot as usize].persistent)
    }

    /// Whether the page containing `line` has its persistent bit set.
    pub fn line_is_persistent(&self, line: LineAddr) -> bool {
        self.is_persistent(line.base())
    }

    /// Number of pages that have ever been touched.
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }

    /// Cumulative access statistics for this image (survive
    /// [`reset`](Self::reset), like the image's identity does).
    pub fn access_stats(&self) -> ImageStats {
        self.stats.get()
    }

    /// Forgets every page — contents and persistent bits — returning the
    /// image to the all-zero state, and invalidates the last-page cache.
    pub fn reset(&mut self) {
        self.pages.clear();
        self.index.clear();
        self.last.set((EMPTY, 0));
    }
}

impl Default for MemoryImage {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for MemoryImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryImage")
            .field("touched_pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn untouched_memory_is_zero() {
        let m = MemoryImage::new();
        let mut buf = [0xffu8; 16];
        m.read(PmAddr(123456), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.touched_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = MemoryImage::new();
        m.write(PmAddr(100), b"hello world");
        let mut buf = [0u8; 11];
        m.read(PmAddr(100), &mut buf);
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn access_stats_track_last_page_cache() {
        let mut m = MemoryImage::new();
        m.write(PmAddr(0), &[1]);
        m.write(PmAddr(1), &[2]); // same page: last-page hit
        m.write(PmAddr(PAGE_BYTES), &[3]); // new page: index miss + insert
        let st = m.access_stats();
        assert!(st.lookups >= 3);
        assert!(st.last_page_hits >= 1);
        assert!(st.index_probes >= 1);
        assert!(st.last_page_hits < st.lookups);
        // Stats are cumulative across reset (the image identity survives).
        m.reset();
        m.write(PmAddr(0), &[1]);
        assert!(m.access_stats().lookups > st.lookups);
    }

    #[test]
    fn cross_page_write() {
        let mut m = MemoryImage::new();
        let addr = PmAddr(PAGE_BYTES - 4);
        m.write(addr, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut buf = [0u8; 8];
        m.read(addr, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(m.touched_pages(), 2);
    }

    #[test]
    fn write_spanning_three_pages() {
        let mut m = MemoryImage::new();
        // Starts mid-page 0, covers all of page 1, ends mid-page 2.
        let addr = PmAddr(PAGE_BYTES / 2);
        let data: Vec<u8> = (0..2 * PAGE_BYTES).map(|i| (i % 251) as u8).collect();
        m.write(addr, &data);
        assert_eq!(m.touched_pages(), 3);
        let mut buf = vec![0u8; data.len()];
        m.read(addr, &mut buf);
        assert_eq!(buf, data);
        // The bytes just outside the span stay zero.
        assert_eq!(m.read_u64(PmAddr(addr.0 - 8)), 0);
        let mut tail = [0u8; 8];
        m.read(PmAddr(addr.0 + 2 * PAGE_BYTES), &mut tail);
        assert_eq!(tail, [0u8; 8]);
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = MemoryImage::new();
        m.write_u64(PmAddr(8), u64::MAX - 1);
        assert_eq!(m.read_u64(PmAddr(8)), u64::MAX - 1);
    }

    #[test]
    fn line_roundtrip() {
        let mut m = MemoryImage::new();
        let mut line = [0u8; 64];
        line[0] = 0xab;
        line[63] = 0xcd;
        m.write_line(LineAddr(5), &line);
        assert_eq!(m.read_line(LineAddr(5)), line);
    }

    #[test]
    fn sparse_pages_do_not_interfere() {
        // Widely scattered pages exercise the open-addressed index across
        // several growth steps; every untouched page in between reads zero.
        let mut m = MemoryImage::new();
        let stride = 977 * PAGE_BYTES; // coprime spread
        for i in 0..300u64 {
            m.write_u64(PmAddr(i * stride), i + 1);
        }
        assert_eq!(m.touched_pages(), 300);
        for i in 0..300u64 {
            assert_eq!(m.read_u64(PmAddr(i * stride)), i + 1);
            assert_eq!(m.read_u64(PmAddr(i * stride + PAGE_BYTES)), 0);
        }
    }

    #[test]
    fn sparse_reread_after_crash_style_line_flush() {
        // Lines flushed in the pattern of a post-crash WPQ flush (scattered
        // line-granularity writes), then re-read sparsely: flushed lines
        // hold their data, neighbours on untouched pages read zero.
        let mut m = MemoryImage::new();
        let lines_per_page = PAGE_BYTES / LINE_BYTES;
        for i in 0..64u64 {
            let line = LineAddr(i * 3 * lines_per_page + i); // distinct pages
            m.write_line(line, &[i as u8 + 1; 64]);
        }
        for i in (0..64u64).rev() {
            let line = LineAddr(i * 3 * lines_per_page + i);
            assert_eq!(m.read_line(line), [i as u8 + 1; 64]);
            let untouched = LineAddr((i * 3 + 1) * lines_per_page);
            assert_eq!(m.read_line(untouched), [0u8; 64]);
        }
    }

    #[test]
    fn reset_clears_contents_bits_and_last_page_cache() {
        let mut m = MemoryImage::new();
        m.write_u64(PmAddr(40), 7);
        m.mark_persistent(PmAddr(40), 8);
        // Warm the last-page cache on page 0 via a read.
        assert_eq!(m.read_u64(PmAddr(40)), 7);
        m.reset();
        assert_eq!(m.touched_pages(), 0);
        // A stale cache entry would resurrect the old page here.
        assert_eq!(m.read_u64(PmAddr(40)), 0);
        assert!(!m.is_persistent(PmAddr(40)));
        // The image is fully usable again after reset.
        m.write_u64(PmAddr(40), 9);
        assert_eq!(m.read_u64(PmAddr(40)), 9);
        assert_eq!(m.touched_pages(), 1);
    }

    #[test]
    fn alternating_page_accesses_stay_correct() {
        // Ping-pong between two pages so every access misses the last-page
        // cache; values must still come from the right page.
        let mut m = MemoryImage::new();
        let a = PmAddr(0);
        let b = PmAddr(10 * PAGE_BYTES);
        m.write_u64(a, 1);
        m.write_u64(b, 2);
        for _ in 0..8 {
            assert_eq!(m.read_u64(a), 1);
            assert_eq!(m.read_u64(b), 2);
        }
    }

    #[test]
    fn persistent_bit_is_page_granular() {
        let mut m = MemoryImage::new();
        m.mark_persistent(PmAddr(PAGE_BYTES + 10), 1);
        assert!(m.is_persistent(PmAddr(PAGE_BYTES)));
        assert!(m.is_persistent(PmAddr(2 * PAGE_BYTES - 1)));
        assert!(!m.is_persistent(PmAddr(0)));
        assert!(!m.is_persistent(PmAddr(2 * PAGE_BYTES)));
    }

    #[test]
    fn mark_persistent_spans_pages() {
        let mut m = MemoryImage::new();
        m.mark_persistent(PmAddr(0), 3 * PAGE_BYTES);
        for p in 0..3 {
            assert!(m.is_persistent(PmAddr(p * PAGE_BYTES)));
        }
        assert!(!m.is_persistent(PmAddr(3 * PAGE_BYTES)));
    }

    #[test]
    fn mark_persistent_zero_len_is_noop() {
        let mut m = MemoryImage::new();
        m.mark_persistent(PmAddr(0), 0);
        assert!(!m.is_persistent(PmAddr(0)));
    }

    #[test]
    fn line_is_persistent_follows_page() {
        let mut m = MemoryImage::new();
        m.mark_persistent(PmAddr(0), 64);
        assert!(m.line_is_persistent(LineAddr(0)));
        assert!(m.line_is_persistent(LineAddr(63))); // same page
        assert!(!m.line_is_persistent(LineAddr(64))); // next page
    }

    #[test]
    fn debug_nonempty() {
        assert!(format!("{:?}", MemoryImage::new()).contains("MemoryImage"));
    }

    proptest! {
        #[test]
        fn prop_write_then_read_any_span(
            addr in 0u64..3 * PAGE_BYTES,
            data in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let mut m = MemoryImage::new();
            m.write(PmAddr(addr), &data);
            let mut buf = vec![0u8; data.len()];
            m.read(PmAddr(addr), &mut buf);
            prop_assert_eq!(buf, data);
        }

        #[test]
        fn prop_disjoint_writes_do_not_interfere(
            a in 0u64..1024,
            b in 2048u64..4096,
            va in any::<u64>(),
            vb in any::<u64>(),
        ) {
            let mut m = MemoryImage::new();
            m.write_u64(PmAddr(a), va);
            m.write_u64(PmAddr(b), vb);
            prop_assert_eq!(m.read_u64(PmAddr(a)), va);
            prop_assert_eq!(m.read_u64(PmAddr(b)), vb);
        }

        #[test]
        fn prop_matches_btreemap_reference(
            ops in proptest::collection::vec(
                (0u64..64 * PAGE_BYTES, any::<u64>()), 1..64),
        ) {
            // The open-addressed index + last-page cache must be
            // observationally identical to the old BTreeMap-of-pages model.
            let mut m = MemoryImage::new();
            let mut reference = std::collections::BTreeMap::new();
            for (addr, v) in &ops {
                m.write_u64(PmAddr(*addr), *v);
                for (i, byte) in v.to_le_bytes().iter().enumerate() {
                    reference.insert(addr + i as u64, *byte);
                }
            }
            for (addr, _) in &ops {
                let mut buf = [0u8; 8];
                m.read(PmAddr(*addr), &mut buf);
                for (i, byte) in buf.iter().enumerate() {
                    let want = reference.get(&(addr + i as u64)).copied().unwrap_or(0);
                    prop_assert_eq!(*byte, want);
                }
            }
        }
    }
}
