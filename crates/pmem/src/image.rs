//! The sparse, byte-accurate contents of main memory.

use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

use crate::addr::{LineAddr, PmAddr, LINE_BYTES, PAGE_BYTES};

/// One 4KB page of memory plus its page-table persistent bit.
///
/// Pages are held behind [`Arc`] so a [`MemoryImage::snapshot`] is a
/// pointer-table copy: both images share every page until one of them
/// writes, and the write path deep-copies only the shared page it is
/// about to mutate (copy-on-write). `Arc` rather than `Rc` keeps the
/// image `Send`, which the parallel figure harness relies on.
#[derive(Clone)]
struct Page {
    bytes: Box<[u8; PAGE_BYTES as usize]>,
    persistent: bool,
}

impl Page {
    fn zeroed() -> Self {
        Page {
            bytes: Box::new([0u8; PAGE_BYTES as usize]),
            persistent: false,
        }
    }
}

/// Sentinel key for an empty index slot. Page numbers are byte addresses
/// divided by `PAGE_BYTES`, so `u64::MAX` can never be a real page number.
const EMPTY: u64 = u64::MAX;

/// An open-addressed (linear-probe) map from page number to the page's slot
/// in the backing `Vec<Page>`. Supports insert and lookup only — the image
/// never frees individual pages (only [`MemoryImage::reset`] clears it),
/// so no tombstones are needed.
struct PageIndex {
    keys: Vec<u64>,
    slots: Vec<u32>,
    /// Capacity minus one; capacity is always a power of two.
    mask: usize,
    len: usize,
}

impl Clone for PageIndex {
    fn clone(&self) -> Self {
        PageIndex {
            keys: self.keys.clone(),
            slots: self.slots.clone(),
            mask: self.mask,
            len: self.len,
        }
    }

    /// Allocation-reusing copy: restoring a machine from a snapshot
    /// overwrites the live index in place, so the key/slot tables keep
    /// their buffers across forks.
    fn clone_from(&mut self, src: &Self) {
        self.keys.clone_from(&src.keys);
        self.slots.clone_from(&src.slots);
        self.mask = src.mask;
        self.len = src.len;
    }
}

impl PageIndex {
    fn new() -> Self {
        const CAP: usize = 64;
        PageIndex {
            keys: vec![EMPTY; CAP],
            slots: vec![0; CAP],
            mask: CAP - 1,
            len: 0,
        }
    }

    /// Fibonacci hashing: multiplicative spread of the page number across
    /// the table, using the high bits (the low bits of sequential page
    /// numbers are dense and would cluster under masking alone).
    #[inline]
    fn bucket(&self, page_no: u64) -> usize {
        let h = page_no.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    /// Lookup plus the number of probe steps it took (1 = direct hit in
    /// the home bucket) — the probe count feeds the image's access
    /// statistics without a second pass.
    #[inline]
    fn get_probed(&self, page_no: u64) -> (Option<u32>, u64) {
        let mut i = self.bucket(page_no);
        let mut probes = 1u64;
        loop {
            let k = self.keys[i];
            if k == page_no {
                return (Some(self.slots[i]), probes);
            }
            if k == EMPTY {
                return (None, probes);
            }
            probes += 1;
            i = (i + 1) & self.mask;
        }
    }

    fn insert(&mut self, page_no: u64, slot: u32) {
        // Grow at 3/4 load to keep probe chains short.
        if (self.len + 1) * 4 > (self.mask + 1) * 3 {
            self.grow();
        }
        let mut i = self.bucket(page_no);
        while self.keys[i] != EMPTY {
            debug_assert_ne!(self.keys[i], page_no, "page inserted twice");
            i = (i + 1) & self.mask;
        }
        self.keys[i] = page_no;
        self.slots[i] = slot;
        self.len += 1;
    }

    fn grow(&mut self) {
        let new_cap = (self.mask + 1) * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_slots = std::mem::replace(&mut self.slots, vec![0; new_cap]);
        self.mask = new_cap - 1;
        for (k, s) in old_keys.into_iter().zip(old_slots) {
            if k == EMPTY {
                continue;
            }
            let mut i = self.bucket(k);
            while self.keys[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.keys[i] = k;
            self.slots[i] = s;
        }
    }

    fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }
}

/// Byte-accurate main-memory contents with per-page persistent bits.
///
/// In the machine model this image holds what is *in the memory modules*:
/// for PM pages, that is the durable state (plus whatever the WPQ flushes on
/// a crash — see `asap-mem`); caches hold newer dirty copies on top.
///
/// Unwritten memory reads as zero, like freshly mapped pages.
///
/// Internally pages live in a flat `Vec` reached through an open-addressed
/// page index plus a one-entry last-page cache — almost every access in a
/// simulation run touches the same page as its predecessor, so the common
/// case is one compare instead of a map walk.
///
/// # Example
///
/// ```
/// use asap_pmem::{MemoryImage, PmAddr};
///
/// let mut m = MemoryImage::new();
/// m.write(PmAddr(10), &[1, 2, 3]);
/// let mut buf = [0u8; 3];
/// m.read(PmAddr(10), &mut buf);
/// assert_eq!(buf, [1, 2, 3]);
/// assert_eq!(m.read_u64(PmAddr(4096)), 0); // untouched memory is zero
/// ```
pub struct MemoryImage {
    pages: Vec<Arc<Page>>,
    index: PageIndex,
    /// Last page looked up, as `(page_no, slot)` — hit on nearly every
    /// sequential access. Invalidated by [`reset`](Self::reset).
    last: Cell<(u64, u32)>,
    /// Hot-path access statistics (plain `Cell`s, not atomics — each
    /// image belongs to one simulation). Never printed by figures;
    /// flushed to the host metrics registry after a run.
    stats: Cell<ImageStats>,
}

// An image (and hence a machine snapshot) is `Send` — `Arc<Page>`
// refcounts are atomic, so two images sharing pages may live on
// different threads and fault their CoW copies concurrently without
// contending (each `Arc::strong_count` check and page deep-copy touches
// only that page's refcount). The `Cell` caches above keep it `!Sync`:
// the sweep engine shares snapshots across workers behind a `Mutex`,
// never by reference.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<MemoryImage>();
};

/// Access statistics of a [`MemoryImage`]: how hard the page lookup
/// machinery worked. `last_page_hits / lookups` is the one-entry-cache
/// hit rate; `index_probes` counts open-addressing steps (1 per
/// fall-through lookup when the table is collision-free).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImageStats {
    /// Page lookups (one per page touched by each read/write/persist-bit
    /// query).
    pub lookups: u64,
    /// Lookups answered by the one-entry last-page cache.
    pub last_page_hits: u64,
    /// Linear-probe steps taken by lookups that reached the open-addressed
    /// page index.
    pub index_probes: u64,
    /// Pages deep-copied by the write path because a snapshot still shared
    /// them (copy-on-write faults).
    pub cow_copies: u64,
}

impl MemoryImage {
    /// Creates an empty (all-zero) image.
    pub fn new() -> Self {
        MemoryImage {
            pages: Vec::new(),
            index: PageIndex::new(),
            last: Cell::new((EMPTY, 0)),
            stats: Cell::new(ImageStats::default()),
        }
    }

    /// Slot of `page_no` if the page has been touched, via the last-page
    /// cache first.
    #[inline]
    fn lookup(&self, page_no: u64) -> Option<u32> {
        let mut st = self.stats.get();
        st.lookups += 1;
        let (cached_no, cached_slot) = self.last.get();
        if cached_no == page_no {
            st.last_page_hits += 1;
            self.stats.set(st);
            return Some(cached_slot);
        }
        let (slot, probes) = self.index.get_probed(page_no);
        st.index_probes += probes;
        self.stats.set(st);
        let slot = slot?;
        self.last.set((page_no, slot));
        Some(slot)
    }

    fn page_mut(&mut self, page_no: u64) -> &mut Page {
        let slot = match self.lookup(page_no) {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.pages.len()).expect("page count fits u32");
                self.pages.push(Arc::new(Page::zeroed()));
                self.index.insert(page_no, s);
                self.last.set((page_no, s));
                s
            }
        };
        let arc = &mut self.pages[slot as usize];
        // Copy-on-write: a page still shared with a snapshot is deep-copied
        // before the first mutation; exclusively owned pages (the common
        // case — there are no weak handles, so `strong_count == 1` means
        // unique) are written in place with no extra work.
        if Arc::strong_count(arc) != 1 {
            let mut st = self.stats.get();
            st.cow_copies += 1;
            self.stats.set(st);
            *arc = Arc::new(Page::clone(arc));
        }
        Arc::get_mut(arc).expect("page unique after copy-on-write")
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: PmAddr, buf: &mut [u8]) {
        let mut pos = addr.0;
        let mut done = 0usize;
        while done < buf.len() {
            let page_no = pos / PAGE_BYTES;
            let off = (pos % PAGE_BYTES) as usize;
            let n = (buf.len() - done).min(PAGE_BYTES as usize - off);
            match self.lookup(page_no) {
                Some(slot) => {
                    let p = &self.pages[slot as usize];
                    buf[done..done + n].copy_from_slice(&p.bytes[off..off + n]);
                }
                None => buf[done..done + n].fill(0),
            }
            done += n;
            pos += n as u64;
        }
    }

    /// Writes `data` starting at `addr`.
    pub fn write(&mut self, addr: PmAddr, data: &[u8]) {
        let mut pos = addr.0;
        let mut done = 0usize;
        while done < data.len() {
            let page_no = pos / PAGE_BYTES;
            let off = (pos % PAGE_BYTES) as usize;
            let n = (data.len() - done).min(PAGE_BYTES as usize - off);
            self.page_mut(page_no).bytes[off..off + n].copy_from_slice(&data[done..done + n]);
            done += n;
            pos += n as u64;
        }
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: PmAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: PmAddr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads one whole cache line.
    pub fn read_line(&self, line: LineAddr) -> [u8; LINE_BYTES as usize] {
        let mut buf = [0u8; LINE_BYTES as usize];
        self.read(line.base(), &mut buf);
        buf
    }

    /// Writes one whole cache line.
    pub fn write_line(&mut self, line: LineAddr, data: &[u8; LINE_BYTES as usize]) {
        self.write(line.base(), data);
    }

    /// Sets the page-table persistent bit for every page overlapping
    /// `[addr, addr + len)` — what `asap_malloc` does (§4.6).
    pub fn mark_persistent(&mut self, addr: PmAddr, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr.page();
        let last = (addr.0 + len - 1) / PAGE_BYTES;
        for p in first..=last {
            self.page_mut(p).persistent = true;
        }
    }

    /// Whether the page containing `addr` has its persistent bit set.
    pub fn is_persistent(&self, addr: PmAddr) -> bool {
        self.lookup(addr.page())
            .is_some_and(|slot| self.pages[slot as usize].persistent)
    }

    /// Whether the page containing `line` has its persistent bit set.
    pub fn line_is_persistent(&self, line: LineAddr) -> bool {
        self.is_persistent(line.base())
    }

    /// Number of pages that have ever been touched.
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }

    /// Cumulative access statistics for this image (survive
    /// [`reset`](Self::reset), like the image's identity does).
    pub fn access_stats(&self) -> ImageStats {
        self.stats.get()
    }

    /// Forgets every page — contents and persistent bits — returning the
    /// image to the all-zero state, and invalidates the last-page cache.
    pub fn reset(&mut self) {
        self.pages.clear();
        self.index.clear();
        self.last.set((EMPTY, 0));
    }

    /// A copy-on-write snapshot of the image: O(touched pages) pointer
    /// copies that bump each page's refcount, not a byte copy. Writes to
    /// either image after the snapshot deep-copy only the page being
    /// written (counted in [`ImageStats::cow_copies`]).
    pub fn snapshot(&self) -> MemoryImage {
        self.clone()
    }

    /// Number of pages currently shared with at least one other image
    /// (refcount > 1). Purely introspective — used by the CoW property
    /// tests to prove forks release their pages.
    pub fn shared_pages(&self) -> usize {
        self.pages
            .iter()
            .filter(|p| Arc::strong_count(p) > 1)
            .count()
    }
}

/// `clone` is the snapshot primitive (pointer-table copy, refcount bumps);
/// `clone_from` additionally reuses the destination's page table and index
/// buffers, which is what makes repeated restore-into-scratch forks cheap.
impl Clone for MemoryImage {
    fn clone(&self) -> Self {
        MemoryImage {
            pages: self.pages.clone(),
            index: self.index.clone(),
            last: self.last.clone(),
            stats: self.stats.clone(),
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.pages.clone_from(&src.pages);
        self.index.clone_from(&src.index);
        self.last.set(src.last.get());
        self.stats.set(src.stats.get());
    }
}

impl Default for MemoryImage {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for MemoryImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryImage")
            .field("touched_pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn untouched_memory_is_zero() {
        let m = MemoryImage::new();
        let mut buf = [0xffu8; 16];
        m.read(PmAddr(123456), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.touched_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = MemoryImage::new();
        m.write(PmAddr(100), b"hello world");
        let mut buf = [0u8; 11];
        m.read(PmAddr(100), &mut buf);
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn access_stats_track_last_page_cache() {
        let mut m = MemoryImage::new();
        m.write(PmAddr(0), &[1]);
        m.write(PmAddr(1), &[2]); // same page: last-page hit
        m.write(PmAddr(PAGE_BYTES), &[3]); // new page: index miss + insert
        let st = m.access_stats();
        assert!(st.lookups >= 3);
        assert!(st.last_page_hits >= 1);
        assert!(st.index_probes >= 1);
        assert!(st.last_page_hits < st.lookups);
        // Stats are cumulative across reset (the image identity survives).
        m.reset();
        m.write(PmAddr(0), &[1]);
        assert!(m.access_stats().lookups > st.lookups);
    }

    #[test]
    fn cross_page_write() {
        let mut m = MemoryImage::new();
        let addr = PmAddr(PAGE_BYTES - 4);
        m.write(addr, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut buf = [0u8; 8];
        m.read(addr, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(m.touched_pages(), 2);
    }

    #[test]
    fn write_spanning_three_pages() {
        let mut m = MemoryImage::new();
        // Starts mid-page 0, covers all of page 1, ends mid-page 2.
        let addr = PmAddr(PAGE_BYTES / 2);
        let data: Vec<u8> = (0..2 * PAGE_BYTES).map(|i| (i % 251) as u8).collect();
        m.write(addr, &data);
        assert_eq!(m.touched_pages(), 3);
        let mut buf = vec![0u8; data.len()];
        m.read(addr, &mut buf);
        assert_eq!(buf, data);
        // The bytes just outside the span stay zero.
        assert_eq!(m.read_u64(PmAddr(addr.0 - 8)), 0);
        let mut tail = [0u8; 8];
        m.read(PmAddr(addr.0 + 2 * PAGE_BYTES), &mut tail);
        assert_eq!(tail, [0u8; 8]);
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = MemoryImage::new();
        m.write_u64(PmAddr(8), u64::MAX - 1);
        assert_eq!(m.read_u64(PmAddr(8)), u64::MAX - 1);
    }

    #[test]
    fn line_roundtrip() {
        let mut m = MemoryImage::new();
        let mut line = [0u8; 64];
        line[0] = 0xab;
        line[63] = 0xcd;
        m.write_line(LineAddr(5), &line);
        assert_eq!(m.read_line(LineAddr(5)), line);
    }

    #[test]
    fn sparse_pages_do_not_interfere() {
        // Widely scattered pages exercise the open-addressed index across
        // several growth steps; every untouched page in between reads zero.
        let mut m = MemoryImage::new();
        let stride = 977 * PAGE_BYTES; // coprime spread
        for i in 0..300u64 {
            m.write_u64(PmAddr(i * stride), i + 1);
        }
        assert_eq!(m.touched_pages(), 300);
        for i in 0..300u64 {
            assert_eq!(m.read_u64(PmAddr(i * stride)), i + 1);
            assert_eq!(m.read_u64(PmAddr(i * stride + PAGE_BYTES)), 0);
        }
    }

    #[test]
    fn sparse_reread_after_crash_style_line_flush() {
        // Lines flushed in the pattern of a post-crash WPQ flush (scattered
        // line-granularity writes), then re-read sparsely: flushed lines
        // hold their data, neighbours on untouched pages read zero.
        let mut m = MemoryImage::new();
        let lines_per_page = PAGE_BYTES / LINE_BYTES;
        for i in 0..64u64 {
            let line = LineAddr(i * 3 * lines_per_page + i); // distinct pages
            m.write_line(line, &[i as u8 + 1; 64]);
        }
        for i in (0..64u64).rev() {
            let line = LineAddr(i * 3 * lines_per_page + i);
            assert_eq!(m.read_line(line), [i as u8 + 1; 64]);
            let untouched = LineAddr((i * 3 + 1) * lines_per_page);
            assert_eq!(m.read_line(untouched), [0u8; 64]);
        }
    }

    #[test]
    fn reset_clears_contents_bits_and_last_page_cache() {
        let mut m = MemoryImage::new();
        m.write_u64(PmAddr(40), 7);
        m.mark_persistent(PmAddr(40), 8);
        // Warm the last-page cache on page 0 via a read.
        assert_eq!(m.read_u64(PmAddr(40)), 7);
        m.reset();
        assert_eq!(m.touched_pages(), 0);
        // A stale cache entry would resurrect the old page here.
        assert_eq!(m.read_u64(PmAddr(40)), 0);
        assert!(!m.is_persistent(PmAddr(40)));
        // The image is fully usable again after reset.
        m.write_u64(PmAddr(40), 9);
        assert_eq!(m.read_u64(PmAddr(40)), 9);
        assert_eq!(m.touched_pages(), 1);
    }

    #[test]
    fn alternating_page_accesses_stay_correct() {
        // Ping-pong between two pages so every access misses the last-page
        // cache; values must still come from the right page.
        let mut m = MemoryImage::new();
        let a = PmAddr(0);
        let b = PmAddr(10 * PAGE_BYTES);
        m.write_u64(a, 1);
        m.write_u64(b, 2);
        for _ in 0..8 {
            assert_eq!(m.read_u64(a), 1);
            assert_eq!(m.read_u64(b), 2);
        }
    }

    #[test]
    fn persistent_bit_is_page_granular() {
        let mut m = MemoryImage::new();
        m.mark_persistent(PmAddr(PAGE_BYTES + 10), 1);
        assert!(m.is_persistent(PmAddr(PAGE_BYTES)));
        assert!(m.is_persistent(PmAddr(2 * PAGE_BYTES - 1)));
        assert!(!m.is_persistent(PmAddr(0)));
        assert!(!m.is_persistent(PmAddr(2 * PAGE_BYTES)));
    }

    #[test]
    fn mark_persistent_spans_pages() {
        let mut m = MemoryImage::new();
        m.mark_persistent(PmAddr(0), 3 * PAGE_BYTES);
        for p in 0..3 {
            assert!(m.is_persistent(PmAddr(p * PAGE_BYTES)));
        }
        assert!(!m.is_persistent(PmAddr(3 * PAGE_BYTES)));
    }

    #[test]
    fn mark_persistent_zero_len_is_noop() {
        let mut m = MemoryImage::new();
        m.mark_persistent(PmAddr(0), 0);
        assert!(!m.is_persistent(PmAddr(0)));
    }

    #[test]
    fn line_is_persistent_follows_page() {
        let mut m = MemoryImage::new();
        m.mark_persistent(PmAddr(0), 64);
        assert!(m.line_is_persistent(LineAddr(0)));
        assert!(m.line_is_persistent(LineAddr(63))); // same page
        assert!(!m.line_is_persistent(LineAddr(64))); // next page
    }

    #[test]
    fn debug_nonempty() {
        assert!(format!("{:?}", MemoryImage::new()).contains("MemoryImage"));
    }

    #[test]
    fn snapshot_shares_pages_until_write() {
        let mut m = MemoryImage::new();
        m.write_u64(PmAddr(0), 7);
        m.write_u64(PmAddr(PAGE_BYTES), 8);
        let snap = m.snapshot();
        assert_eq!(m.shared_pages(), 2);
        assert_eq!(snap.shared_pages(), 2);
        assert_eq!(m.access_stats().cow_copies, 0);
        // Writing one page copies exactly that page; the other stays shared.
        m.write_u64(PmAddr(8), 9);
        assert_eq!(m.access_stats().cow_copies, 1);
        assert_eq!(m.shared_pages(), 1);
        // The snapshot kept the pre-write bytes.
        assert_eq!(snap.read_u64(PmAddr(8)), 0);
        assert_eq!(snap.read_u64(PmAddr(0)), 7);
        assert_eq!(m.read_u64(PmAddr(8)), 9);
        // A second write to the now-unique page is free.
        m.write_u64(PmAddr(16), 10);
        assert_eq!(m.access_stats().cow_copies, 1);
    }

    #[test]
    fn snapshot_preserves_persistent_bits_and_cow_covers_marking() {
        let mut m = MemoryImage::new();
        m.write_u64(PmAddr(0), 1);
        let snap = m.snapshot();
        // mark_persistent goes through the same CoW write path.
        m.mark_persistent(PmAddr(0), 8);
        assert!(m.is_persistent(PmAddr(0)));
        assert!(!snap.is_persistent(PmAddr(0)));
        assert_eq!(m.access_stats().cow_copies, 1);
    }

    #[test]
    fn dropping_all_snapshots_returns_refcounts_to_one() {
        let mut m = MemoryImage::new();
        for p in 0..8u64 {
            m.write_u64(PmAddr(p * PAGE_BYTES), p);
        }
        let a = m.snapshot();
        let b = a.snapshot();
        assert_eq!(m.shared_pages(), 8);
        drop(a);
        assert_eq!(m.shared_pages(), 8); // still shared with b
        drop(b);
        assert_eq!(m.shared_pages(), 0); // exclusively owned again
    }

    #[test]
    fn clone_from_reuses_and_matches_clone() {
        let mut m = MemoryImage::new();
        for p in 0..20u64 {
            m.write_u64(PmAddr(p * PAGE_BYTES), p + 1);
        }
        let mut scratch = MemoryImage::new();
        scratch.write_u64(PmAddr(5 * PAGE_BYTES), 999);
        scratch.clone_from(&m);
        for p in 0..20u64 {
            assert_eq!(scratch.read_u64(PmAddr(p * PAGE_BYTES)), p + 1);
        }
        assert_eq!(scratch.touched_pages(), m.touched_pages());
        // Writes to the restored copy do not leak back.
        scratch.write_u64(PmAddr(0), 42);
        assert_eq!(m.read_u64(PmAddr(0)), 1);
    }

    /// An eager-deep-copy model of the image: every snapshot duplicates
    /// all bytes and bits up front. The CoW implementation must be
    /// observationally identical to this through any interleaving.
    #[derive(Clone, Default)]
    struct EagerImage {
        bytes: std::collections::BTreeMap<u64, u8>,
        persistent: std::collections::BTreeSet<u64>,
    }

    impl EagerImage {
        fn write_u64(&mut self, addr: u64, v: u64) {
            for (i, b) in v.to_le_bytes().iter().enumerate() {
                self.bytes.insert(addr + i as u64, *b);
            }
        }

        fn read_u64(&self, addr: u64) -> u64 {
            let mut b = [0u8; 8];
            for (i, byte) in b.iter_mut().enumerate() {
                *byte = self.bytes.get(&(addr + i as u64)).copied().unwrap_or(0);
            }
            u64::from_le_bytes(b)
        }

        fn mark_persistent(&mut self, addr: u64, len: u64) {
            if len == 0 {
                return;
            }
            for p in (addr / PAGE_BYTES)..=((addr + len - 1) / PAGE_BYTES) {
                self.persistent.insert(p);
            }
        }

        fn is_persistent(&self, addr: u64) -> bool {
            self.persistent.contains(&(addr / PAGE_BYTES))
        }
    }

    /// One step of the CoW-vs-oracle interleaving. `target` selects which
    /// live image (base or one of the forks) the operation applies to.
    #[derive(Clone, Debug)]
    enum CowOp {
        Write { target: u8, addr: u64, v: u64 },
        Mark { target: u8, addr: u64, len: u64 },
        Snapshot { target: u8 },
        DropFork { which: u8 },
    }

    fn cow_op() -> impl Strategy<Value = CowOp> {
        let addr = 0u64..16 * PAGE_BYTES;
        prop_oneof![
            4 => (any::<u8>(), addr.clone(), any::<u64>())
                .prop_map(|(target, addr, v)| CowOp::Write { target, addr, v }),
            1 => (any::<u8>(), addr.clone(), 0u64..2 * PAGE_BYTES)
                .prop_map(|(target, addr, len)| CowOp::Mark { target, addr, len }),
            2 => any::<u8>().prop_map(|target| CowOp::Snapshot { target }),
            2 => any::<u8>().prop_map(|which| CowOp::DropFork { which }),
        ]
    }

    proptest! {
        /// CoW image vs eager-deep-copy oracle through arbitrary
        /// interleavings of writes, snapshots, forks-of-forks, and fork
        /// drops: byte contents and persistent bits must stay identical on
        /// every live image, and once every fork is gone the base image
        /// must own all its pages exclusively again (no leaked sharing).
        #[test]
        fn prop_cow_matches_eager_oracle(
            ops in proptest::collection::vec(cow_op(), 1..80),
            probes in proptest::collection::vec(0u64..16 * PAGE_BYTES, 8),
        ) {
            let mut cows: Vec<MemoryImage> = vec![MemoryImage::new()];
            let mut oracles: Vec<EagerImage> = vec![EagerImage::default()];
            for op in &ops {
                match *op {
                    CowOp::Write { target, addr, v } => {
                        let t = target as usize % cows.len();
                        cows[t].write_u64(PmAddr(addr), v);
                        oracles[t].write_u64(addr, v);
                    }
                    CowOp::Mark { target, addr, len } => {
                        let t = target as usize % cows.len();
                        cows[t].mark_persistent(PmAddr(addr), len);
                        oracles[t].mark_persistent(addr, len);
                    }
                    CowOp::Snapshot { target } => {
                        let t = target as usize % cows.len();
                        let (c, o) = (cows[t].snapshot(), oracles[t].clone());
                        cows.push(c);
                        oracles.push(o);
                    }
                    CowOp::DropFork { which } => {
                        // Never drop the base image (index 0).
                        if cows.len() > 1 {
                            let i = 1 + which as usize % (cows.len() - 1);
                            cows.remove(i);
                            oracles.remove(i);
                        }
                    }
                }
                // Every live image agrees with its oracle at the probe
                // addresses after every step, not just at the end.
                for (c, o) in cows.iter().zip(&oracles) {
                    for &p in &probes {
                        prop_assert_eq!(c.read_u64(PmAddr(p)), o.read_u64(p));
                        prop_assert_eq!(c.is_persistent(PmAddr(p)), o.is_persistent(p));
                    }
                }
            }
            // Drop every fork: the base must hold the sole reference to
            // each of its pages — a leaked refcount would show up here.
            cows.truncate(1);
            oracles.truncate(1);
            prop_assert_eq!(cows[0].shared_pages(), 0);
            for &p in &probes {
                prop_assert_eq!(cows[0].read_u64(PmAddr(p)), oracles[0].read_u64(p));
                prop_assert_eq!(cows[0].is_persistent(PmAddr(p)), oracles[0].is_persistent(p));
            }
        }
    }

    proptest! {
        #[test]
        fn prop_write_then_read_any_span(
            addr in 0u64..3 * PAGE_BYTES,
            data in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let mut m = MemoryImage::new();
            m.write(PmAddr(addr), &data);
            let mut buf = vec![0u8; data.len()];
            m.read(PmAddr(addr), &mut buf);
            prop_assert_eq!(buf, data);
        }

        #[test]
        fn prop_disjoint_writes_do_not_interfere(
            a in 0u64..1024,
            b in 2048u64..4096,
            va in any::<u64>(),
            vb in any::<u64>(),
        ) {
            let mut m = MemoryImage::new();
            m.write_u64(PmAddr(a), va);
            m.write_u64(PmAddr(b), vb);
            prop_assert_eq!(m.read_u64(PmAddr(a)), va);
            prop_assert_eq!(m.read_u64(PmAddr(b)), vb);
        }

        #[test]
        fn prop_matches_btreemap_reference(
            ops in proptest::collection::vec(
                (0u64..64 * PAGE_BYTES, any::<u64>()), 1..64),
        ) {
            // The open-addressed index + last-page cache must be
            // observationally identical to the old BTreeMap-of-pages model.
            let mut m = MemoryImage::new();
            let mut reference = std::collections::BTreeMap::new();
            for (addr, v) in &ops {
                m.write_u64(PmAddr(*addr), *v);
                for (i, byte) in v.to_le_bytes().iter().enumerate() {
                    reference.insert(addr + i as u64, *byte);
                }
            }
            for (addr, _) in &ops {
                let mut buf = [0u8; 8];
                m.read(PmAddr(*addr), &mut buf);
                for (i, byte) in buf.iter().enumerate() {
                    let want = reference.get(&(addr + i as u64)).copied().unwrap_or(0);
                    prop_assert_eq!(*byte, want);
                }
            }
        }
    }
}
