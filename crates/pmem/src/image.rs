//! The sparse, byte-accurate contents of main memory.

use std::collections::BTreeMap;
use std::fmt;

use crate::addr::{LineAddr, PmAddr, LINE_BYTES, PAGE_BYTES};

/// One 4KB page of memory plus its page-table persistent bit.
struct Page {
    bytes: Box<[u8; PAGE_BYTES as usize]>,
    persistent: bool,
}

impl Page {
    fn zeroed() -> Self {
        Page {
            bytes: Box::new([0u8; PAGE_BYTES as usize]),
            persistent: false,
        }
    }
}

/// Byte-accurate main-memory contents with per-page persistent bits.
///
/// In the machine model this image holds what is *in the memory modules*:
/// for PM pages, that is the durable state (plus whatever the WPQ flushes on
/// a crash — see `asap-mem`); caches hold newer dirty copies on top.
///
/// Unwritten memory reads as zero, like freshly mapped pages.
///
/// # Example
///
/// ```
/// use asap_pmem::{MemoryImage, PmAddr};
///
/// let mut m = MemoryImage::new();
/// m.write(PmAddr(10), &[1, 2, 3]);
/// let mut buf = [0u8; 3];
/// m.read(PmAddr(10), &mut buf);
/// assert_eq!(buf, [1, 2, 3]);
/// assert_eq!(m.read_u64(PmAddr(4096)), 0); // untouched memory is zero
/// ```
pub struct MemoryImage {
    pages: BTreeMap<u64, Page>,
}

impl MemoryImage {
    /// Creates an empty (all-zero) image.
    pub fn new() -> Self {
        MemoryImage {
            pages: BTreeMap::new(),
        }
    }

    fn page_mut(&mut self, page_no: u64) -> &mut Page {
        self.pages.entry(page_no).or_insert_with(Page::zeroed)
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: PmAddr, buf: &mut [u8]) {
        let mut pos = addr.0;
        let mut done = 0usize;
        while done < buf.len() {
            let page_no = pos / PAGE_BYTES;
            let off = (pos % PAGE_BYTES) as usize;
            let n = (buf.len() - done).min(PAGE_BYTES as usize - off);
            match self.pages.get(&page_no) {
                Some(p) => buf[done..done + n].copy_from_slice(&p.bytes[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            pos += n as u64;
        }
    }

    /// Writes `data` starting at `addr`.
    pub fn write(&mut self, addr: PmAddr, data: &[u8]) {
        let mut pos = addr.0;
        let mut done = 0usize;
        while done < data.len() {
            let page_no = pos / PAGE_BYTES;
            let off = (pos % PAGE_BYTES) as usize;
            let n = (data.len() - done).min(PAGE_BYTES as usize - off);
            self.page_mut(page_no).bytes[off..off + n].copy_from_slice(&data[done..done + n]);
            done += n;
            pos += n as u64;
        }
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: PmAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: PmAddr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads one whole cache line.
    pub fn read_line(&self, line: LineAddr) -> [u8; LINE_BYTES as usize] {
        let mut buf = [0u8; LINE_BYTES as usize];
        self.read(line.base(), &mut buf);
        buf
    }

    /// Writes one whole cache line.
    pub fn write_line(&mut self, line: LineAddr, data: &[u8; LINE_BYTES as usize]) {
        self.write(line.base(), data);
    }

    /// Sets the page-table persistent bit for every page overlapping
    /// `[addr, addr + len)` — what `asap_malloc` does (§4.6).
    pub fn mark_persistent(&mut self, addr: PmAddr, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr.page();
        let last = (addr.0 + len - 1) / PAGE_BYTES;
        for p in first..=last {
            self.page_mut(p).persistent = true;
        }
    }

    /// Whether the page containing `addr` has its persistent bit set.
    pub fn is_persistent(&self, addr: PmAddr) -> bool {
        self.pages.get(&addr.page()).is_some_and(|p| p.persistent)
    }

    /// Whether the page containing `line` has its persistent bit set.
    pub fn line_is_persistent(&self, line: LineAddr) -> bool {
        self.is_persistent(line.base())
    }

    /// Number of pages that have ever been touched.
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }
}

impl Default for MemoryImage {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for MemoryImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryImage")
            .field("touched_pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn untouched_memory_is_zero() {
        let m = MemoryImage::new();
        let mut buf = [0xffu8; 16];
        m.read(PmAddr(123456), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.touched_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = MemoryImage::new();
        m.write(PmAddr(100), b"hello world");
        let mut buf = [0u8; 11];
        m.read(PmAddr(100), &mut buf);
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn cross_page_write() {
        let mut m = MemoryImage::new();
        let addr = PmAddr(PAGE_BYTES - 4);
        m.write(addr, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut buf = [0u8; 8];
        m.read(addr, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(m.touched_pages(), 2);
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = MemoryImage::new();
        m.write_u64(PmAddr(8), u64::MAX - 1);
        assert_eq!(m.read_u64(PmAddr(8)), u64::MAX - 1);
    }

    #[test]
    fn line_roundtrip() {
        let mut m = MemoryImage::new();
        let mut line = [0u8; 64];
        line[0] = 0xab;
        line[63] = 0xcd;
        m.write_line(LineAddr(5), &line);
        assert_eq!(m.read_line(LineAddr(5)), line);
    }

    #[test]
    fn persistent_bit_is_page_granular() {
        let mut m = MemoryImage::new();
        m.mark_persistent(PmAddr(PAGE_BYTES + 10), 1);
        assert!(m.is_persistent(PmAddr(PAGE_BYTES)));
        assert!(m.is_persistent(PmAddr(2 * PAGE_BYTES - 1)));
        assert!(!m.is_persistent(PmAddr(0)));
        assert!(!m.is_persistent(PmAddr(2 * PAGE_BYTES)));
    }

    #[test]
    fn mark_persistent_spans_pages() {
        let mut m = MemoryImage::new();
        m.mark_persistent(PmAddr(0), 3 * PAGE_BYTES);
        for p in 0..3 {
            assert!(m.is_persistent(PmAddr(p * PAGE_BYTES)));
        }
        assert!(!m.is_persistent(PmAddr(3 * PAGE_BYTES)));
    }

    #[test]
    fn mark_persistent_zero_len_is_noop() {
        let mut m = MemoryImage::new();
        m.mark_persistent(PmAddr(0), 0);
        assert!(!m.is_persistent(PmAddr(0)));
    }

    #[test]
    fn line_is_persistent_follows_page() {
        let mut m = MemoryImage::new();
        m.mark_persistent(PmAddr(0), 64);
        assert!(m.line_is_persistent(LineAddr(0)));
        assert!(m.line_is_persistent(LineAddr(63))); // same page
        assert!(!m.line_is_persistent(LineAddr(64))); // next page
    }

    #[test]
    fn debug_nonempty() {
        assert!(format!("{:?}", MemoryImage::new()).contains("MemoryImage"));
    }

    proptest! {
        #[test]
        fn prop_write_then_read_any_span(
            addr in 0u64..3 * PAGE_BYTES,
            data in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let mut m = MemoryImage::new();
            m.write(PmAddr(addr), &data);
            let mut buf = vec![0u8; data.len()];
            m.read(PmAddr(addr), &mut buf);
            prop_assert_eq!(buf, data);
        }

        #[test]
        fn prop_disjoint_writes_do_not_interfere(
            a in 0u64..1024,
            b in 2048u64..4096,
            va in any::<u64>(),
            vb in any::<u64>(),
        ) {
            let mut m = MemoryImage::new();
            m.write_u64(PmAddr(a), va);
            m.write_u64(PmAddr(b), vb);
            prop_assert_eq!(m.read_u64(PmAddr(a)), va);
            prop_assert_eq!(m.read_u64(PmAddr(b)), vb);
        }
    }
}
