//! Typed physical addresses and the DRAM/PM address-space split.

use std::fmt;

/// Cache line size in bytes (fixed at 64 throughout the model).
pub const LINE_BYTES: u64 = 64;

/// Page size in bytes. The persistent bit lives in the page table (§4.6),
/// so persistence is tracked at this granularity.
pub const PAGE_BYTES: u64 = 4096;

/// Base of the DRAM region of the physical address space.
pub const DRAM_BASE: u64 = 0;

/// Base of the persistent-memory region of the physical address space.
///
/// Addresses at or above this point are backed by PM modules; below it, by
/// DRAM. (Whether a *page* is persistent is still governed by the page-table
/// bit — `asap_malloc` only hands out PM addresses and sets the bit.)
pub const PM_BASE: u64 = 0x8000_0000;

/// A physical byte address in the simulated machine.
///
/// # Example
///
/// ```
/// use asap_pmem::{PmAddr, PM_BASE};
///
/// let a = PmAddr(PM_BASE + 100);
/// assert!(a.is_pm_region());
/// assert_eq!(a.line().base().0, PM_BASE + 64);
/// assert_eq!(a.offset_in_line(), 36);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PmAddr(pub u64);

impl PmAddr {
    /// The cache line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// The page number containing this address.
    #[inline]
    pub fn page(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// Byte offset of this address within its cache line.
    #[inline]
    pub fn offset_in_line(self) -> u64 {
        self.0 % LINE_BYTES
    }

    /// Whether this address falls in the PM-backed region.
    #[inline]
    pub fn is_pm_region(self) -> bool {
        self.0 >= PM_BASE
    }

    /// The address `bytes` bytes after this one.
    #[inline]
    pub fn offset(self, bytes: u64) -> PmAddr {
        PmAddr(self.0 + bytes)
    }
}

impl fmt::Debug for PmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PmAddr({:#x})", self.0)
    }
}

impl fmt::Display for PmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line number (byte address divided by 64).
///
/// Lines are the granularity of logging, ownership tracking and persist
/// operations in ASAP.
///
/// # Example
///
/// ```
/// use asap_pmem::{LineAddr, PmAddr};
///
/// let l = PmAddr(0x1000).line();
/// assert_eq!(l, LineAddr(0x40));
/// assert_eq!(l.base(), PmAddr(0x1000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The first byte address of this line.
    #[inline]
    pub fn base(self) -> PmAddr {
        PmAddr(self.0 * LINE_BYTES)
    }

    /// Whether this line falls in the PM-backed region.
    #[inline]
    pub fn is_pm_region(self) -> bool {
        self.base().is_pm_region()
    }

    /// The page number containing this line.
    #[inline]
    pub fn page(self) -> u64 {
        self.base().page()
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Iterates over every cache line overlapped by `[addr, addr + len)`.
///
/// # Example
///
/// ```
/// use asap_pmem::{addr::lines_touching, PmAddr};
///
/// let lines: Vec<_> = lines_touching(PmAddr(60), 8).collect();
/// assert_eq!(lines.len(), 2); // straddles the 64-byte boundary
/// ```
pub fn lines_touching(addr: PmAddr, len: u64) -> impl Iterator<Item = LineAddr> {
    let first = addr.0 / LINE_BYTES;
    let last = if len == 0 {
        first
    } else {
        (addr.0 + len - 1) / LINE_BYTES
    };
    (first..=last).map(LineAddr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_arithmetic() {
        let a = PmAddr(PAGE_BYTES + 65);
        assert_eq!(a.line(), LineAddr((PAGE_BYTES + 65) / 64));
        assert_eq!(a.page(), 1);
        assert_eq!(a.offset_in_line(), 1);
        assert_eq!(a.offset(63).line(), LineAddr(a.line().0 + 1));
    }

    #[test]
    fn pm_region_split() {
        assert!(!PmAddr(0).is_pm_region());
        assert!(!PmAddr(PM_BASE - 1).is_pm_region());
        assert!(PmAddr(PM_BASE).is_pm_region());
        assert!(LineAddr(PM_BASE / 64).is_pm_region());
        assert!(!LineAddr(PM_BASE / 64 - 1).is_pm_region());
    }

    #[test]
    fn line_base_roundtrip() {
        let l = LineAddr(123);
        assert_eq!(l.base().line(), l);
        assert_eq!(l.base().0, 123 * 64);
    }

    #[test]
    fn lines_touching_single() {
        let v: Vec<_> = lines_touching(PmAddr(0), 64).collect();
        assert_eq!(v, vec![LineAddr(0)]);
    }

    #[test]
    fn lines_touching_straddle() {
        let v: Vec<_> = lines_touching(PmAddr(32), 64).collect();
        assert_eq!(v, vec![LineAddr(0), LineAddr(1)]);
    }

    #[test]
    fn lines_touching_zero_len() {
        let v: Vec<_> = lines_touching(PmAddr(10), 0).collect();
        assert_eq!(v, vec![LineAddr(0)]);
    }

    #[test]
    fn lines_touching_large_span() {
        let v: Vec<_> = lines_touching(PmAddr(0), 2048).collect();
        assert_eq!(v.len(), 32);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PmAddr(255).to_string(), "0xff");
        assert_eq!(LineAddr(16).to_string(), "0x10");
        assert_eq!(format!("{:?}", PmAddr(255)), "PmAddr(0xff)");
    }
}
