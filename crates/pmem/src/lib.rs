//! Persistent-memory substrate: address space, memory image, heap.
//!
//! The ASAP reproduction simulates a heterogeneous main memory (§4.1): each
//! memory controller fronts both DRAM and persistent-memory (PM) modules.
//! This crate provides the *functional* half of that model:
//!
//! - [`addr`] — typed physical addresses and the DRAM/PM address-space
//!   split, with cache-line and page arithmetic;
//! - [`image`] — a sparse byte-accurate [`MemoryImage`] holding the contents
//!   of main memory, with a per-page *persistent bit* (the page-table bit set
//!   by `asap_malloc`, §4.6);
//! - [`heap`] — a deterministic first-fit [`RangeAllocator`] used for the
//!   persistent heap (`asap_malloc`/`asap_free`) and per-thread log buffers.
//!
//! Timing lives elsewhere (`asap-mem`): this crate answers *what bytes are
//! where*, which is what crash-recovery tests check.
//!
//! # Example
//!
//! ```
//! use asap_pmem::{MemoryImage, PmAddr, PM_BASE};
//!
//! let mut image = MemoryImage::new();
//! image.mark_persistent(PmAddr(PM_BASE), 64);
//! image.write_u64(PmAddr(PM_BASE), 0xdead_beef);
//! assert_eq!(image.read_u64(PmAddr(PM_BASE)), 0xdead_beef);
//! assert!(image.is_persistent(PmAddr(PM_BASE)));
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod hash;
pub mod heap;
pub mod image;

pub use addr::{LineAddr, PmAddr, DRAM_BASE, LINE_BYTES, PAGE_BYTES, PM_BASE};
pub use hash::{AddrBuildHasher, AddrHasher, AddrMap};
pub use heap::{AllocError, RangeAllocator};
pub use image::{ImageStats, MemoryImage};
