//! A fast, deterministic hasher for address-keyed maps.
//!
//! The simulator's hottest maps are keyed by [`LineAddr`]/[`PmAddr`] — one
//! `u64` each. The standard library's default SipHash is DoS-resistant but
//! costs far more than the multiply-xor fold below, and its per-process
//! random seed is pointless here: keys come from the deterministic
//! simulation itself, never from an adversary. This hasher is seed-free, so
//! map behaviour is identical across processes — a property the parallel
//! figure harness relies on when asserting serial and parallel runs agree.
//!
//! Only use these maps where iteration order does not reach simulated
//! behaviour (lookups, membership, order-free folds).
//!
//! [`LineAddr`]: crate::addr::LineAddr
//! [`PmAddr`]: crate::addr::PmAddr

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for small fixed-size keys (Fibonacci multiplier,
/// finalized with an avalanche shift). Deterministic and seed-free.
#[derive(Clone, Copy, Debug, Default)]
pub struct AddrHasher(u64);

const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for AddrHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback for composite keys: fold 8 bytes at a time.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(FIB);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Spread the high (well-mixed) bits into the low bits HashMap masks.
        self.0 ^ (self.0 >> 32)
    }
}

/// `BuildHasher` for [`AddrHasher`].
pub type AddrBuildHasher = BuildHasherDefault<AddrHasher>;

/// A `HashMap` using the deterministic address hasher.
pub type AddrMap<K, V> = HashMap<K, V, AddrBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LineAddr;

    #[test]
    fn map_roundtrip_and_determinism() {
        let mut m: AddrMap<LineAddr, u64> = AddrMap::default();
        for i in 0..10_000u64 {
            m.insert(LineAddr(i * 7), i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&LineAddr(i * 7)), Some(&i));
        }
        assert_eq!(m.get(&LineAddr(3)), None);
    }

    #[test]
    fn hash_is_seed_free_and_spreads() {
        let h = |v: u64| {
            let mut hh = AddrHasher::default();
            hh.write_u64(v);
            hh.finish()
        };
        // Stable across invocations (no RandomState) and non-trivial.
        assert_eq!(h(42), h(42));
        assert_ne!(h(0), h(1));
        // Dense low bits must not collide in the low output bits.
        let low: std::collections::HashSet<u64> = (0..256).map(|v| h(v) & 0xff).collect();
        assert!(low.len() > 128, "low-bit spread too weak: {}", low.len());
    }

    #[test]
    fn generic_write_path_matches_u64_path() {
        let mut a = AddrHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = AddrHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
