//! Functional equivalence of the cache hierarchy + memory system against
//! a flat shadow memory.
//!
//! Whatever the timing model does — evictions, write-backs resting in
//! WPQs, ops on the wire, channel backpressure — a read must always
//! return the newest architectural value. Tiny caches force constant
//! evictions; random advances interleave drain states.

use std::collections::HashMap;

use asap_mem::cache::AccessKind;
use asap_mem::{CacheHierarchy, MemSystem, PersistKind, PersistOp};
use asap_pmem::{LineAddr, MemoryImage, PM_BASE};
use asap_sim::{CacheConfig, Cycle, SystemConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Write { core: u8, line: u64, value: u8 },
    Read { core: u8, line: u64 },
    Advance(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..2, 0u64..96, 1u8..=255).prop_map(|(core, line, value)| Op::Write {
            core,
            line,
            value
        }),
        3 => (0u8..2, 0u64..96).prop_map(|(core, line)| Op::Read { core, line }),
        1 => (1u64..3000).prop_map(Op::Advance),
    ]
}

/// A micro machine: tiny caches over the real memory system, mirroring
/// the write/read paths the core crate uses.
struct Micro {
    caches: CacheHierarchy,
    mem: MemSystem,
    image: MemoryImage,
    now: Cycle,
}

impl Micro {
    fn new(residency: u64) -> Self {
        let mut cfg = SystemConfig::small();
        // Absurdly small caches: 16-line LLC over a 96-line working set.
        cfg.l1 = CacheConfig {
            size_bytes: 4 * 64,
            ways: 2,
            latency: 4,
        };
        cfg.l2 = CacheConfig {
            size_bytes: 8 * 64,
            ways: 2,
            latency: 14,
        };
        cfg.llc = CacheConfig {
            size_bytes: 16 * 64,
            ways: 4,
            latency: 42,
        };
        cfg.mem.wpq_entries = 2;
        cfg.mem.wpq_residency = residency;
        cfg.mem.wpq_drain_watermark = 1;
        let mut image = MemoryImage::new();
        image.mark_persistent(asap_pmem::PmAddr(PM_BASE), 96 * 64);
        Micro {
            caches: CacheHierarchy::new(&cfg),
            mem: MemSystem::new(&cfg),
            image,
            now: Cycle(0),
        }
    }

    fn line(&self, i: u64) -> LineAddr {
        LineAddr(PM_BASE / 64 + i)
    }

    fn access(&mut self, core: usize, line: LineAddr, kind: AccessKind) {
        self.mem.advance_to(self.now, &mut self.image);
        while self.mem.pop_event().is_some() {}
        let (fill, miss) = if self.caches.peek_level(core, line) == asap_mem::HitLevel::Memory {
            (
                Some(self.mem.read_for_fill(line, &self.image)),
                self.mem.read_latency(line),
            )
        } else {
            (None, 0)
        };
        let access = self.caches.access(core, line, kind, fill, miss);
        self.now += access.latency;
        if let Some(e) = access.evicted {
            if e.state.dirty {
                let op = PersistOp::new(PersistKind::WriteBack, e.line, e.state.data, None);
                self.mem.submit(op, self.now);
            }
        }
    }

    fn write(&mut self, core: usize, line: LineAddr, value: u8) {
        self.access(core, line, AccessKind::Store);
        let st = self.caches.line_mut(line).expect("filled");
        st.data = [value; 64];
        st.dirty = true;
    }

    fn read(&mut self, core: usize, line: LineAddr) -> u8 {
        self.access(core, line, AccessKind::Load);
        self.caches.line(line).expect("filled").data[0]
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn caches_plus_wpq_equal_flat_memory(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        residency in prop_oneof![Just(0u64), Just(120), Just(4_000)],
    ) {
        let mut m = Micro::new(residency);
        let mut shadow: HashMap<u64, u8> = HashMap::new();
        for op in &ops {
            match op {
                Op::Write { core, line, value } => {
                    let l = m.line(*line);
                    m.write(*core as usize, l, *value);
                    shadow.insert(*line, *value);
                }
                Op::Read { core, line } => {
                    let l = m.line(*line);
                    let got = m.read(*core as usize, l);
                    let want = shadow.get(line).copied().unwrap_or(0);
                    prop_assert_eq!(
                        got, want,
                        "line {} read {} want {} (residency {})",
                        line, got, want, residency
                    );
                }
                Op::Advance(d) => {
                    m.now += *d;
                    m.mem.advance_to(m.now, &mut m.image);
                    while m.mem.pop_event().is_some() {}
                }
            }
        }
        // Final check: after a full drain, the image agrees for every
        // line not still dirty in the cache.
        while let Some(t) = m.mem.next_event_time() {
            m.mem.advance_to(t, &mut m.image);
            while m.mem.pop_event().is_some() {}
        }
        for (line, want) in &shadow {
            let l = m.line(*line);
            let arch = match m.caches.line(l) {
                Some(st) => st.data[0],
                None => m.image.read_line(l)[0],
            };
            prop_assert_eq!(arch, *want, "drained line {}", line);
        }
    }
}
