//! Steady-state hot paths perform no heap allocation.
//!
//! The data-oriented core (slab-arena cache store, inline SoA tag sets,
//! calendar event queue, slab-allocated WPQ forward index) exists so the
//! per-access/per-op simulator loop never touches the allocator once its
//! arenas are warm. This binary installs a counting global allocator and
//! drives each structure through a warm-up phase followed by a measured
//! steady-state phase that must allocate exactly zero times.
//!
//! The whole file is one `#[test]` on purpose: the counter is a process
//! global, and a single test keeps other tests' allocations out of the
//! measured windows.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use asap_mem::cache::AccessKind;
use asap_mem::{CacheHierarchy, MemSystem, PersistKind, PersistOp};
use asap_pmem::{LineAddr, MemoryImage, PM_BASE};
use asap_sim::{Cycle, EventQueue, SystemConfig};

/// Counts allocations (not bytes) going through the global allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many allocations it performed.
fn allocs_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn pm_line(i: u64) -> LineAddr {
    LineAddr(PM_BASE / 64 + i)
}

fn dpo(line: LineAddr, v: u8) -> PersistOp {
    PersistOp::new(PersistKind::Dpo, line, [v; 64], None)
}

#[test]
fn steady_state_hot_paths_do_not_allocate() {
    let cfg = SystemConfig::small();

    // --- EventQueue: push/pop churn within warmed bucket capacity. The
    // first pass sizes the bucket vectors; the identical second pass must
    // run entirely out of that capacity.
    let mut q: EventQueue<u64> = EventQueue::new();
    let churn_queue = |q: &mut EventQueue<u64>| {
        for round in 0..64u64 {
            for i in 0..128u64 {
                q.push(Cycle(round * 1000 + i % 11), i);
            }
            while q.pop().is_some() {}
        }
    };
    churn_queue(&mut q);
    let n = allocs_in(|| churn_queue(&mut q));
    assert_eq!(n, 0, "calendar queue steady state must not allocate");

    // --- Cache hierarchy: hits and capacity-eviction churn over a warmed
    // slab (evicted lines recycle their slots through the freelist).
    let mut caches = CacheHierarchy::new(&cfg);
    let span = 4 * (cfg.llc.size_bytes / 64);
    let churn_caches = |caches: &mut CacheHierarchy| {
        for round in 0..4u64 {
            for i in 0..span {
                let kind = if i % 3 == 0 {
                    AccessKind::Load
                } else {
                    AccessKind::Store
                };
                let line = pm_line((i + round * 17) % span);
                if caches.contains(line) {
                    caches.access(0, line, kind, None, 10);
                } else {
                    caches.access(0, line, kind, Some(([0; 64], true)), 10);
                }
            }
        }
    };
    churn_caches(&mut caches);
    let n = allocs_in(|| churn_caches(&mut caches));
    assert_eq!(n, 0, "cache slab/tag steady state must not allocate");

    // --- MemSystem: WPQ submit/drain churn over a warmed channel (the
    // forward-index nodes recycle through the channel freelist). The
    // round stride is a multiple of the calendar's bucket ring
    // (64-cycle buckets × 256 slots = 16384 cycles) so every round lands
    // on the same bucket slots with the same occupancy — the warm-up
    // pass then sizes exactly the per-slot capacity the measured pass
    // reuses.
    let mut mem = MemSystem::new(&cfg);
    let mut image = MemoryImage::new();
    let mut t = 0u64;
    let mut churn_wpq = |mem: &mut MemSystem, image: &mut MemoryImage| {
        for round in 0..32u64 {
            for i in 0..32u64 {
                mem.submit(dpo(pm_line(i % 16), round as u8), Cycle(t));
                t += 50;
            }
            t += 14_784; // 32 × 50 + 14_784 = 16_384, one full bucket ring
            mem.advance_to(Cycle(t), image);
            while mem.pop_event().is_some() {}
        }
    };
    churn_wpq(&mut mem, &mut image);
    let n = allocs_in(|| churn_wpq(&mut mem, &mut image));
    assert_eq!(n, 0, "WPQ submit/drain steady state must not allocate");
}
