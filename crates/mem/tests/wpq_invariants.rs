//! Conservation invariants of the memory system under random traffic.
//!
//! Every submitted persist op has exactly one fate: written to the PM
//! media, dropped by an optimization, flushed at a crash (ADR), or lost
//! because it never reached the persistence domain (arrival still pending
//! at power failure). Randomized schedules of submissions, advances and
//! drops must never create or destroy writes.

use asap_mem::{MemEvent, MemSystem, PersistKind, PersistOp, Rid};
use asap_pmem::{LineAddr, MemoryImage, PM_BASE};
use asap_sim::{Cycle, SystemConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Action {
    /// Submit an op of the given kind to one of 8 PM lines.
    Submit { kind: u8, line: u64, rid_local: u64 },
    /// Advance virtual time by this many cycles.
    Advance(u64),
    /// Drop a region's log writes (the §5.1 LPO-dropping hook).
    DropLogs { rid_local: u64 },
    /// Drop a pending DPO for a line (the §5.1 DPO-dropping hook).
    DropDpo { line: u64, rid_local: u64 },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..3, 0u64..8, 0u64..4).prop_map(|(kind, line, rid_local)| Action::Submit {
            kind,
            line,
            rid_local
        }),
        (1u64..4000).prop_map(Action::Advance),
        (0u64..4).prop_map(|rid_local| Action::DropLogs { rid_local }),
        (0u64..8, 0u64..4).prop_map(|(line, rid_local)| Action::DropDpo { line, rid_local }),
    ]
}

fn pm_line(i: u64) -> LineAddr {
    LineAddr(PM_BASE / 64 + i)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn submitted_ops_are_conserved(
        actions in proptest::collection::vec(action_strategy(), 1..120),
        residency in prop_oneof![Just(0u64), Just(300), Just(5_000)],
        crash in any::<bool>(),
    ) {
        let mut cfg = SystemConfig::small();
        cfg.mem.wpq_entries = 4; // small queues: plenty of backpressure
        cfg.mem.wpq_residency = residency;
        cfg.mem.wpq_drain_watermark = 2;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        let mut now = Cycle(0);
        let mut submitted = 0u64;
        let mut accepted = 0u64;
        for a in &actions {
            match a {
                Action::Submit { kind, line, rid_local } => {
                    let kind = match kind {
                        0 => PersistKind::Lpo,
                        1 => PersistKind::Dpo,
                        _ => PersistKind::WriteBack,
                    };
                    let op = PersistOp::new(
                        kind,
                        pm_line(*line),
                        [*line as u8; 64],
                        Some(Rid::new(0, *rid_local)),
                    );
                    mem.submit(op, now);
                    submitted += 1;
                }
                Action::Advance(d) => {
                    now += *d;
                    mem.advance_to(now, &mut image);
                }
                Action::DropLogs { rid_local } => {
                    mem.drop_log_writes_of(Rid::new(0, *rid_local));
                }
                Action::DropDpo { line, rid_local } => {
                    mem.drop_pending_dpo(pm_line(*line), Rid::new(0, *rid_local));
                }
            }
            while let Some(ev) = mem.pop_event() {
                if matches!(ev, MemEvent::Accepted { .. }) {
                    accepted += 1;
                }
            }
        }
        let (written, flushed, lost) = if crash {
            mem.flush_to_image(&mut image);
            (
                mem.stats().get("pm.write.total"),
                mem.stats().get("crash.flushed"),
                mem.stats().get("crash.lost_unaccepted"),
            )
        } else {
            // Drain everything.
            while let Some(t) = mem.next_event_time() {
                mem.advance_to(t, &mut image);
            }
            while let Some(ev) = mem.pop_event() {
                if matches!(ev, MemEvent::Accepted { .. }) {
                    accepted += 1;
                }
            }
            prop_assert!(mem.is_idle());
            (mem.stats().get("pm.write.total"), 0, 0)
        };
        let dropped = mem.stats().get("pm.drop.lpo") + mem.stats().get("pm.drop.dpo");
        // Conservation: every submission is written, dropped, flushed or
        // (crash only) lost before acceptance.
        prop_assert_eq!(
            written + dropped + flushed + lost,
            submitted,
            "written {} + dropped {} + flushed {} + lost {} != submitted {}",
            written, dropped, flushed, lost, submitted
        );
        if !crash {
            // Without a crash, every submission must have been accepted.
            prop_assert_eq!(accepted, submitted);
            prop_assert_eq!(lost, 0u64);
        }
    }

    #[test]
    fn forwarding_always_returns_newest_write(
        values in proptest::collection::vec(1u8..=255, 1..20),
        advance_between in 0u64..200,
    ) {
        let mut cfg = SystemConfig::small();
        cfg.mem.wpq_entries = 2;
        cfg.mem.wpq_residency = 10_000; // hold writes so forwarding matters
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        let mut now = Cycle(0);
        let line = pm_line(0);
        for v in &values {
            let op = PersistOp::new(PersistKind::Dpo, line, [*v; 64], None);
            mem.submit(op, now);
            now += advance_between;
            mem.advance_to(now, &mut image);
            while mem.pop_event().is_some() {}
        }
        // Regardless of what drained, a read must see the last value.
        mem.advance_to(now + 80, &mut image);
        while mem.pop_event().is_some() {}
        let (data, _) = mem.read_for_fill(line, &image);
        prop_assert_eq!(data[0], *values.last().unwrap());
    }
}
