//! Memory-hierarchy substrate: caches, memory controllers, WPQ.
//!
//! This crate models the timing-and-functional behaviour of the memory
//! system the paper evaluates (Table 2): per-core L1/L2 caches, a shared
//! LLC, and memory controllers whose Write Pending Queues (WPQs) form the
//! persistence domain (§4.1 — a persist operation is *complete when
//! accepted by the WPQ*, per ADR semantics).
//!
//! Components:
//!
//! - [`rid`] — atomic-region IDs (`ThreadID` + `LocalRID`, §5.6);
//! - [`line`](mod@line) — cache-line state including ASAP's tag extensions
//!   (`PBit`, `LockBit`, `OwnerRID`, §4.3 ❷);
//! - [`cache`] — an inclusive three-level hierarchy with real line data,
//!   LRU replacement, and lock-bit-aware victim selection (§4.6.1);
//! - [`persist`] — persist-operation descriptors (LPO, DPO, log header,
//!   write-back) and memory-system events;
//! - [`system`] — [`MemSystem`]: per-channel WPQs with acceptance,
//!   bandwidth-limited drain to PM, store-forwarding reads, entry dropping
//!   (for the §5.1 traffic optimizations) and crash flush (ADR);
//! - [`bloom`] — the non-counting bloom filter used to detect evicted
//!   owner RIDs (§5.3).

#![warn(missing_docs)]

pub mod bloom;
pub mod cache;
pub mod line;
pub mod persist;
pub mod rid;
pub mod system;

pub use bloom::BloomFilter;
pub use cache::{Access, CacheHierarchy, Evicted, HitLevel};
pub use line::LineState;
pub use persist::{MemEvent, OpId, PersistKind, PersistOp};
pub use rid::Rid;
pub use system::{set_cell_jobs, set_parallel_window_min, MemSystem};
