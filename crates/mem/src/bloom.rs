//! Non-counting bloom filter for evicted owner RIDs (§5.3).
//!
//! When a persistent cache line is evicted from the LLC while its owning
//! atomic region is uncommitted, the owner RID is saved to a DRAM buffer.
//! To avoid turning every PM read into two memory requests, a per-channel
//! bloom filter records which lines *might* have a saved owner; the DRAM
//! buffer is consulted only on filter hits. The filter is cleared whenever
//! the Dependence List becomes empty (no uncommitted regions ⇒ no
//! dependencies on evicted lines need tracking).

use asap_pmem::LineAddr;

/// A fixed-size, non-counting bloom filter over cache-line addresses.
///
/// # Example
///
/// ```
/// use asap_mem::BloomFilter;
/// use asap_pmem::LineAddr;
///
/// let mut bf = BloomFilter::new(8 * 1024);
/// bf.insert(LineAddr(42));
/// assert!(bf.may_contain(LineAddr(42))); // no false negatives
/// bf.clear();
/// assert!(!bf.may_contain(LineAddr(42)));
/// ```
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u32,
    insertions: u64,
}

impl BloomFilter {
    /// Number of hash functions (fixed, typical for small filters).
    const HASHES: u32 = 3;

    /// Creates a filter with `num_bits` bits (paper: 1KB = 8192 per
    /// channel).
    ///
    /// # Panics
    ///
    /// Panics if `num_bits` is zero.
    pub fn new(num_bits: u32) -> Self {
        assert!(num_bits > 0, "bloom filter needs at least one bit");
        BloomFilter {
            bits: vec![0u64; num_bits.div_ceil(64) as usize],
            num_bits,
            insertions: 0,
        }
    }

    fn hash(line: LineAddr, i: u32) -> u64 {
        // SplitMix64-style mixing, salted per hash function.
        let mut x = line.0 ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(i) + 1));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn bit_index(&self, line: LineAddr, i: u32) -> (usize, u64) {
        let b = Self::hash(line, i) % u64::from(self.num_bits);
        ((b / 64) as usize, 1u64 << (b % 64))
    }

    /// Records that `line` was evicted with an active owner.
    pub fn insert(&mut self, line: LineAddr) {
        for i in 0..Self::HASHES {
            let (w, m) = self.bit_index(line, i);
            self.bits[w] |= m;
        }
        self.insertions += 1;
    }

    /// Whether `line` may have a saved owner (false positives possible,
    /// false negatives impossible).
    pub fn may_contain(&self, line: LineAddr) -> bool {
        (0..Self::HASHES).all(|i| {
            let (w, m) = self.bit_index(line, i);
            self.bits[w] & m != 0
        })
    }

    /// Clears the filter (safe whenever the Dependence List is empty).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.insertions = 0;
    }

    /// Number of insertions since the last clear.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Whether no insertions have happened since the last clear.
    pub fn is_empty(&self) -> bool {
        self.insertions == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(1024);
        for i in 0..100 {
            bf.insert(LineAddr(i * 977));
        }
        for i in 0..100 {
            assert!(bf.may_contain(LineAddr(i * 977)));
        }
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bf = BloomFilter::new(8192);
        for i in 0..1000 {
            assert!(!bf.may_contain(LineAddr(i)));
        }
        assert!(bf.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut bf = BloomFilter::new(64);
        bf.insert(LineAddr(7));
        assert!(!bf.is_empty());
        bf.clear();
        assert!(!bf.may_contain(LineAddr(7)));
        assert_eq!(bf.insertions(), 0);
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let mut bf = BloomFilter::new(8192);
        for i in 0..500 {
            bf.insert(LineAddr(i));
        }
        let fps = (10_000..20_000)
            .filter(|&i| bf.may_contain(LineAddr(i)))
            .count();
        // 500 inserts in 8192 bits with 3 hashes ⇒ expect ~0.5% FPs.
        assert!(fps < 500, "false positive rate too high: {fps}/10000");
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_panics() {
        BloomFilter::new(0);
    }

    proptest! {
        #[test]
        fn prop_inserted_always_found(lines in proptest::collection::vec(any::<u64>(), 1..200)) {
            let mut bf = BloomFilter::new(4096);
            for &l in &lines {
                bf.insert(LineAddr(l));
            }
            for &l in &lines {
                prop_assert!(bf.may_contain(LineAddr(l)));
            }
        }
    }
}
